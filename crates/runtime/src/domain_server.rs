//! The domain server: per-domain infrastructure service hosting the
//! configuration model (Section 1: "the service configuration model is
//! implemented as part of the domain server").

use crate::checkpoint::{Checkpoint, HandoffPlan};
use crate::config_cache::{CacheKey, CompositionCache, CompositionCacheStats};
use crate::cost_model::{CostModel, LinkKind};
use crate::event_service::{EventService, RuntimeEvent};
use crate::overhead::ConfigOverhead;
use crate::profiler::StageTimes;
use crate::recovery::{Degradation, RecoveryMode, RecoveryReport};
use crate::repository::ComponentRepository;
use crate::retry_queue::{ParkedSession, RetryPolicy, RetryQueue};
use crate::streaming::{delivered_qos, DeliveredQos};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;
use ubiqos::{
    Configuration, ConfigureError, ConfigureRequest, ReconfigureTrigger, ServiceConfigurator,
};
use ubiqos_composition::{ComposedApplication, DegradationLadder, OcReport};
use ubiqos_discovery::{DeviceProperties, DomainId, ServiceDescriptor, ServiceRegistry};
use ubiqos_distribution::{
    Environment, ExhaustiveOptimal, OsdProblem, PortfolioRoute, ServiceDistributor, SolverPortfolio,
};
use ubiqos_graph::{AbstractServiceGraph, ComponentId, Cut, DeviceId, ServiceGraph};
use ubiqos_model::{QosVector, Weights};

/// Raw session id → (devices its cut occupies, links its cut crosses):
/// the per-session touch sets invalid-set selection intersects with a
/// fault's resource delta.
type TouchMap = BTreeMap<u64, (BTreeSet<usize>, BTreeSet<(usize, usize)>)>;

/// Identifier of a session within one domain server.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SessionId(u64);

impl SessionId {
    /// Builds a session id from its raw value (tests and harnesses).
    pub fn from_raw(raw: u64) -> Self {
        SessionId(raw)
    }

    /// The raw id value.
    pub fn raw(&self) -> u64 {
        self.0
    }
}

impl fmt::Display for SessionId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "session-{}", self.0)
    }
}

/// One running application session.
#[derive(Debug, Clone)]
pub struct Session {
    /// Human-readable application name.
    pub name: String,
    /// The abstract application description (kept for recomposition).
    pub abstract_graph: AbstractServiceGraph,
    /// The user's QoS requirements.
    pub user_qos: QosVector,
    /// The user's current portal device.
    pub client_device: DeviceId,
    /// The domain the user currently discovers services in (`None` =
    /// whole smart space).
    pub domain: Option<DomainId>,
    /// The live configuration.
    pub configuration: Configuration,
    /// Media position in seconds (advances as the session plays).
    pub position_s: f64,
    /// The degradation-ladder factor the live configuration was placed
    /// at: `1.0` is full quality, lower values mean the session currently
    /// runs degraded (weakened QoS, scaled-down stream throughput).
    pub degrade_factor: f64,
    /// Overhead of every configuration action so far, labeled.
    pub overhead_log: Vec<(String, ConfigOverhead)>,
}

impl Session {
    /// The QoS currently delivered at each sink.
    pub fn measured_qos(&self) -> Vec<DeliveredQos> {
        delivered_qos(&self.configuration.app.graph)
    }

    /// How well the delivered QoS satisfies the user's request, in
    /// `[0, 1]`: the mean [`ubiqos_model::satisfaction`] over all sinks
    /// (1.0 when the user requested nothing or the graph has no sinks).
    pub fn qos_satisfaction(&self) -> f64 {
        let vectors = crate::streaming::sink_delivered_vectors(&self.configuration.app.graph);
        if vectors.is_empty() || self.user_qos.is_empty() {
            return 1.0;
        }
        // Only score the user dimensions each sink's stream carries: a
        // video request's frame rate is not the audio sink's business.
        let scores: Vec<f64> = vectors
            .iter()
            .map(|(_, delivered)| {
                let relevant: QosVector = self
                    .user_qos
                    .iter()
                    .filter(|(dim, _)| delivered.get(dim).is_some())
                    .map(|(d, v)| (d.clone(), v.clone()))
                    .collect();
                ubiqos_model::satisfaction(delivered, &relevant)
            })
            .collect();
        scores.iter().sum::<f64>() / scores.len() as f64
    }
}

/// The set of devices and links whose capacity one fault changed — what
/// incremental recovery derives its invalid-session set from.
#[derive(Debug, Clone, Default)]
struct ResourceDelta {
    devices: BTreeSet<usize>,
    links: BTreeSet<(usize, usize)>,
}

/// How the domain server's distribution tier places composed graphs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PlacementStrategy {
    /// The paper's greedy OSD heuristic — the default, and what every
    /// existing experiment's deterministic logs were pinned against.
    #[default]
    Heuristic,
    /// The exhaustive branch-and-bound optimum.
    Optimal {
        /// Seed each recovery re-placement's incumbent with the
        /// session's previous placement (provably result-preserving;
        /// see `ubiqos_distribution::ExhaustiveOptimal`).
        warm_start: bool,
    },
    /// The solver portfolio: greedy seed, then exhaustive B&B, with
    /// oversized graphs routed to the hierarchical
    /// abstraction-refinement solver instead of failing. Bit-identical
    /// to [`Optimal`] on every graph within the exact limit.
    ///
    /// [`Optimal`]: PlacementStrategy::Optimal
    Portfolio {
        /// Seed each recovery re-placement with the session's previous
        /// placement (competes against the greedy seed; the cheaper of
        /// the two becomes the incumbent to beat).
        warm_start: bool,
    },
}

/// Accumulated optimal-solver counters across every [`Optimal`]
/// placement, for the warm-vs-cold `BENCH_configure.json` comparison.
///
/// [`Optimal`]: PlacementStrategy::Optimal
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PlacementTotals {
    /// Optimal solves performed.
    pub solves: u64,
    /// Solves whose warm-start seed validated and seeded the incumbent.
    pub warm_solves: u64,
    /// Branch-and-bound nodes expanded, summed over all solves.
    pub nodes_expanded: u64,
    /// Subtrees cut by the incumbent bound, summed over all solves.
    pub pruned_bound: u64,
    /// Portfolio solves routed to the hierarchical solver because the
    /// graph exceeded the exhaustive node limit (zero under
    /// [`Optimal`]).
    ///
    /// [`Optimal`]: PlacementStrategy::Optimal
    pub hierarchical_routes: u64,
}

/// The per-domain infrastructure server: registry + environment +
/// repository + event service + the two-tier configurator.
///
/// The server accounts every running session against the device
/// capacities: configuration requests see the *residual* environment, so
/// concurrent applications genuinely compete for the smart space's
/// resources (and for link bandwidth, which is charged as a shared pool).
///
/// Fault handling runs the staged degrade → park → retry → drop pipeline
/// (see [`crate::recovery`]): sessions untouched by a fault keep their
/// placement, affected sessions walk the [`DegradationLadder`] before
/// being parked in the [`RetryQueue`], and only retry-budget exhaustion
/// drops a session.
pub struct DomainServer {
    registry: ServiceRegistry,
    /// Pristine capacities as built, before any crash/fluctuation: the
    /// reference state crashed devices recover to.
    pristine: Environment,
    /// Full current capacities (what the devices could offer if idle).
    capacity: Environment,
    /// Residual environment: capacity minus every live session's charge.
    env: Environment,
    /// Link kind per device (indexes match the environment).
    links: Vec<LinkKind>,
    /// Device properties per device, for client-side discovery filtering.
    device_props: Vec<DeviceProperties>,
    repository: ComponentRepository,
    costs: CostModel,
    events: EventService,
    sessions: BTreeMap<u64, Session>,
    /// Link bandwidths degraded independently of any crash, keyed by the
    /// ordered endpoint pair: the value a recovering device's links must
    /// return to *instead of* pristine (the coarse-recovery fix).
    link_overrides: BTreeMap<(usize, usize), f64>,
    /// Service instances unregistered because their hosting device
    /// crashed, keyed by device index; re-registered on recovery.
    hosted_stash: BTreeMap<usize, Vec<ServiceDescriptor>>,
    /// Parked sessions awaiting retry.
    parked: RetryQueue,
    /// The QoS downgrade ladder recovery walks before parking a session.
    ladder: DegradationLadder,
    /// Backoff/budget policy for parked-session retries.
    retry_policy: RetryPolicy,
    /// How recovery passes select the sessions to re-place.
    recovery_mode: RecoveryMode,
    /// Cross-request composition memo, epoch-validated against the
    /// registry (a `Mutex` because `configure` runs on `&self`).
    config_cache: Mutex<CompositionCache>,
    /// Distribution-tier strategy.
    placement: PlacementStrategy,
    /// Persistent exhaustive solver, shared across every `Optimal`
    /// placement of a recovery pass.
    optimal: Mutex<ExhaustiveOptimal>,
    /// Persistent solver portfolio for `Portfolio` placements.
    portfolio: Mutex<SolverPortfolio>,
    /// Accumulated optimal-solver counters.
    placement_totals: Mutex<PlacementTotals>,
    /// Wall-clock per-stage profile of every configure call.
    stages: Mutex<StageTimes>,
    /// Ground-truth set of devices currently unreachable from this
    /// server (crashed or partitioned), injected by the fault harness.
    /// Placement never reads it — only the download/activation step
    /// does, which is what makes stale-view admissions fail *witnessed*
    /// instead of silently succeeding. Empty in perfect-detection mode.
    unreachable: BTreeSet<usize>,
    /// Devices the failure detector currently suspects (registry lease
    /// expired without a heartbeat renewal). The detector's *belief*,
    /// which may lag — or falsely lead — the ground truth above.
    suspected: BTreeSet<usize>,
    /// Witnessed stale-view activation failures (atomic: the check runs
    /// inside `configure`, which is `&self`).
    stale_views: AtomicU64,
    /// Which federation shard this server runs as (`0` when unsharded).
    /// Only routes wall-clock queue-wait samples to their per-shard
    /// histogram slot — never read by any deterministic path.
    shard_index: usize,
    next_session: u64,
    now_ms: f64,
}

impl fmt::Debug for DomainServer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("DomainServer")
            .field("devices", &self.env.device_count())
            .field("sessions", &self.sessions.len())
            .field("now_ms", &self.now_ms)
            .finish()
    }
}

impl DomainServer {
    /// Creates a domain server over an environment.
    ///
    /// # Panics
    ///
    /// Panics when `links`/`device_props` lengths do not match the
    /// environment's device count (scenario construction error).
    pub fn new(
        env: Environment,
        links: Vec<LinkKind>,
        device_props: Vec<DeviceProperties>,
    ) -> Self {
        assert_eq!(links.len(), env.device_count(), "one link kind per device");
        assert_eq!(
            device_props.len(),
            env.device_count(),
            "one property set per device"
        );
        DomainServer {
            registry: ServiceRegistry::new(),
            pristine: env.clone(),
            capacity: env.clone(),
            env,
            links,
            device_props,
            repository: ComponentRepository::new(),
            costs: CostModel::default(),
            events: EventService::new(),
            sessions: BTreeMap::new(),
            link_overrides: BTreeMap::new(),
            hosted_stash: BTreeMap::new(),
            parked: RetryQueue::new(),
            ladder: DegradationLadder::default(),
            retry_policy: RetryPolicy::default(),
            recovery_mode: RecoveryMode::default(),
            config_cache: Mutex::new(CompositionCache::new()),
            placement: PlacementStrategy::default(),
            optimal: Mutex::new(ExhaustiveOptimal::new()),
            portfolio: Mutex::new(SolverPortfolio::new()),
            placement_totals: Mutex::new(PlacementTotals::default()),
            stages: Mutex::new(StageTimes::default()),
            unreachable: BTreeSet::new(),
            suspected: BTreeSet::new(),
            stale_views: AtomicU64::new(0),
            shard_index: 0,
            next_session: 0,
            now_ms: 0.0,
        }
    }

    /// A faithful copy of this server's *durable* state, for the
    /// durability layer's snapshot checkpoints (`runtime::durability`).
    ///
    /// Everything a crash-recovered server needs to behave identically
    /// is cloned: registry (with leases), environments, sessions, the
    /// retry queue, degradation/retry/recovery policy, link overrides,
    /// the crashed-host service stash, detector belief sets, and the
    /// session-id/clock counters. Soft state is treated as volatile —
    /// the composition cache restarts cold (PR 4 pins cache-on ≡
    /// cache-off for every observable output) and event-service
    /// subscribers are runtime wiring a restarted process re-creates;
    /// solver state and profiling counters are carried over so bench
    /// accounting survives a checkpoint unchanged.
    pub fn clone_for_checkpoint(&self) -> DomainServer {
        DomainServer {
            registry: self.registry.clone(),
            pristine: self.pristine.clone(),
            capacity: self.capacity.clone(),
            env: self.env.clone(),
            links: self.links.clone(),
            device_props: self.device_props.clone(),
            repository: self.repository.clone(),
            costs: self.costs.clone(),
            events: EventService::new(),
            sessions: self.sessions.clone(),
            link_overrides: self.link_overrides.clone(),
            hosted_stash: self.hosted_stash.clone(),
            parked: self.parked.clone(),
            ladder: self.ladder.clone(),
            retry_policy: self.retry_policy,
            recovery_mode: self.recovery_mode,
            config_cache: Mutex::new(CompositionCache::new()),
            placement: self.placement,
            optimal: Mutex::new(self.optimal.lock().expect("solver lock").clone()),
            portfolio: Mutex::new(self.portfolio.lock().expect("portfolio lock").clone()),
            placement_totals: Mutex::new(*self.placement_totals.lock().expect("totals lock")),
            stages: Mutex::new(self.stages.lock().expect("stages lock").clone()),
            unreachable: self.unreachable.clone(),
            suspected: self.suspected.clone(),
            stale_views: AtomicU64::new(self.stale_views.load(Ordering::Relaxed)),
            shard_index: self.shard_index,
            next_session: self.next_session,
            now_ms: self.now_ms,
        }
    }

    /// A deterministic digest of the durable state — the recovery
    /// contract's tripwire. Two servers with equal fingerprints agree
    /// on everything that can influence future deterministic behaviour:
    /// clock, counters, environments, session table, retry queue,
    /// policies, detector belief, and the registry's authoritative
    /// contents. Volatile soft state (caches, memos, profiling) is
    /// deliberately excluded — a cold-cache recovered server must
    /// fingerprint equal to the warm original.
    pub fn state_fingerprint(&self) -> u64 {
        use std::fmt::Write as _;
        let mut s = String::with_capacity(4096);
        let _ = write!(
            s,
            "now_ms={:x} next={} shard={} stale={} placement={:?} mode={:?} policy={:?} ladder={:?}",
            self.now_ms.to_bits(),
            self.next_session,
            self.shard_index,
            self.stale_views.load(Ordering::Relaxed),
            self.placement,
            self.recovery_mode,
            self.retry_policy,
            self.ladder,
        );
        let _ = write!(
            s,
            "|env={:?}|cap={:?}|pristine={:?}|links={:?}|overrides={:?}|stash={:?}",
            self.env,
            self.capacity,
            self.pristine,
            self.links,
            self.link_overrides,
            self.hosted_stash,
        );
        let _ = write!(
            s,
            "|unreachable={:?}|suspected={:?}|parked={:?}",
            self.unreachable, self.suspected, self.parked
        );
        let _ = write!(
            s,
            "|registry_epoch={}|leases={:?}",
            self.registry.epoch(),
            self.registry.lease_table(),
        );
        for (id, session) in &self.sessions {
            let _ = write!(s, "|s{id}={session:?}");
        }
        ubiqos::fault_report::fnv1a(s.as_bytes())
    }

    /// Replaces the QoS downgrade ladder recovery walks before parking a
    /// session. [`DegradationLadder::strict`] disables degradation.
    pub fn set_ladder(&mut self, ladder: DegradationLadder) {
        self.ladder = ladder;
    }

    /// The configured degradation ladder.
    pub fn ladder(&self) -> &DegradationLadder {
        &self.ladder
    }

    /// Replaces the parked-session retry policy. [`RetryPolicy::strict`]
    /// disables parking: ladder exhaustion drops immediately.
    pub fn set_retry_policy(&mut self, policy: RetryPolicy) {
        self.retry_policy = policy;
    }

    /// The configured retry policy.
    pub fn retry_policy(&self) -> &RetryPolicy {
        &self.retry_policy
    }

    /// Selects how recovery passes pick the sessions to re-place (the
    /// incremental default, or the exhaustive full scan used as the
    /// cross-check reference).
    pub fn set_recovery_mode(&mut self, mode: RecoveryMode) {
        self.recovery_mode = mode;
    }

    /// The configured recovery mode.
    pub fn recovery_mode(&self) -> RecoveryMode {
        self.recovery_mode
    }

    /// Enables or disables the configuration caches — the composition
    /// memo and the registry's discovery memo — together. All observable
    /// outputs (configurations, virtual overheads, event logs, digests)
    /// are identical either way; the toggle exists for the cold-cache
    /// benchmark runs and the cache-equivalence tests.
    pub fn set_config_cache(&mut self, enabled: bool) {
        self.config_cache
            .lock()
            .expect("config cache lock")
            .set_enabled(enabled);
        self.registry.set_query_memo(enabled);
    }

    /// Whether the composition cache is active.
    pub fn config_cache_enabled(&self) -> bool {
        self.config_cache
            .lock()
            .expect("config cache lock")
            .enabled()
    }

    /// Composition-cache counters.
    pub fn config_cache_stats(&self) -> CompositionCacheStats {
        self.config_cache.lock().expect("config cache lock").stats()
    }

    /// Selects the distribution-tier placement strategy.
    pub fn set_placement_strategy(&mut self, strategy: PlacementStrategy) {
        self.placement = strategy;
    }

    /// The active placement strategy.
    pub fn placement_strategy(&self) -> PlacementStrategy {
        self.placement
    }

    /// Accumulated optimal-solver counters (all zero under
    /// [`PlacementStrategy::Heuristic`]).
    pub fn placement_totals(&self) -> PlacementTotals {
        *self.placement_totals.lock().expect("placement totals lock")
    }

    /// Resets the optimal-solver counters.
    pub fn reset_placement_totals(&mut self) {
        *self.placement_totals.lock().expect("placement totals lock") = PlacementTotals::default();
    }

    /// Wall-clock per-stage configuration profile accumulated so far.
    pub fn stage_times(&self) -> StageTimes {
        self.stages.lock().expect("stage lock").clone()
    }

    /// Records one pipeline-runtime queue-wait sample (µs between an
    /// event's batch admission and its deterministic commit) into the
    /// stage profile, attributed to this server's shard slot — no single
    /// global admission queue is assumed. Wall-clock only — never
    /// observable in logs.
    pub fn record_queue_wait_us(&self, us: u64) {
        self.stages
            .lock()
            .expect("stage lock")
            .record_shard_queue_wait(self.shard_index, us);
    }

    /// Records one fully-acknowledged payload's retransmission count
    /// into the stage profile, attributed to this server's shard slot
    /// (this server was the sender). Wall-clock-profile only — never
    /// observable in logs.
    pub fn record_retransmits(&self, retransmits: u64) {
        self.stages
            .lock()
            .expect("stage lock")
            .record_shard_retransmit(self.shard_index, retransmits);
    }

    /// Declares which federation shard this server runs as, so queue-wait
    /// samples land in the matching per-shard histogram slot.
    pub fn set_shard_index(&mut self, shard: usize) {
        self.shard_index = shard;
    }

    /// The shard index this server runs as (`0` when unsharded).
    pub fn shard_index(&self) -> usize {
        self.shard_index
    }

    /// Records one admitted batch's size into the stage profile.
    pub fn record_batch_size(&self, events: usize) {
        self.stages
            .lock()
            .expect("stage lock")
            .batch_sizes
            .record(events as u64);
    }

    /// Resets the wall-clock stage profile.
    pub fn reset_stage_times(&mut self) {
        *self.stages.lock().expect("stage lock") = StageTimes::default();
    }

    /// The number of sessions parked in the retry queue.
    pub fn parked_count(&self) -> usize {
        self.parked.len()
    }

    /// Iterates over the parked sessions in id order.
    pub fn parked_sessions(&self) -> impl Iterator<Item = (SessionId, &ParkedSession)> {
        self.parked.iter().map(|(id, p)| (SessionId(id), p))
    }

    /// Whether `id` is currently parked in the retry queue.
    pub fn is_parked(&self, id: SessionId) -> bool {
        self.parked.contains(id.0)
    }

    /// Mutable access to the service registry (device/service arrival and
    /// departure).
    pub fn registry_mut(&mut self) -> &mut ServiceRegistry {
        &mut self.registry
    }

    /// The registry.
    pub fn registry(&self) -> &ServiceRegistry {
        &self.registry
    }

    /// Mutable access to the component repository (pre-installation).
    pub fn repository_mut(&mut self) -> &mut ComponentRepository {
        &mut self.repository
    }

    /// The event service (subscribe for reconfiguration notifications).
    pub fn events(&self) -> &EventService {
        &self.events
    }

    /// The *residual* environment: current capacities minus every live
    /// session's charge.
    pub fn env(&self) -> &Environment {
        &self.env
    }

    /// The full current capacities (what idle devices could offer).
    pub fn capacity(&self) -> &Environment {
        &self.capacity
    }

    /// The pristine capacities the server was built with, untouched by
    /// any crash or fluctuation — the reference state fault injectors
    /// scale degradation factors against.
    pub fn pristine(&self) -> &Environment {
        &self.pristine
    }

    /// The number of live sessions.
    pub fn session_count(&self) -> usize {
        self.sessions.len()
    }

    /// Current wall-clock time in ms since domain start.
    pub fn now_ms(&self) -> f64 {
        self.now_ms
    }

    /// Borrows a session.
    pub fn session(&self, id: SessionId) -> Option<&Session> {
        self.sessions.get(&id.0)
    }

    /// Iterates over every live session in id order (the order recovery
    /// passes process them in).
    pub fn sessions(&self) -> impl Iterator<Item = (SessionId, &Session)> {
        self.sessions.iter().map(|(&id, s)| (SessionId(id), s))
    }

    /// Probes whether an application could be configured *right now*
    /// against the residual environment, without starting a session or
    /// charging anything. Fault-injection harnesses use this to verify
    /// that admission denials and recovery drops are genuine.
    pub fn can_place(
        &self,
        abstract_graph: &AbstractServiceGraph,
        user_qos: &QosVector,
        client_device: DeviceId,
        domain: Option<DomainId>,
    ) -> bool {
        self.preview(abstract_graph, user_qos, client_device, domain)
            .is_ok()
    }

    /// Runs the full two-tier pipeline against the residual environment
    /// and returns the configuration it *would* deploy — without starting
    /// a session, charging resources, downloading code, or advancing
    /// virtual time. Equivalence tests use this to compare cached and
    /// fresh configuration byte for byte.
    ///
    /// # Errors
    ///
    /// Propagates [`ConfigureError`] from either tier.
    pub fn preview(
        &self,
        abstract_graph: &AbstractServiceGraph,
        user_qos: &QosVector,
        client_device: DeviceId,
        domain: Option<DomainId>,
    ) -> Result<Configuration, ConfigureError> {
        self.configure(abstract_graph, user_qos, client_device, domain)
            .map(|(configuration, _)| configuration)
    }

    /// Advances wall-clock and every session's media position by
    /// `seconds` of playback.
    pub fn play(&mut self, seconds: f64) {
        self.now_ms += seconds * 1000.0;
        for s in self.sessions.values_mut() {
            s.position_s += seconds;
        }
    }

    /// Starts an application session on behalf of a user at
    /// `client_device`: composes, distributes, downloads missing
    /// component code, and initializes.
    ///
    /// # Errors
    ///
    /// Propagates [`ConfigureError`] from either tier; the session is not
    /// created on failure.
    pub fn start_session(
        &mut self,
        name: impl Into<String>,
        abstract_graph: AbstractServiceGraph,
        user_qos: QosVector,
        client_device: DeviceId,
    ) -> Result<SessionId, ConfigureError> {
        self.start_session_in_domain(name, abstract_graph, user_qos, client_device, None)
    }

    /// Starts a session whose discovery is scoped to `domain` (and its
    /// ancestors). See [`DomainServer::start_session`].
    ///
    /// # Errors
    ///
    /// Propagates [`ConfigureError`] from either tier.
    pub fn start_session_in_domain(
        &mut self,
        name: impl Into<String>,
        abstract_graph: AbstractServiceGraph,
        user_qos: QosVector,
        client_device: DeviceId,
        domain: Option<DomainId>,
    ) -> Result<SessionId, ConfigureError> {
        let name = name.into();
        let (configuration, mut overhead) =
            self.configure(&abstract_graph, &user_qos, client_device, domain)?;
        overhead.downloading_ms = self.download_for(&configuration);
        overhead.init_or_handoff_ms = self
            .costs
            .initialization_ms(configuration.app.graph.component_count());
        self.env
            .charge_cut(&configuration.app.graph, &configuration.cut)
            .expect("configured cut has consistent dimensions");

        let id = SessionId(self.next_session);
        self.next_session += 1;
        self.sessions.insert(
            id.0,
            Session {
                name,
                abstract_graph,
                user_qos,
                client_device,
                domain,
                configuration,
                position_s: 0.0,
                degrade_factor: 1.0,
                overhead_log: vec![("start".into(), overhead)],
            },
        );
        self.now_ms += overhead.total_ms();
        self.events.publish(RuntimeEvent {
            at_ms: self.now_ms,
            session: Some(id.0),
            trigger: ReconfigureTrigger::ApplicationStarted,
        });
        Ok(id)
    }

    /// Stops a session, refunding its resources and returning it. A
    /// *parked* session is removed from the retry queue instead — it
    /// holds no resources, so nothing is refunded.
    pub fn stop_session(&mut self, id: SessionId) -> Option<Session> {
        if let Some(s) = self.sessions.remove(&id.0) {
            self.env
                .refund_cut(&s.configuration.app.graph, &s.configuration.cut)
                .expect("charged cut has consistent dimensions");
            self.events.publish(RuntimeEvent {
                at_ms: self.now_ms,
                session: Some(id.0),
                trigger: ReconfigureTrigger::ApplicationStopped,
            });
            return Some(s);
        }
        let parked = self.parked.remove(id.0)?;
        self.events.publish(RuntimeEvent {
            at_ms: self.now_ms,
            session: Some(id.0),
            trigger: ReconfigureTrigger::ApplicationStopped,
        });
        Some(parked.session)
    }

    /// Parks an application *arrival* that could not be activated — the
    /// stale-view admission path. The session never held a placement, so
    /// it enters the retry queue with an empty configuration (footprint
    /// zero) and `error` as its witness; the next retry or eager
    /// recovery drain configures it from scratch. Nothing is charged and
    /// nothing needs refunding — the failed `configure` call already
    /// guaranteed that.
    ///
    /// Returns the allocated session id, which behaves exactly like an
    /// admitted-then-parked session for [`DomainServer::stop_session`]
    /// and [`DomainServer::process_retries`].
    pub fn park_arrival(
        &mut self,
        name: impl Into<String>,
        abstract_graph: AbstractServiceGraph,
        user_qos: QosVector,
        client_device: DeviceId,
        domain: Option<DomainId>,
        error: ConfigureError,
    ) -> SessionId {
        let id = SessionId(self.next_session);
        self.next_session += 1;
        let graph = ServiceGraph::new();
        let cut = Cut::from_assignment(&graph, Vec::new(), 1).expect("empty cut is consistent");
        let session = Session {
            name: name.into(),
            abstract_graph,
            user_qos,
            client_device,
            domain,
            configuration: Configuration {
                app: ComposedApplication {
                    graph,
                    report: OcReport::default(),
                    instances: Vec::new(),
                },
                cut,
                cost: 0.0,
            },
            position_s: 0.0,
            degrade_factor: 1.0,
            overhead_log: Vec::new(),
        };
        self.parked
            .park(id.0, session, error, self.now_ms, &self.retry_policy);
        self.events.publish(RuntimeEvent {
            at_ms: self.now_ms,
            session: Some(id.0),
            trigger: ReconfigureTrigger::SessionParked,
        });
        id
    }

    /// Handles a portal switch (e.g. PC → PDA): recomposes for the new
    /// client device, redistributes, downloads anything missing, and
    /// performs state handoff so the media "continues from the
    /// interruption point".
    ///
    /// # Errors
    ///
    /// Propagates [`ConfigureError`]; on failure the old configuration
    /// stays live.
    pub fn switch_device(
        &mut self,
        id: SessionId,
        new_device: DeviceId,
    ) -> Result<HandoffPlan, ConfigureError> {
        let (abstract_graph, user_qos, old_device, position_s, old_config, domain) = {
            let s = self
                .sessions
                .get(&id.0)
                .expect("switch_device on a live session");
            (
                s.abstract_graph.clone(),
                s.user_qos.clone(),
                s.client_device,
                s.position_s,
                s.configuration.clone(),
                s.domain,
            )
        };
        // Free the old configuration's resources first — the new one may
        // reuse the same devices. On failure the old charge is restored
        // and the old configuration stays live.
        self.env
            .refund_cut(&old_config.app.graph, &old_config.cut)
            .expect("charged cut has consistent dimensions");
        let configured = self.configure(&abstract_graph, &user_qos, new_device, domain);
        let (configuration, mut overhead) = match configured {
            Ok(ok) => ok,
            Err(e) => {
                self.env
                    .charge_cut(&old_config.app.graph, &old_config.cut)
                    .expect("restoring the previous charge");
                return Err(e);
            }
        };
        self.env
            .charge_cut(&configuration.app.graph, &configuration.cut)
            .expect("configured cut has consistent dimensions");
        overhead.downloading_ms = self.download_for(&configuration);

        let checkpoint = Checkpoint::capture(position_s, self.now_ms);
        let plan = HandoffPlan::new(checkpoint, self.links[new_device.index()], &self.costs);
        overhead.init_or_handoff_ms = plan.handoff_ms;

        let session = self.sessions.get_mut(&id.0).expect("checked above");
        session.client_device = new_device;
        session.configuration = configuration;
        session.degrade_factor = 1.0;
        session
            .overhead_log
            .push((format!("switch {old_device} -> {new_device}"), overhead));
        self.now_ms += overhead.total_ms();
        self.events.publish(RuntimeEvent {
            at_ms: self.now_ms,
            session: Some(id.0),
            trigger: ReconfigureTrigger::DeviceSwitched {
                from: old_device,
                to: new_device,
            },
        });
        Ok(plan)
    }

    /// Handles user mobility: the user (and their portal) moved to a new
    /// location/domain, so "the previous service components may no longer
    /// be available" — the session is recomposed against the services
    /// visible from the new domain, with state handoff.
    ///
    /// # Errors
    ///
    /// Propagates [`ConfigureError`]; on failure the old configuration
    /// stays live (and the session keeps its old domain).
    pub fn move_user(
        &mut self,
        id: SessionId,
        new_domain: Option<DomainId>,
        new_device: DeviceId,
    ) -> Result<HandoffPlan, ConfigureError> {
        let (abstract_graph, user_qos, position_s, old_config) = {
            let s = self
                .sessions
                .get(&id.0)
                .expect("move_user on a live session");
            (
                s.abstract_graph.clone(),
                s.user_qos.clone(),
                s.position_s,
                s.configuration.clone(),
            )
        };
        self.env
            .refund_cut(&old_config.app.graph, &old_config.cut)
            .expect("charged cut has consistent dimensions");
        let configured = self.configure(&abstract_graph, &user_qos, new_device, new_domain);
        let (configuration, mut overhead) = match configured {
            Ok(ok) => ok,
            Err(e) => {
                self.env
                    .charge_cut(&old_config.app.graph, &old_config.cut)
                    .expect("restoring the previous charge");
                return Err(e);
            }
        };
        self.env
            .charge_cut(&configuration.app.graph, &configuration.cut)
            .expect("configured cut has consistent dimensions");
        overhead.downloading_ms = self.download_for(&configuration);
        let checkpoint = Checkpoint::capture(position_s, self.now_ms);
        let plan = HandoffPlan::new(checkpoint, self.links[new_device.index()], &self.costs);
        overhead.init_or_handoff_ms = plan.handoff_ms;

        let location = new_domain.map_or("the whole space".to_owned(), |d| {
            self.registry
                .domain(d)
                .map_or_else(|| d.to_string(), |dom| dom.name.clone())
        });
        let session = self.sessions.get_mut(&id.0).expect("checked above");
        session.client_device = new_device;
        session.domain = new_domain;
        session.configuration = configuration;
        session.degrade_factor = 1.0;
        session
            .overhead_log
            .push((format!("move to {location}"), overhead));
        self.now_ms += overhead.total_ms();
        self.events.publish(RuntimeEvent {
            at_ms: self.now_ms,
            session: Some(id.0),
            trigger: ReconfigureTrigger::UserMoved {
                to_location: location,
            },
        });
        Ok(plan)
    }

    /// Handles a device crash (Section 3.3: "if one of old devices
    /// crashes, the service distributor needs to calculate new service
    /// distributions for the changed resource availability").
    ///
    /// Delegates to [`DomainServer::handle_crash_many`] with a
    /// single-device scope.
    pub fn handle_crash(&mut self, device: DeviceId) -> RecoveryReport {
        self.handle_crash_many(&[device])
    }

    /// Handles a correlated crash: every device in `devices` goes down
    /// together (a rack, a room, a shared power feed), followed by **one**
    /// combined recovery pass over the union of the changed resources.
    ///
    /// Each crashed device's capacity and links drop to zero, and every
    /// service instance *hosted* on it (prototype pinned to the device)
    /// is unregistered from discovery until the device recovers — so
    /// re-composition of affected sessions falls back to surviving
    /// instances instead of failing on an unplaceable pin.
    pub fn handle_crash_many(&mut self, devices: &[DeviceId]) -> RecoveryReport {
        let label = match devices {
            [single] => format!("recover from {single} crash"),
            _ => {
                let names: Vec<String> = devices.iter().map(ToString::to_string).collect();
                format!("recover from correlated crash of {}", names.join("+"))
            }
        };
        self.take_down_many(devices, &label, false)
    }

    /// The failure detector suspects `devices`: their registry leases
    /// expired without a heartbeat renewal. The *effect* is exactly a
    /// crash — capacity zeroed, hosted instances hidden from discovery,
    /// touching sessions re-placed or parked through the staged
    /// pipeline — because the detector cannot tell a crash from a
    /// partition. Only the published trigger differs
    /// ([`ReconfigureTrigger::DeviceSuspected`]), recording that this is
    /// a belief, not ground truth, and may be withdrawn by
    /// [`DomainServer::heartbeat`].
    pub fn suspect_many(&mut self, devices: &[DeviceId]) -> RecoveryReport {
        let names: Vec<String> = devices.iter().map(ToString::to_string).collect();
        let label = format!("park off suspected {}", names.join("+"));
        self.take_down_many(devices, &label, true)
    }

    fn take_down_many(
        &mut self,
        devices: &[DeviceId],
        label: &str,
        suspicion: bool,
    ) -> RecoveryReport {
        let mut delta = ResourceDelta::default();
        for &device in devices {
            let d = device.index();
            if suspicion {
                self.suspected.insert(d);
                // Revoke so the same expired lease is never acted on
                // twice by a later anti-entropy sweep.
                self.registry.revoke_lease(d);
            }
            if let Some(dev) = self.capacity.device_mut(d) {
                let dim = dev.availability().dim();
                dev.set_availability(ubiqos_model::ResourceVector::zero(dim));
            }
            delta.devices.insert(d);
            for other in 0..self.capacity.device_count() {
                if other != d {
                    self.capacity.bandwidth_mut().set(d, other, 0.0);
                    delta.links.insert((d.min(other), d.max(other)));
                }
            }
            let hosted: Vec<String> = self
                .registry
                .hosted_on(d)
                .into_iter()
                .map(|desc| desc.instance_id.clone())
                .collect();
            for instance_id in hosted {
                if let Some(desc) = self.registry.unregister(&instance_id) {
                    self.hosted_stash.entry(d).or_default().push(desc);
                }
            }
            self.events.publish(RuntimeEvent {
                at_ms: self.now_ms,
                session: None,
                trigger: if suspicion {
                    ReconfigureTrigger::DeviceSuspected(device)
                } else {
                    ReconfigureTrigger::DeviceCrashed(device)
                },
            });
        }
        self.recovery_pass(label, &delta)
    }

    /// Brings a crashed (or degraded) device back: its capacity returns
    /// to the *pristine* value the server was built with, its hosted
    /// service instances are re-registered, and its links return to
    /// pristine **except** where a fault degraded the link independently
    /// via [`DomainServer::degrade_link`] (those keep their degraded
    /// bandwidth — a rebooted node does not repair the network around it)
    /// or where the other endpoint is still down (those stay at zero).
    pub fn recover_device(&mut self, device: DeviceId) -> RecoveryReport {
        let label = format!("re-place after {device} recovery");
        self.bring_up(device, &label, ReconfigureTrigger::DeviceRecovered(device))
    }

    /// Withdraws a suspicion: the device's lease was renewed again (its
    /// heartbeats reached the server after a heal or recovery), so its
    /// capacity and hosted instances are restored exactly as after a
    /// real crash+recovery, publishing
    /// [`ReconfigureTrigger::DeviceReinstated`]. For a *falsely*
    /// suspected device (healthy behind a partition) this is the clean
    /// undo the detector owes it: parked sessions become placeable again
    /// and the eager retry drain inside the recovery pass re-admits
    /// them.
    pub fn reinstate_device(&mut self, device: DeviceId) -> RecoveryReport {
        self.suspected.remove(&device.index());
        let label = format!("re-place after {device} reinstatement");
        self.bring_up(device, &label, ReconfigureTrigger::DeviceReinstated(device))
    }

    fn bring_up(
        &mut self,
        device: DeviceId,
        label: &str,
        trigger: ReconfigureTrigger,
    ) -> RecoveryReport {
        let d = device.index();
        if let (Some(dev), Some(fresh)) = (self.capacity.device_mut(d), self.pristine.device(d)) {
            dev.set_availability(fresh.availability().clone());
        }
        let mut delta = ResourceDelta::default();
        delta.devices.insert(d);
        for other in 0..self.capacity.device_count() {
            if other != d {
                let key = (d.min(other), d.max(other));
                let other_down = self
                    .capacity
                    .device(other)
                    .is_some_and(|dev| dev.availability().is_zero());
                let mbps = if other_down {
                    0.0
                } else {
                    self.link_overrides
                        .get(&key)
                        .copied()
                        .unwrap_or_else(|| self.pristine.bandwidth().get(d, other))
                };
                self.capacity.bandwidth_mut().set(d, other, mbps);
                delta.links.insert(key);
            }
        }
        if let Some(stash) = self.hosted_stash.remove(&d) {
            for desc in stash {
                self.registry.register(desc);
            }
        }
        self.events.publish(RuntimeEvent {
            at_ms: self.now_ms,
            session: None,
            trigger,
        });
        self.recovery_pass(label, &delta)
    }

    /// Records a heartbeat from `device`: its registry lease is renewed
    /// to `now + grace_ms` of server virtual time. If the device was
    /// *suspected*, the heartbeat is also the anti-entropy signal that
    /// the suspicion is stale (the device healed, or recovered and came
    /// back) — it is reinstated and the recovery pass's report returned.
    ///
    /// Renewal itself is epoch-neutral on the registry: steady-state
    /// heartbeats do not invalidate composition caches.
    pub fn heartbeat(&mut self, device: DeviceId, grace_ms: f64) -> Option<RecoveryReport> {
        let expiry = (self.now_ms + grace_ms) as u64;
        self.registry.renew_lease(device.index(), expiry);
        if self.suspected.contains(&device.index()) {
            Some(self.reinstate_device(device))
        } else {
            None
        }
    }

    /// The anti-entropy sweep on lease expiry: every device whose lease
    /// has expired at the server's current virtual time — and that is
    /// not already suspected — becomes suspected via
    /// [`DomainServer::suspect_many`]. Returns the newly suspected
    /// devices paired with their recovery reports, in ascending device
    /// order (deterministic for a given state).
    pub fn expire_overdue_leases(&mut self) -> Vec<(DeviceId, RecoveryReport)> {
        let overdue: Vec<usize> = self
            .registry
            .expired_leases(self.now_ms as u64)
            .into_iter()
            .filter(|d| !self.suspected.contains(d))
            .collect();
        overdue
            .into_iter()
            .map(|d| {
                let device = DeviceId::from_index(d);
                let report = self.suspect_many(&[device]);
                (device, report)
            })
            .collect()
    }

    /// Ground-truth reachability injection: the fault harness marks
    /// devices unreachable (crashed, or partitioned away from this
    /// server) so the download/activation step can fail placements the
    /// detector's stale view allowed. Placement and composition never
    /// read this set — that is the whole point: the control plane acts
    /// on its *belief*, and reality pushes back only at activation time.
    /// Perfect-detection campaigns never call this, leaving the check
    /// inert.
    pub fn set_reachable(&mut self, device: DeviceId, reachable: bool) {
        if reachable {
            self.unreachable.remove(&device.index());
        } else {
            self.unreachable.insert(device.index());
        }
    }

    /// Whether the failure detector currently suspects `device`.
    pub fn is_suspected(&self, device: DeviceId) -> bool {
        self.suspected.contains(&device.index())
    }

    /// Device indices the failure detector currently suspects.
    pub fn suspected_devices(&self) -> &BTreeSet<usize> {
        &self.suspected
    }

    /// Witnessed stale-view activation failures so far (monotone).
    pub fn stale_view_count(&self) -> u64 {
        self.stale_views.load(Ordering::Relaxed)
    }

    /// Applies a link-bandwidth fluctuation: the capacity of the `a`-`b`
    /// link becomes `mbps` (degradation or restoration). The value is
    /// remembered as the link's own state, surviving crash/recovery
    /// cycles of its endpoints, until a later fluctuation restores the
    /// pristine bandwidth. Affected sessions are re-placed through the
    /// staged pipeline; if an endpoint is currently down the link's
    /// capacity stays at zero (only the override is recorded).
    pub fn degrade_link(&mut self, a: DeviceId, b: DeviceId, mbps: f64) -> RecoveryReport {
        let key = (a.index().min(b.index()), a.index().max(b.index()));
        let pristine_mbps = self.pristine.bandwidth().get(key.0, key.1);
        if mbps == pristine_mbps {
            self.link_overrides.remove(&key);
        } else {
            self.link_overrides.insert(key, mbps);
        }
        let endpoint_down = [key.0, key.1].into_iter().any(|d| {
            self.capacity
                .device(d)
                .is_some_and(|dev| dev.availability().is_zero())
        });
        if !endpoint_down {
            self.capacity.bandwidth_mut().set(key.0, key.1, mbps);
        }
        self.events.publish(RuntimeEvent {
            at_ms: self.now_ms,
            session: None,
            trigger: ReconfigureTrigger::LinkFluctuation { a, b },
        });
        let mut delta = ResourceDelta::default();
        delta.links.insert(key);
        self.recovery_pass(&format!("absorb link fluctuation on {a}-{b}"), &delta)
    }

    /// Applies a resource fluctuation: the device's *capacity* becomes
    /// `availability` (running sessions keep their charges). Affected
    /// sessions are re-placed through the staged pipeline.
    pub fn fluctuate(
        &mut self,
        device: DeviceId,
        availability: ubiqos_model::ResourceVector,
    ) -> RecoveryReport {
        if let Some(dev) = self.capacity.device_mut(device.index()) {
            dev.set_availability(availability);
        }
        self.events.publish(RuntimeEvent {
            at_ms: self.now_ms,
            session: None,
            trigger: ReconfigureTrigger::ResourceFluctuation(device),
        });
        let mut delta = ResourceDelta::default();
        delta.devices.insert(device.index());
        self.recovery_pass(&format!("absorb fluctuation on {device}"), &delta)
    }

    /// The devices and links each live session currently charges, plus
    /// the summed charges per resource — the inputs of invalid-set
    /// selection.
    fn touch_and_charges(
        &self,
    ) -> (
        TouchMap,
        Vec<ubiqos_model::ResourceVector>,
        BTreeMap<(usize, usize), f64>,
    ) {
        let dim = self
            .capacity
            .device(0)
            .map_or(0, |dev| dev.availability().dim());
        let mut device_charge =
            vec![ubiqos_model::ResourceVector::zero(dim); self.capacity.device_count()];
        let mut link_charge: BTreeMap<(usize, usize), f64> = BTreeMap::new();
        let mut touch = BTreeMap::new();
        for (&raw_id, s) in &self.sessions {
            let graph = &s.configuration.app.graph;
            let cut = &s.configuration.cut;
            let mut devices = BTreeSet::new();
            for (part, charge) in device_charge.iter_mut().enumerate().take(cut.parts()) {
                let used = cut
                    .part_resource_sum(graph, part)
                    .expect("live cut has consistent dimensions");
                if !used.is_zero() {
                    devices.insert(part);
                    *charge = charge
                        .checked_add(&used)
                        .expect("charge accumulation has consistent dimensions");
                }
            }
            let throughput = cut.inter_part_throughput(graph);
            let mut links = BTreeSet::new();
            for (i, row) in throughput.iter().enumerate() {
                for (j, &mbps) in row.iter().enumerate().skip(i + 1) {
                    let both = mbps + throughput[j][i];
                    if both > 0.0 {
                        links.insert((i, j));
                        *link_charge.entry((i, j)).or_insert(0.0) += both;
                    }
                }
            }
            touch.insert(raw_id, (devices, links));
        }
        (touch, device_charge, link_charge)
    }

    /// The sessions whose placement a capacity change invalidated: every
    /// session touching an *overcommitted* resource (summed charges above
    /// current capacity). `scan` restricts which resources are examined
    /// for overcommitment — the incremental mode passes the fault's
    /// delta, the full mode passes `None` (examine everything).
    fn invalid_sessions(
        &self,
        touch: &TouchMap,
        device_charge: &[ubiqos_model::ResourceVector],
        link_charge: &BTreeMap<(usize, usize), f64>,
        scan: Option<&ResourceDelta>,
    ) -> BTreeSet<u64> {
        const EPS: f64 = 1e-6;
        let mut over_devices: BTreeSet<usize> = BTreeSet::new();
        let mut over_links: BTreeSet<(usize, usize)> = BTreeSet::new();
        for (d, charge) in device_charge.iter().enumerate() {
            if scan.is_some_and(|delta| !delta.devices.contains(&d)) {
                continue;
            }
            let cap = self
                .capacity
                .device(d)
                .expect("charge vector indexes the space")
                .availability();
            if charge
                .amounts()
                .iter()
                .zip(cap.amounts())
                .any(|(&used, &have)| used > have + EPS)
            {
                over_devices.insert(d);
            }
        }
        for (&key, &used) in link_charge {
            if scan.is_some_and(|delta| !delta.links.contains(&key)) {
                continue;
            }
            let cap = self.capacity.bandwidth().get(key.0, key.1);
            if cap.is_finite() && used > cap + EPS {
                over_links.insert(key);
            }
        }
        touch
            .iter()
            .filter(|(_, (devices, links))| {
                devices.iter().any(|d| over_devices.contains(d))
                    || links.iter().any(|l| over_links.contains(l))
            })
            .map(|(&id, _)| id)
            .collect()
    }

    /// One staged recovery pass after a capacity change.
    ///
    /// Keep-if-valid: sessions not touching an overcommitted resource
    /// keep their placement untouched. The re-place set is the invalid
    /// sessions plus any *degraded* session touching a changed resource
    /// (so quality climbs back up the ladder when capacity returns). Each
    /// re-placed session walks the ladder from full quality down; ladder
    /// exhaustion parks it (or drops it under [`RetryPolicy::strict`]).
    /// Ends by draining due retries.
    fn recovery_pass(&mut self, label: &str, delta: &ResourceDelta) -> RecoveryReport {
        let considered = self.sessions.len();
        let (touch, device_charge, link_charge) = self.touch_and_charges();
        let invalid = match self.recovery_mode {
            RecoveryMode::Incremental => {
                let inc = self.invalid_sessions(&touch, &device_charge, &link_charge, Some(delta));
                if cfg!(debug_assertions) {
                    // The cross-check: only resources the fault changed
                    // can have become overcommitted, so the delta-guided
                    // set must equal the exhaustive one.
                    let full = self.invalid_sessions(&touch, &device_charge, &link_charge, None);
                    debug_assert_eq!(
                        inc, full,
                        "incremental invalid set diverged from the full scan"
                    );
                }
                inc
            }
            RecoveryMode::Full => self.invalid_sessions(&touch, &device_charge, &link_charge, None),
        };
        let mut replace: BTreeSet<u64> = invalid;
        for (&raw_id, (devices, links)) in &touch {
            if self.sessions[&raw_id].degrade_factor < 1.0
                && (devices.iter().any(|d| delta.devices.contains(d))
                    || links.iter().any(|l| delta.links.contains(l)))
            {
                replace.insert(raw_id);
            }
        }

        let mut report = RecoveryReport {
            considered,
            affected: replace.len(),
            ..RecoveryReport::default()
        };
        // Rebuild the residual from the kept sessions' charges; the
        // re-place set re-admits into what remains, in id order.
        self.env = self.capacity.clone();
        for (&raw_id, s) in &self.sessions {
            if !replace.contains(&raw_id) {
                self.env
                    .charge_cut(&s.configuration.app.graph, &s.configuration.cut)
                    .expect("kept cut has consistent dimensions");
            }
        }
        for raw_id in replace {
            let (abstract_graph, user_qos, client_device, domain, old_factor, warm) = {
                let s = &self.sessions[&raw_id];
                (
                    s.abstract_graph.clone(),
                    s.user_qos.clone(),
                    s.client_device,
                    s.domain,
                    s.degrade_factor,
                    warm_seed_of(&s.configuration),
                )
            };
            match self.place_with_ladder(
                &abstract_graph,
                &user_qos,
                client_device,
                domain,
                warm.as_deref(),
            ) {
                Ok((configuration, mut overhead, factor)) => {
                    overhead.downloading_ms = self.download_for(&configuration);
                    overhead.init_or_handoff_ms =
                        self.costs.handoff_ms(self.links[client_device.index()]);
                    self.env
                        .charge_cut(&configuration.app.graph, &configuration.cut)
                        .expect("configured cut has consistent dimensions");
                    let session = self.sessions.get_mut(&raw_id).expect("live id");
                    session.configuration = configuration;
                    session.degrade_factor = factor;
                    session.overhead_log.push((label.to_owned(), overhead));
                    self.now_ms += overhead.total_ms();
                    if factor < old_factor {
                        self.events.publish(RuntimeEvent {
                            at_ms: self.now_ms,
                            session: Some(raw_id),
                            trigger: ReconfigureTrigger::SessionDegraded {
                                from: old_factor,
                                to: factor,
                            },
                        });
                    }
                    if factor >= 1.0 {
                        report.recovered.push(SessionId(raw_id));
                    } else {
                        report.degraded.push((
                            SessionId(raw_id),
                            Degradation {
                                from: old_factor,
                                to: factor,
                            },
                        ));
                    }
                }
                Err(e) => self.park_or_drop(raw_id, e, &mut report),
            }
        }
        // A recovery event is a direct signal that capacity changed, so
        // retry *every* parked session now, in priority order, rather
        // than waiting for the backoff poll. Eager attempts are free:
        // they consume no retry budget.
        let retries = self.drain_retries(true);
        report.absorb(retries);
        report
    }

    /// Walks the degradation ladder from full quality downwards and
    /// returns the first level the configurator can place, with its
    /// factor. Errors with the *last* (lowest-level) failure when no
    /// level fits.
    fn place_with_ladder(
        &self,
        abstract_graph: &AbstractServiceGraph,
        user_qos: &QosVector,
        client_device: DeviceId,
        domain: Option<DomainId>,
        warm: Option<&[usize]>,
    ) -> Result<(Configuration, ConfigOverhead, f64), ConfigureError> {
        let mut last_err = None;
        for step in self.ladder.steps(user_qos, abstract_graph) {
            match self.configure_scaled(
                &step.abstract_graph,
                &step.user_qos,
                client_device,
                domain,
                step.factor,
                warm,
                true,
            ) {
                Ok((configuration, overhead)) => return Ok((configuration, overhead, step.factor)),
                Err(e) => last_err = Some(e),
            }
        }
        Err(last_err.expect("the ladder always has at least one level"))
    }

    /// Ladder exhaustion: park the session for retry, or drop it
    /// immediately when the retry budget is zero. The session holds no
    /// charge at this point (the caller refunded or never charged it).
    fn park_or_drop(&mut self, raw_id: u64, error: ConfigureError, report: &mut RecoveryReport) {
        let session = self
            .sessions
            .remove(&raw_id)
            .expect("park_or_drop on a live session");
        if self.retry_policy.max_attempts == 0 {
            self.events.publish(RuntimeEvent {
                at_ms: self.now_ms,
                session: Some(raw_id),
                trigger: ReconfigureTrigger::ApplicationStopped,
            });
            report.dropped.push(SessionId(raw_id));
            report.drop_errors.push((SessionId(raw_id), error));
        } else {
            self.parked
                .park(raw_id, session, error, self.now_ms, &self.retry_policy);
            self.events.publish(RuntimeEvent {
                at_ms: self.now_ms,
                session: Some(raw_id),
                trigger: ReconfigureTrigger::SessionParked,
            });
            report.parked.push(SessionId(raw_id));
        }
    }

    /// Retries every parked session whose backoff has elapsed, in
    /// priority order — (park time, QoS satisfaction, resource
    /// footprint); see [`RetryQueue`]. Success re-admits the session
    /// (charging its new placement); failure doubles the backoff, and
    /// budget exhaustion drops the session with the witnessing error.
    /// Harnesses should call this as virtual time advances; recovery
    /// passes additionally drain the whole queue *eagerly* (backoff and
    /// budget ignored), since a recovery event signals fresh capacity.
    pub fn process_retries(&mut self) -> RecoveryReport {
        self.drain_retries(false)
    }

    /// The retry pass. `eager` retries every parked session regardless of
    /// backoff, and its failures are free — no attempt is consumed and
    /// the schedule is untouched (only the witnessing error updates), so
    /// a burst of recovery events cannot exhaust a session's budget.
    fn drain_retries(&mut self, eager: bool) -> RecoveryReport {
        let mut report = RecoveryReport::default();
        let ids = if eager {
            self.parked.all_in_priority_order()
        } else {
            self.parked.due(self.now_ms)
        };
        for raw_id in ids {
            let mut parked = self.parked.remove(raw_id).expect("ranked id is parked");
            let warm = warm_seed_of(&parked.session.configuration);
            let outcome = self.place_with_ladder(
                &parked.session.abstract_graph,
                &parked.session.user_qos,
                parked.session.client_device,
                parked.session.domain,
                warm.as_deref(),
            );
            match outcome {
                Ok((configuration, mut overhead, factor)) => {
                    overhead.downloading_ms = self.download_for(&configuration);
                    overhead.init_or_handoff_ms = self
                        .costs
                        .handoff_ms(self.links[parked.session.client_device.index()]);
                    self.env
                        .charge_cut(&configuration.app.graph, &configuration.cut)
                        .expect("configured cut has consistent dimensions");
                    let mut session = parked.session;
                    session.configuration = configuration;
                    session.degrade_factor = factor;
                    session
                        .overhead_log
                        .push(("re-admit from park".to_owned(), overhead));
                    self.now_ms += overhead.total_ms();
                    self.sessions.insert(raw_id, session);
                    self.events.publish(RuntimeEvent {
                        at_ms: self.now_ms,
                        session: Some(raw_id),
                        trigger: ReconfigureTrigger::SessionReadmitted,
                    });
                    report.readmitted.push(SessionId(raw_id));
                }
                Err(e) if eager => {
                    // Free attempt: keep the budget and schedule intact,
                    // remember the freshest witness.
                    parked.last_error = e;
                    self.parked.reinsert(raw_id, parked);
                }
                Err(e) => {
                    parked.attempts += 1;
                    if parked.attempts >= self.retry_policy.max_attempts {
                        self.events.publish(RuntimeEvent {
                            at_ms: self.now_ms,
                            session: Some(raw_id),
                            trigger: ReconfigureTrigger::ApplicationStopped,
                        });
                        report.dropped.push(SessionId(raw_id));
                        report.drop_errors.push((SessionId(raw_id), e));
                    } else {
                        parked.next_retry_ms =
                            self.now_ms + self.retry_policy.backoff_ms(parked.attempts);
                        parked.last_error = e;
                        self.parked.reinsert(raw_id, parked);
                    }
                }
            }
        }
        report
    }

    /// Runs the two-tier pipeline and prices its composition and
    /// distribution phases.
    fn configure(
        &self,
        abstract_graph: &AbstractServiceGraph,
        user_qos: &QosVector,
        client_device: DeviceId,
        domain: Option<DomainId>,
    ) -> Result<(Configuration, ConfigOverhead), ConfigureError> {
        self.configure_scaled(
            abstract_graph,
            user_qos,
            client_device,
            domain,
            1.0,
            None,
            true,
        )
    }

    /// Runs the two-tier pipeline on behalf of the batched pipeline
    /// runtime without mutating any *observable* state: nothing is
    /// charged, downloaded, or logged, virtual time does not advance,
    /// and — unlike [`DomainServer::preview`] — a stale-view outcome
    /// does **not** bump the `stale_views` counter here (the adopting
    /// [`DomainServer::admit_speculated`] call does, exactly once, iff
    /// the speculation is actually adopted). Takes `&self`, so
    /// independent speculations for distinct requests may run
    /// concurrently on the worker pool.
    ///
    /// # Errors
    ///
    /// Propagates [`ConfigureError`] from either tier.
    pub fn speculate_configure(
        &self,
        abstract_graph: &AbstractServiceGraph,
        user_qos: &QosVector,
        client_device: DeviceId,
        domain: Option<DomainId>,
    ) -> Result<(Configuration, ConfigOverhead), ConfigureError> {
        self.configure_scaled(
            abstract_graph,
            user_qos,
            client_device,
            domain,
            1.0,
            None,
            false,
        )
    }

    /// Adopts a previously [`DomainServer::speculate_configure`]d
    /// outcome as a session start. The success path replays
    /// [`DomainServer::start_session`]'s commit tail byte-for-byte
    /// (download, initialization pricing, capacity charge, session
    /// insertion, virtual-time advance, event publication); the failure
    /// path re-raises the speculated error, counting a stale view
    /// exactly as the serial admission path would have.
    ///
    /// Soundness requires the speculation to still be *fresh*: no
    /// charge, refund, fault, reinstatement, lease expiry, or retry
    /// admission may have occurred since it ran. The pipeline runtime
    /// enforces this by invalidating its speculation table on every
    /// mutating event, so `speculate_configure` + `admit_speculated`
    /// back-to-back is exactly `start_session` decomposed.
    ///
    /// # Errors
    ///
    /// Re-raises the speculated [`ConfigureError`]; the session is not
    /// created on failure.
    ///
    /// The name is taken as a thunk: adoption knows the admission
    /// outcome before a session record exists, so denied arrivals —
    /// the bulk of an overload campaign — never pay for building the
    /// name string. (The serial path cannot make this move: it must
    /// hand the name to the configurator before the outcome is known.)
    pub fn admit_speculated(
        &mut self,
        name: impl FnOnce() -> String,
        abstract_graph: AbstractServiceGraph,
        user_qos: QosVector,
        client_device: DeviceId,
        speculated: Result<(Configuration, ConfigOverhead), ConfigureError>,
    ) -> Result<SessionId, ConfigureError> {
        let (configuration, mut overhead) = match speculated {
            Ok(ok) => ok,
            Err(e) => {
                if matches!(e, ConfigureError::StaleView { .. }) {
                    self.stale_views.fetch_add(1, Ordering::Relaxed);
                }
                return Err(e);
            }
        };
        overhead.downloading_ms = self.download_for(&configuration);
        overhead.init_or_handoff_ms = self
            .costs
            .initialization_ms(configuration.app.graph.component_count());
        self.env
            .charge_cut(&configuration.app.graph, &configuration.cut)
            .expect("configured cut has consistent dimensions");

        let id = SessionId(self.next_session);
        self.next_session += 1;
        self.sessions.insert(
            id.0,
            Session {
                name: name(),
                abstract_graph,
                user_qos,
                client_device,
                domain: None,
                configuration,
                position_s: 0.0,
                degrade_factor: 1.0,
                overhead_log: vec![("start".into(), overhead)],
            },
        );
        self.now_ms += overhead.total_ms();
        self.events.publish(RuntimeEvent {
            at_ms: self.now_ms,
            session: Some(id.0),
            trigger: ReconfigureTrigger::ApplicationStarted,
        });
        Ok(id)
    }

    /// [`DomainServer::configure`] with the degradation ladder's demand
    /// factor: the graph is composed as usual, then every component's
    /// resource demand is scaled by `demand_factor` *before* the
    /// distribution tier fits it (a rung-`f` session streams — and
    /// charges — proportionally less). `warm` optionally carries the
    /// session's previous placement as a solver seed (used only under
    /// [`PlacementStrategy::Optimal`] with warm starts enabled).
    /// `count_stale` controls whether a stale-view outcome increments
    /// the observable `stale_views` counter — every path does except
    /// speculation, which defers the count to adoption time.
    #[allow(clippy::too_many_arguments)]
    fn configure_scaled(
        &self,
        abstract_graph: &AbstractServiceGraph,
        user_qos: &QosVector,
        client_device: DeviceId,
        domain: Option<DomainId>,
        demand_factor: f64,
        warm: Option<&[usize]>,
        count_stale: bool,
    ) -> Result<(Configuration, ConfigOverhead), ConfigureError> {
        let wall = Instant::now();
        let discover_before = self.registry.discovery_stats().wall_nanos;
        let mut configurator = ServiceConfigurator::new(&self.registry);
        let request = ConfigureRequest {
            abstract_graph,
            user_qos: user_qos.clone(),
            client_device,
            client_props: self.device_props[client_device.index()],
            domain,
            env: &self.env,
        };
        let composed = self.compose_cached(&configurator, &request, demand_factor);
        let compose_wall_ms = wall.elapsed().as_secs_f64() * 1e3;
        let discover_ms =
            (self.registry.discovery_stats().wall_nanos - discover_before) as f64 / 1e6;

        let place = Instant::now();
        let placed = composed.and_then(|app| match self.placement {
            PlacementStrategy::Heuristic => configurator.distribute_only(app, &self.env),
            PlacementStrategy::Optimal { warm_start } => {
                self.place_optimal(app, if warm_start { warm } else { None })
            }
            PlacementStrategy::Portfolio { warm_start } => {
                self.place_portfolio(app, if warm_start { warm } else { None })
            }
        });
        {
            let mut stages = self.stages.lock().expect("stage lock");
            stages.discover_ms += discover_ms;
            stages.compose_ms += (compose_wall_ms - discover_ms).max(0.0);
            stages.place_ms += place.elapsed().as_secs_f64() * 1e3;
            stages.configures += 1;
        }
        let configuration = placed?;
        // Composition and placement above ran against the detector's
        // (possibly stale) view; activation is the first contact with
        // ground truth. A component landing on an unreachable device
        // fails *here*, witnessed, before anything is charged.
        if !self.unreachable.is_empty() {
            for inst in &configuration.app.instances {
                if let Some(device) = configuration.cut.part_of(inst.component) {
                    if self.unreachable.contains(&device) {
                        if count_stale {
                            self.stale_views.fetch_add(1, Ordering::Relaxed);
                        }
                        return Err(ConfigureError::StaleView { device });
                    }
                }
            }
        }
        // The virtual overheads are a function of graph shape only, so a
        // cache hit and a fresh composition price identically — virtual
        // time and the deterministic logs cannot observe the cache.
        let overhead = ConfigOverhead {
            composition_ms: self.costs.composition_ms(
                abstract_graph.spec_count(),
                configuration.app.report.corrections.len(),
            ),
            distribution_ms: self
                .costs
                .distribution_ms(configuration.app.graph.component_count()),
            downloading_ms: 0.0,
            init_or_handoff_ms: 0.0,
        };
        Ok((configuration, overhead))
    }

    /// Composes the request's application through the epoch-validated
    /// [`CompositionCache`], scaling resources by `demand_factor` before
    /// the entry is stored (the factor is part of the key, so each ladder
    /// rung caches its own scaled graph).
    fn compose_cached(
        &self,
        configurator: &ServiceConfigurator<'_>,
        request: &ConfigureRequest<'_>,
        demand_factor: f64,
    ) -> Result<ComposedApplication, ConfigureError> {
        // Everything composition reads besides the registry: the Debug
        // renderings are deterministic, and the client's device properties
        // are covered by its index (they are fixed at construction). The
        // rendering streams straight into the fingerprint — no per-request
        // key string is allocated.
        let key = CacheKey::of(format_args!(
            "{:?}|{:?}|{:?}|{}|{:016x}",
            request.abstract_graph,
            request.user_qos,
            request.domain,
            request.client_device.index(),
            demand_factor.to_bits()
        ));
        {
            let mut cache = self.config_cache.lock().expect("config cache lock");
            if let Some(app) = cache.lookup(key, &self.registry) {
                #[cfg(debug_assertions)]
                {
                    // Prove the hit byte-identical to a fresh composition
                    // (the epoch-revalidation soundness argument, checked).
                    let mut fresh = configurator.compose_only(request)?;
                    if demand_factor < 1.0 {
                        fresh.scale_resources(demand_factor);
                    }
                    assert_eq!(
                        app, fresh,
                        "cached composition diverged from fresh recomposition"
                    );
                }
                return Ok(app);
            }
        }
        let epoch = self.registry.epoch();
        let mut app = configurator.compose_only(request)?;
        if demand_factor < 1.0 {
            app.scale_resources(demand_factor);
        }
        let mut cache = self.config_cache.lock().expect("config cache lock");
        if cache.enabled() {
            let dep_types: BTreeSet<String> = request
                .abstract_graph
                .specs()
                .map(|(_, spec)| spec.service_type.clone())
                .collect();
            cache.insert(key, app.clone(), dep_types, epoch);
        }
        Ok(app)
    }

    /// Places a composed application with the persistent exhaustive
    /// branch-and-bound solver, optionally seeding its incumbent with
    /// `warm` (a previous placement of the same session).
    fn place_optimal(
        &self,
        app: ComposedApplication,
        warm: Option<&[usize]>,
    ) -> Result<Configuration, ConfigureError> {
        let weights = Weights::default();
        let mut solver = self.optimal.lock().expect("solver lock");
        solver.set_warm_start(warm.map(<[usize]>::to_vec));
        let problem = OsdProblem::new(&app.graph, &self.env, &weights);
        let result = solver.distribute(&problem);
        if let Some(stats) = solver.last_stats() {
            let mut totals = self.placement_totals.lock().expect("placement totals lock");
            totals.solves += 1;
            if stats.warm_start_used {
                totals.warm_solves += 1;
            }
            totals.nodes_expanded += stats.nodes_expanded;
            totals.pruned_bound += stats.pruned_bound;
        }
        let cut = result?;
        let cost = problem.cost(&cut);
        Ok(Configuration { app, cut, cost })
    }

    /// Places a composed application through the solver portfolio:
    /// greedy seed, exact B&B within the node limit, hierarchical
    /// abstraction-refinement beyond it. Same counter accounting as
    /// [`DomainServer::place_optimal`], plus the hierarchical-route
    /// tally.
    fn place_portfolio(
        &self,
        app: ComposedApplication,
        warm: Option<&[usize]>,
    ) -> Result<Configuration, ConfigureError> {
        let weights = Weights::default();
        let mut solver = self.portfolio.lock().expect("portfolio lock");
        solver.set_warm_start(warm.map(<[usize]>::to_vec));
        let problem = OsdProblem::new(&app.graph, &self.env, &weights);
        let result = solver.distribute(&problem);
        if let Some(outcome) = solver.last_outcome() {
            let mut totals = self.placement_totals.lock().expect("placement totals lock");
            totals.solves += 1;
            if outcome.stats.warm_start_used {
                totals.warm_solves += 1;
            }
            totals.nodes_expanded += outcome.stats.nodes_expanded;
            totals.pruned_bound += outcome.stats.pruned_bound;
            if outcome.route == PortfolioRoute::Hierarchical {
                totals.hierarchical_routes += 1;
            }
        }
        let cut = result?;
        let cost = problem.cost(&cut);
        Ok(Configuration { app, cut, cost })
    }

    /// Downloads every instance of a configuration onto its assigned
    /// device, returning the total download time.
    fn download_for(&mut self, configuration: &Configuration) -> f64 {
        let wall = Instant::now();
        let mut total = 0.0;
        for inst in &configuration.app.instances {
            if let Some(device) = configuration.cut.part_of(inst.component) {
                total += self.repository.ensure_installed(
                    device,
                    &inst.instance_id,
                    inst.code_size_mb,
                    self.links[device],
                    &self.costs,
                );
            }
        }
        self.stages.lock().expect("stage lock").download_ms += wall.elapsed().as_secs_f64() * 1e3;
        total
    }
}

/// A session's current placement rendered as a warm-start seed for the
/// exhaustive solver: `Some` only when every component is placed.
fn warm_seed_of(configuration: &Configuration) -> Option<Vec<usize>> {
    (0..configuration.app.graph.component_count())
        .map(|i| configuration.cut.part_of(ComponentId::from_index(i)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ubiqos_discovery::ServiceDescriptor;
    use ubiqos_distribution::Device;
    use ubiqos_graph::{AbstractComponentSpec, ComponentRole, PinHint, ServiceComponent};
    use ubiqos_model::{QosDimension as D, QosValue, ResourceVector};

    fn two_desktop_server() -> DomainServer {
        let env = Environment::builder()
            .device(Device::new(
                "desktop1",
                ResourceVector::mem_cpu(256.0, 300.0),
            ))
            .device(Device::new(
                "desktop2",
                ResourceVector::mem_cpu(256.0, 300.0),
            ))
            .default_bandwidth_mbps(50.0)
            .build();
        let props = DeviceProperties {
            screen_pixels: 1_920_000.0,
            compute_factor: 5.0,
        };
        let mut server = DomainServer::new(
            env,
            vec![LinkKind::Ethernet, LinkKind::Ethernet],
            vec![props, props],
        );
        server.registry_mut().register(ServiceDescriptor::new(
            "server@d1",
            "audio-server",
            ServiceComponent::builder("audio-server")
                .role(ComponentRole::Source)
                .qos_out(
                    QosVector::new()
                        .with(D::Format, QosValue::token("MPEG"))
                        .with(D::FrameRate, QosValue::exact(40.0)),
                )
                .capability(D::FrameRate, QosValue::range(5.0, 40.0))
                .resources(ResourceVector::mem_cpu(64.0, 40.0))
                .build(),
        ));
        server.registry_mut().register(
            ServiceDescriptor::new(
                "player@any",
                "audio-player",
                ServiceComponent::builder("audio-player")
                    .role(ComponentRole::Sink)
                    .qos_in(
                        QosVector::new()
                            .with(D::Format, QosValue::token("MPEG"))
                            .with(D::FrameRate, QosValue::range(10.0, 40.0)),
                    )
                    .resources(ResourceVector::mem_cpu(16.0, 20.0))
                    .build(),
            )
            .with_code_size_mb(2.0),
        );
        server
    }

    fn audio_app() -> AbstractServiceGraph {
        let mut g = AbstractServiceGraph::new();
        let s = g.add_spec(AbstractComponentSpec::new("audio-server").with_pin(PinHint::Device(0)));
        let p =
            g.add_spec(AbstractComponentSpec::new("audio-player").with_pin(PinHint::ClientDevice));
        g.add_edge(s, p, 1.4).unwrap();
        g
    }

    #[test]
    fn start_session_configures_and_accounts_overhead() {
        let mut server = two_desktop_server();
        let id = server
            .start_session(
                "audio",
                audio_app(),
                QosVector::new(),
                DeviceId::from_index(1),
            )
            .unwrap();
        let s = server.session(id).unwrap();
        assert_eq!(s.overhead_log.len(), 1);
        let (label, overhead) = &s.overhead_log[0];
        assert_eq!(label, "start");
        assert!(overhead.composition_ms > 0.0);
        assert!(overhead.distribution_ms > 0.0);
        assert!(overhead.downloading_ms > 0.0, "nothing was preinstalled");
        assert!(overhead.init_or_handoff_ms > 0.0);
        let qos = s.measured_qos();
        assert_eq!(qos.len(), 1);
        assert_eq!(qos[0].fps, 40.0);
        assert!(server.now_ms() > 0.0);
    }

    #[test]
    fn preinstalled_components_download_nothing() {
        let mut server = two_desktop_server();
        for d in 0..2 {
            server.repository_mut().preinstall(d, "server@d1");
            server.repository_mut().preinstall(d, "player@any");
        }
        let id = server
            .start_session(
                "audio",
                audio_app(),
                QosVector::new(),
                DeviceId::from_index(1),
            )
            .unwrap();
        let s = server.session(id).unwrap();
        assert_eq!(s.overhead_log[0].1.downloading_ms, 0.0);
    }

    #[test]
    fn switch_device_hands_off_state() {
        let mut server = two_desktop_server();
        let id = server
            .start_session(
                "audio",
                audio_app(),
                QosVector::new(),
                DeviceId::from_index(1),
            )
            .unwrap();
        server.play(30.0);
        let plan = server.switch_device(id, DeviceId::from_index(0)).unwrap();
        assert_eq!(
            plan.resume_position_s(),
            30.0,
            "resumes at interruption point"
        );
        let s = server.session(id).unwrap();
        assert_eq!(s.client_device, DeviceId::from_index(0));
        assert_eq!(s.overhead_log.len(), 2);
        assert!(s.overhead_log[1].0.contains("switch"));
        assert!(s.overhead_log[1].1.init_or_handoff_ms > 0.0);
        // The player is now pinned to desktop1.
        let player = s
            .configuration
            .app
            .instances
            .iter()
            .find(|i| i.instance_id == "player@any")
            .unwrap();
        assert_eq!(s.configuration.cut.part_of(player.component), Some(0));
    }

    #[test]
    fn events_are_published() {
        let mut server = two_desktop_server();
        let rx = server.events().subscribe();
        let id = server
            .start_session(
                "audio",
                audio_app(),
                QosVector::new(),
                DeviceId::from_index(1),
            )
            .unwrap();
        server.switch_device(id, DeviceId::from_index(0)).unwrap();
        server.stop_session(id).unwrap();
        let events: Vec<RuntimeEvent> = rx.try_iter().collect();
        assert_eq!(events.len(), 3);
        assert_eq!(events[0].trigger, ReconfigureTrigger::ApplicationStarted);
        assert!(matches!(
            events[1].trigger,
            ReconfigureTrigger::DeviceSwitched { .. }
        ));
        assert_eq!(events[2].trigger, ReconfigureTrigger::ApplicationStopped);
    }

    #[test]
    fn failed_start_creates_no_session() {
        let mut server = two_desktop_server();
        let mut bogus = AbstractServiceGraph::new();
        bogus.add_spec(AbstractComponentSpec::new("hologram-projector"));
        let err = server
            .start_session("bogus", bogus, QosVector::new(), DeviceId::from_index(0))
            .unwrap_err();
        assert!(matches!(err, ConfigureError::Composition(_)));
        assert!(server.session(SessionId(0)).is_none());
    }

    #[test]
    fn stop_unknown_session_is_none() {
        let mut server = two_desktop_server();
        assert!(server.stop_session(SessionId(42)).is_none());
    }

    #[test]
    fn sessions_charge_and_refund_the_environment() {
        let mut server = two_desktop_server();
        let idle = server.env().clone();
        let id = server
            .start_session(
                "audio",
                audio_app(),
                QosVector::new(),
                DeviceId::from_index(1),
            )
            .unwrap();
        assert_eq!(server.session_count(), 1);
        // Something was charged somewhere.
        let charged: f64 = server
            .env()
            .devices()
            .iter()
            .map(|d| d.availability().amounts().iter().sum::<f64>())
            .sum();
        let full: f64 = idle
            .devices()
            .iter()
            .map(|d| d.availability().amounts().iter().sum::<f64>())
            .sum();
        assert!(charged < full);
        server.stop_session(id).unwrap();
        assert_eq!(server.env(), &idle, "refund restores the environment");
        assert_eq!(server.capacity(), &idle);
    }

    #[test]
    fn concurrent_sessions_compete_for_capacity() {
        // The audio server needs [64, 40] and must sit on desktop1
        // (pinned), which offers [256, 300]: at most 4 concurrent
        // sessions' servers fit even though players spread out.
        let mut server = two_desktop_server();
        let mut started = 0;
        for i in 0..8 {
            let device = DeviceId::from_index(i % 2);
            if server
                .start_session(format!("audio-{i}"), audio_app(), QosVector::new(), device)
                .is_ok()
            {
                started += 1;
            }
        }
        assert!(started >= 3, "several sessions fit ({started})");
        assert!(started < 8, "but not all of them ({started})");
    }

    #[test]
    fn failed_switch_restores_the_old_charge() {
        let mut server = two_desktop_server();
        let id = server
            .start_session(
                "audio",
                audio_app(),
                QosVector::new(),
                DeviceId::from_index(1),
            )
            .unwrap();
        let residual_before = server.env().clone();
        // Make the switch impossible: the player vanishes from discovery.
        let taken = server.registry_mut().unregister("player@any").unwrap();
        assert!(server.switch_device(id, DeviceId::from_index(0)).is_err());
        assert_eq!(
            server.env(),
            &residual_before,
            "failed switch must not leak or free resources"
        );
        server.registry_mut().register(taken);
        assert!(server.switch_device(id, DeviceId::from_index(0)).is_ok());
    }

    #[test]
    fn crash_of_client_device_parks_then_readmits_on_recovery() {
        let mut server = two_desktop_server();
        let id = server
            .start_session(
                "audio",
                audio_app(),
                QosVector::new(),
                DeviceId::from_index(1),
            )
            .unwrap();
        // The player is pinned to the crashed client device, so no ladder
        // rung can place the session — the staged pipeline parks it (its
        // resources released) instead of dropping it.
        let report = server.handle_crash(DeviceId::from_index(1));
        assert_eq!(report.parked, vec![id]);
        assert!(report.dropped.is_empty() && report.recovered.is_empty());
        assert_eq!(server.session_count(), 0);
        assert_eq!(server.parked_count(), 1);
        assert!(server
            .capacity()
            .device(1)
            .unwrap()
            .availability()
            .is_zero());
        // Device comes back: the recovery event triggers an *eager*
        // retry pass, re-admitting the session at full quality right
        // away — no waiting for the backoff poll.
        let rec = server.recover_device(DeviceId::from_index(1));
        assert_eq!(rec.readmitted, vec![id]);
        assert_eq!(server.parked_count(), 0);
        let s = server.session(id).unwrap();
        assert_eq!(s.degrade_factor, 1.0);
        assert!(s.overhead_log.last().unwrap().0.contains("re-admit"));
    }

    #[test]
    fn suspicion_parks_then_heartbeat_reinstates_and_readmits() {
        let mut server = two_desktop_server();
        let idle = server.env().clone();
        let rx = server.events().subscribe();
        let id = server
            .start_session(
                "audio",
                audio_app(),
                QosVector::new(),
                DeviceId::from_index(1),
            )
            .unwrap();
        // The detector (wrongly or rightly — it cannot tell) suspects the
        // client device: exactly a crash from the pipeline's viewpoint.
        let report = server.suspect_many(&[DeviceId::from_index(1)]);
        assert_eq!(report.parked, vec![id]);
        assert!(server.is_suspected(DeviceId::from_index(1)));
        assert_eq!(server.parked_count(), 1);
        // A heartbeat from the suspected device withdraws the suspicion
        // and eagerly re-admits the parked session.
        let rec = server
            .heartbeat(DeviceId::from_index(1), 3_600_000.0)
            .expect("suspected device's heartbeat reinstates");
        assert_eq!(rec.readmitted, vec![id]);
        assert!(!server.is_suspected(DeviceId::from_index(1)));
        assert_eq!(server.parked_count(), 0);
        // The clean-undo guarantee: stopping the session restores the
        // idle environment exactly — no resources leaked through the
        // park/reinstate round trip.
        server.stop_session(id).unwrap();
        assert_eq!(server.env(), &idle);
        let triggers: Vec<ReconfigureTrigger> = rx.try_iter().map(|e| e.trigger).collect();
        assert!(
            triggers.contains(&ReconfigureTrigger::DeviceSuspected(DeviceId::from_index(
                1
            )))
        );
        assert!(
            triggers.contains(&ReconfigureTrigger::DeviceReinstated(DeviceId::from_index(
                1
            )))
        );
    }

    #[test]
    fn stale_view_admission_fails_witnessed_and_charges_nothing() {
        let mut server = two_desktop_server();
        let idle = server.env().clone();
        // Ground truth: d0 (hosting the pinned audio-server) is dead, but
        // the detector has not noticed — discovery still advertises it.
        server.set_reachable(DeviceId::from_index(0), false);
        let err = server
            .start_session(
                "audio",
                audio_app(),
                QosVector::new(),
                DeviceId::from_index(1),
            )
            .unwrap_err();
        assert!(matches!(err, ConfigureError::StaleView { device: 0 }));
        assert_eq!(server.stale_view_count(), 1);
        assert_eq!(
            server.env(),
            &idle,
            "nothing charged on a failed activation"
        );
        assert_eq!(server.session_count(), 0);
        // The arrival parks instead of being dropped; once reality and
        // the view re-converge, a retry admits it from scratch.
        let id = server.park_arrival(
            "audio",
            audio_app(),
            QosVector::new(),
            DeviceId::from_index(1),
            None,
            err,
        );
        assert_eq!(server.parked_count(), 1);
        server.set_reachable(DeviceId::from_index(0), true);
        server.play(200.0); // past the retry backoff
        let report = server.process_retries();
        assert_eq!(report.readmitted, vec![id]);
        assert_eq!(server.session_count(), 1);
        assert!(!server
            .session(id)
            .unwrap()
            .configuration
            .app
            .instances
            .is_empty());
    }

    #[test]
    fn lease_sweep_suspects_and_false_suspicion_is_cleanly_undone() {
        let mut server = two_desktop_server();
        let idle = server.env().clone();
        // Both devices heartbeat with a 60s grace window.
        assert!(server
            .heartbeat(DeviceId::from_index(0), 60_000.0)
            .is_none());
        assert!(server
            .heartbeat(DeviceId::from_index(1), 60_000.0)
            .is_none());
        // d1 keeps renewing, d0 goes silent (partitioned, say).
        server.play(45.0);
        assert!(server
            .heartbeat(DeviceId::from_index(1), 60_000.0)
            .is_none());
        server.play(45.0); // d0's lease is now 30s overdue
        let swept = server.expire_overdue_leases();
        assert_eq!(swept.len(), 1);
        assert_eq!(swept[0].0, DeviceId::from_index(0));
        assert!(server.is_suspected(DeviceId::from_index(0)));
        assert!(server
            .capacity()
            .device(0)
            .unwrap()
            .availability()
            .is_zero());
        // The same expired lease is revoked — a second sweep is a no-op.
        assert!(server.expire_overdue_leases().is_empty());
        // The partition heals: d0's heartbeat gets through again and the
        // false suspicion is withdrawn, restoring pristine capacity.
        assert!(server
            .heartbeat(DeviceId::from_index(0), 60_000.0)
            .is_some());
        assert!(!server.is_suspected(DeviceId::from_index(0)));
        assert_eq!(server.capacity(), &idle);
    }

    #[test]
    fn strict_retry_policy_drops_with_witness() {
        let mut server = two_desktop_server();
        server.set_ladder(ubiqos_composition::DegradationLadder::strict());
        server.set_retry_policy(crate::retry_queue::RetryPolicy::strict());
        let id = server
            .start_session(
                "audio",
                audio_app(),
                QosVector::new(),
                DeviceId::from_index(1),
            )
            .unwrap();
        // With a zero retry budget the old drop-on-fault behaviour is
        // back — and the drop carries its witnessing error.
        let report = server.handle_crash(DeviceId::from_index(1));
        assert_eq!(report.dropped, vec![id]);
        assert_eq!(report.drop_errors.len(), 1);
        assert_eq!(report.drop_errors[0].0, id);
        assert_eq!(server.session_count(), 0);
        assert_eq!(server.parked_count(), 0);
    }

    #[test]
    fn crash_of_unused_device_keeps_sessions() {
        // Three devices: server pinned to d0, client on d1, d2 idle.
        let env = Environment::builder()
            .device(Device::new("d0", ResourceVector::mem_cpu(256.0, 300.0)))
            .device(Device::new("d1", ResourceVector::mem_cpu(256.0, 300.0)))
            .device(Device::new("d2", ResourceVector::mem_cpu(256.0, 300.0)))
            .default_bandwidth_mbps(50.0)
            .build();
        let props = DeviceProperties {
            screen_pixels: 1_920_000.0,
            compute_factor: 5.0,
        };
        let mut server = DomainServer::new(env, vec![LinkKind::Ethernet; 3], vec![props; 3]);
        // Reuse the two-desktop registry entries.
        let donor = two_desktop_server();
        for hit in donor
            .registry()
            .discover_all(&ubiqos_discovery::DiscoveryQuery::new("audio-server"))
        {
            server.registry_mut().register(hit.descriptor);
        }
        for hit in donor
            .registry()
            .discover_all(&ubiqos_discovery::DiscoveryQuery::new("audio-player"))
        {
            server.registry_mut().register(hit.descriptor);
        }
        let id = server
            .start_session(
                "audio",
                audio_app(),
                QosVector::new(),
                DeviceId::from_index(1),
            )
            .unwrap();
        let report = server.handle_crash(DeviceId::from_index(2));
        // Keep-if-valid: the session touches nothing on d2, so the
        // incremental pass leaves it completely untouched (no
        // re-placement at all, not even a successful one).
        assert!(report.is_empty(), "{report:?}");
        assert_eq!(report.affected, 0);
        assert_eq!(report.considered, 1);
        let s = server.session(id).unwrap();
        assert_eq!(s.degrade_factor, 1.0);
        assert_eq!(
            s.overhead_log.last().unwrap().0,
            "start",
            "untouched sessions keep their original overhead log"
        );
    }

    #[test]
    fn user_mobility_recomposes_in_the_new_domain() {
        // Two rooms, each with its own audio server; the player is global.
        let mut server = two_desktop_server();
        let office = server.registry_mut().add_domain("office", None);
        let lounge = server.registry_mut().add_domain("lounge", None);
        // Scope the existing server instance to the office and add a
        // lounge-only one.
        let office_server = {
            let mut hit = server
                .registry()
                .discover_all(&ubiqos_discovery::DiscoveryQuery::new("audio-server"))
                .remove(0)
                .descriptor;
            hit.domain = Some(office);
            hit
        };
        let mut lounge_server = office_server.clone();
        lounge_server.instance_id = "server@lounge".into();
        lounge_server.domain = Some(lounge);
        server.registry_mut().register(office_server);
        server.registry_mut().register(lounge_server);

        let id = server
            .start_session_in_domain(
                "audio",
                audio_app(),
                QosVector::new(),
                DeviceId::from_index(1),
                Some(office),
            )
            .unwrap();
        assert_eq!(server.session(id).unwrap().domain, Some(office));
        let uses = |server: &DomainServer, instance: &str| {
            server
                .session(id)
                .unwrap()
                .configuration
                .app
                .instances
                .iter()
                .any(|i| i.instance_id == instance)
        };
        assert!(uses(&server, "server@d1"), "office instance in use");

        server.play(10.0);
        let rx = server.events().subscribe();
        let plan = server
            .move_user(id, Some(lounge), DeviceId::from_index(0))
            .unwrap();
        assert_eq!(plan.resume_position_s(), 10.0);
        let s = server.session(id).unwrap();
        assert_eq!(s.domain, Some(lounge));
        assert!(
            uses(&server, "server@lounge"),
            "recomposed onto the lounge server"
        );
        assert!(s.overhead_log.last().unwrap().0.contains("lounge"));
        let events: Vec<_> = rx.try_iter().collect();
        assert!(matches!(
            events[0].trigger,
            ReconfigureTrigger::UserMoved { ref to_location } if to_location == "lounge"
        ));
    }

    #[test]
    fn failed_move_keeps_old_domain_and_charge() {
        let mut server = two_desktop_server();
        let office = server.registry_mut().add_domain("office", None);
        let desert = server.registry_mut().add_domain("desert", None);
        // Scope everything to the office; the desert is empty.
        for ty in ["audio-server", "audio-player"] {
            let mut hit = server
                .registry()
                .discover_all(&ubiqos_discovery::DiscoveryQuery::new(ty))
                .remove(0)
                .descriptor;
            hit.domain = Some(office);
            server.registry_mut().register(hit);
        }
        let id = server
            .start_session_in_domain(
                "audio",
                audio_app(),
                QosVector::new(),
                DeviceId::from_index(1),
                Some(office),
            )
            .unwrap();
        let residual = server.env().clone();
        assert!(server
            .move_user(id, Some(desert), DeviceId::from_index(0))
            .is_err());
        let s = server.session(id).unwrap();
        assert_eq!(s.domain, Some(office), "old domain kept");
        assert_eq!(server.env(), &residual, "charge unchanged");
    }

    #[test]
    fn fluctuation_degrades_before_parking() {
        let mut server = two_desktop_server();
        let id = server
            .start_session(
                "audio",
                audio_app(),
                QosVector::new(),
                DeviceId::from_index(1),
            )
            .unwrap();
        // Desktop1 (hosting the pinned 64/40 server) shrinks to where
        // only a scaled-down demand fits: 0.5 × (64, 40) = (32, 20).
        let report = server.fluctuate(DeviceId::from_index(0), ResourceVector::mem_cpu(40.0, 25.0));
        assert_eq!(report.degraded.len(), 1, "{report:?}");
        let (did, d) = report.degraded[0];
        assert_eq!(did, id);
        assert_eq!(d.from, 1.0);
        assert_eq!(d.to, 0.5);
        assert_eq!(server.session(id).unwrap().degrade_factor, 0.5);
        // Capacity returns: the next pass climbs the degraded session
        // back to full quality.
        let report = server.fluctuate(
            DeviceId::from_index(0),
            ResourceVector::mem_cpu(256.0, 300.0),
        );
        assert_eq!(report.recovered, vec![id], "{report:?}");
        assert_eq!(server.session(id).unwrap().degrade_factor, 1.0);
    }

    #[test]
    fn fluctuation_can_park_then_readmit() {
        let mut server = two_desktop_server();
        let id = server
            .start_session(
                "audio",
                audio_app(),
                QosVector::new(),
                DeviceId::from_index(1),
            )
            .unwrap();
        // Desktop1 loses almost everything — even the bottom rung's
        // 0.25 × (64, 40) = (16, 10) does not fit (8, 8): park.
        let report = server.fluctuate(DeviceId::from_index(0), ResourceVector::mem_cpu(8.0, 8.0));
        assert_eq!(report.parked, vec![id]);
        assert!(report.dropped.is_empty());
        assert_eq!(server.parked_count(), 1);
        // The parked session holds no charge, and the restoring
        // fluctuation is itself a recovery event: the eager retry pass
        // re-admits the session without waiting out the backoff.
        let rec = server.fluctuate(
            DeviceId::from_index(0),
            ResourceVector::mem_cpu(256.0, 300.0),
        );
        assert_eq!(rec.readmitted, vec![id]);
        assert_eq!(server.parked_count(), 0);
        assert!(server
            .start_session(
                "audio2",
                audio_app(),
                QosVector::new(),
                DeviceId::from_index(1)
            )
            .is_ok());
        assert_eq!(server.session_count(), 2);
    }

    #[test]
    fn composition_cache_hits_repeat_configurations_and_stays_invisible() {
        let mut cached = two_desktop_server();
        let mut cold = two_desktop_server();
        cold.set_config_cache(false);

        // Identical request sequences against both servers; every
        // observable output must match. (Debug builds additionally
        // cross-check each cache hit against a fresh composition.)
        for server in [&mut cached, &mut cold] {
            for i in 0..4 {
                server
                    .start_session(
                        format!("audio-{i}"),
                        audio_app(),
                        QosVector::new(),
                        DeviceId::from_index(1),
                    )
                    .unwrap();
            }
        }
        assert_eq!(cached.now_ms(), cold.now_ms());
        for (a, b) in cached.sessions().zip(cold.sessions()) {
            assert_eq!(a.0, b.0);
            assert_eq!(a.1.configuration, b.1.configuration);
            assert_eq!(a.1.overhead_log, b.1.overhead_log);
        }
        let stats = cached.config_cache_stats();
        assert_eq!(stats.misses, 1, "one fill, then hits");
        assert_eq!(stats.hits, 3);
        let cold_stats = cold.config_cache_stats();
        assert_eq!((cold_stats.hits, cold_stats.misses), (0, 0));
        // The wall-clock profile saw every call, in both modes.
        assert_eq!(
            cached.stage_times().configures,
            cold.stage_times().configures
        );
    }

    #[test]
    fn composition_cache_invalidates_on_dependent_churn() {
        let mut server = two_desktop_server();
        server
            .start_session(
                "audio",
                audio_app(),
                QosVector::new(),
                DeviceId::from_index(1),
            )
            .unwrap();
        // Unrelated churn: the next identical request revalidates the
        // entry through the changelog instead of recomposing.
        server.registry_mut().register(ServiceDescriptor::new(
            "display@d2",
            "video-display",
            ServiceComponent::builder("video-display").build(),
        ));
        assert!(server.can_place(
            &audio_app(),
            &QosVector::new(),
            DeviceId::from_index(1),
            None
        ));
        let stats = server.config_cache_stats();
        assert_eq!((stats.hits, stats.revalidations), (1, 1));
        // Churn on a type the app depends on: fresh composition.
        server.registry_mut().unregister("display@d2");
        server.registry_mut().register(ServiceDescriptor::new(
            "server@d2",
            "audio-server",
            ServiceComponent::builder("audio-server")
                .role(ComponentRole::Source)
                .qos_out(QosVector::new().with(D::Format, QosValue::token("MPEG")))
                .resources(ResourceVector::mem_cpu(64.0, 40.0))
                .build(),
        ));
        assert!(server.can_place(
            &audio_app(),
            &QosVector::new(),
            DeviceId::from_index(1),
            None
        ));
        assert_eq!(server.config_cache_stats().misses, 2);
    }

    #[test]
    fn optimal_placement_matches_heuristic_cost_or_better_and_warm_starts() {
        let mut heuristic = two_desktop_server();
        let mut optimal = two_desktop_server();
        optimal.set_placement_strategy(PlacementStrategy::Optimal { warm_start: true });
        assert_eq!(
            heuristic.placement_strategy(),
            PlacementStrategy::Heuristic,
            "heuristic stays the default"
        );

        let start = |server: &mut DomainServer| {
            server
                .start_session(
                    "audio",
                    audio_app(),
                    QosVector::new(),
                    DeviceId::from_index(1),
                )
                .unwrap()
        };
        let hid = start(&mut heuristic);
        let oid = start(&mut optimal);
        let h_cost = heuristic.session(hid).unwrap().configuration.cost;
        let o_cost = optimal.session(oid).unwrap().configuration.cost;
        assert!(
            o_cost <= h_cost + 1e-9,
            "exhaustive optimum ({o_cost}) cannot cost more than the heuristic ({h_cost})"
        );
        let totals = optimal.placement_totals();
        assert_eq!(totals.solves, 1);
        assert_eq!(totals.warm_solves, 0, "initial admission has no seed");
        assert_eq!(
            heuristic.placement_totals(),
            PlacementTotals::default(),
            "heuristic path never touches the solver"
        );

        // A recovery re-placement seeds the solver with the session's
        // previous cut: the player (16 MB) no longer fits at full
        // quality, so the ladder degrades — and the lower rungs replay
        // the old placement as a feasible incumbent.
        optimal.fluctuate(DeviceId::from_index(1), ResourceVector::mem_cpu(12.0, 25.0));
        let totals = optimal.placement_totals();
        assert!(totals.solves >= 2);
        assert!(
            totals.warm_solves >= 1,
            "re-placement should warm-start: {totals:?}"
        );
    }

    #[test]
    fn portfolio_placement_is_bit_identical_to_optimal_within_limit() {
        let mut optimal = two_desktop_server();
        optimal.set_placement_strategy(PlacementStrategy::Optimal { warm_start: true });
        let mut portfolio = two_desktop_server();
        portfolio.set_placement_strategy(PlacementStrategy::Portfolio { warm_start: true });

        let start = |server: &mut DomainServer| {
            server
                .start_session(
                    "audio",
                    audio_app(),
                    QosVector::new(),
                    DeviceId::from_index(1),
                )
                .unwrap()
        };
        let oid = start(&mut optimal);
        let pid = start(&mut portfolio);
        let o = &optimal.session(oid).unwrap().configuration;
        let p = &portfolio.session(pid).unwrap().configuration;
        assert_eq!(
            o.cut, p.cut,
            "within the exact limit the portfolio must return the exhaustive cut verbatim"
        );
        assert_eq!(o.cost.to_bits(), p.cost.to_bits());
        let totals = portfolio.placement_totals();
        assert_eq!(totals.solves, 1);
        assert_eq!(
            totals.hierarchical_routes, 0,
            "small graphs never leave the exact route"
        );

        // Same fluctuation as the optimal test: the portfolio path must
        // also warm-start recovery re-placements.
        portfolio.fluctuate(DeviceId::from_index(1), ResourceVector::mem_cpu(12.0, 25.0));
        let totals = portfolio.placement_totals();
        assert!(totals.solves >= 2);
        assert!(
            totals.warm_solves >= 1,
            "portfolio re-placement should warm-start: {totals:?}"
        );
    }
}
