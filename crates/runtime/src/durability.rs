//! Durable shard state: a per-shard virtual-time write-ahead log plus
//! periodic snapshot checkpoints, backing crash/restart fault injection
//! in the federated engine ([`crate::federation`]).
//!
//! ## Model
//!
//! Every state mutation a shard performs while handling federated
//! events is journaled as a typed [`WalRecord`] *before* (or, for
//! outcome-dependent bookkeeping, within the same atomic event as) the
//! mutation itself: clock advances, transcript lines, session-table
//! track/untrack edits, every [`DomainServer`] call (admissions, parks,
//! refunds via `stop_session`, lease renewals, lease expiries, retry
//! drains, moves/switches), and every injected device fault. Periodic
//! checkpoints capture a full [`ShardSnapshot`] and truncate the log
//! tail, bounding both replay work and journal memory.
//!
//! On a scheduled `ShardCrash` the engine rebuilds the shard from
//! `snapshot + tail` replay, asserts the rebuilt state equals the
//! pre-crash state **field by field** (transcript bytes, report,
//! session tables, detector state, clock, and the domain server's own
//! [`state fingerprint`](DomainServer::state_fingerprint)), and swaps
//! the rebuilt shard in — so a replay bug surfaces twice: once in the
//! hard equality assert and once downstream as a per-shard digest
//! divergence.
//!
//! ## Replay determinism
//!
//! Replay re-executes recorded [`ServerCall`]s against the restored
//! server — it never duplicates handler branch logic. A call whose
//! live-side bookkeeping depended on the *outcome* (which recovered
//! session ids were reservation custody at absorb time) carries the
//! raw session ids actually untracked, so replay applies the same map
//! edits without consulting crash-time engine state. Aggregate
//! counters, the iteration count, and the sweep cursor are coalesced
//! into [`WalRecord::Mark`] records emitted at event boundaries (the
//! crash instant is itself a boundary); everything the counters
//! summarize is already individually journaled by the typed records
//! around them.
//!
//! Volatile profiling state (wall-clock stage times, solver-portfolio
//! telemetry, composition-cache contents) is checkpointed by value but
//! not journaled: a crash loses the profiling tail since the last
//! checkpoint. It is excluded from [`shard_fingerprint`], and the
//! cache-on ≡ cache-off contract (PR 4) makes a cold composition
//! cache semantically invisible.

use crate::domain_server::SessionId;
use crate::faults::apply_fault;
use crate::federation::Shard;
use serde::{Deserialize, Serialize};
use ubiqos::fault_report::fnv1a;
use ubiqos::{ConfigureError, FaultReport};
use ubiqos_graph::{AbstractServiceGraph, DeviceId};
use ubiqos_model::QosVector;
use ubiqos_sim::TimedFault;

/// Durability knobs of the federated engine.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DurabilityConfig {
    /// Whether shards journal at all. Crash faults require `true`
    /// (enforced by [`FederationConfig::validate`]); journaling never
    /// touches shard state, so a crash-free run is byte-identical
    /// either way.
    ///
    /// [`FederationConfig::validate`]: crate::federation::FederationConfig::validate
    pub enabled: bool,
    /// Checkpoint cadence: a fresh snapshot is captured (and the log
    /// tail truncated) once the tail reaches this many records.
    pub checkpoint_every: usize,
}

impl Default for DurabilityConfig {
    fn default() -> Self {
        DurabilityConfig {
            enabled: true,
            checkpoint_every: 256,
        }
    }
}

/// One journaled [`DomainServer`](crate::DomainServer) call. Replay
/// re-executes the call verbatim; the `removed` lists carry the raw
/// session ids the live run untracked when absorbing the call's
/// recovery report (reservation-custody ids are *not* untracked, so
/// they are absent from the lists by construction).
#[derive(Debug, Clone)]
pub(crate) enum ServerCall {
    /// `start_session` — an admission attempt (arrival, forwarded
    /// arrival, reservation, or late-commit re-admission).
    Start {
        name: String,
        graph: AbstractServiceGraph,
        qos: QosVector,
        client_local: usize,
    },
    /// `park_arrival` — a session parked into the retry queue with a
    /// witnessed error.
    Park {
        name: String,
        graph: AbstractServiceGraph,
        qos: QosVector,
        client_local: usize,
        err: ConfigureError,
    },
    /// `stop_session` — a departure, refund, release, or lease expiry.
    Stop { sid: u64 },
    /// `move_user` to a shard-local device.
    Move { sid: u64, to_local: usize },
    /// `switch_device` to a shard-local device.
    Switch { sid: u64, to_local: usize },
    /// `heartbeat` (lease renewal); `removed` are the raw ids the
    /// reinstatement pass untracked.
    Heartbeat { device: usize, removed: Vec<u64> },
    /// `expire_overdue_leases` (anti-entropy sweep); one `removed`
    /// list per suspected device, in sweep order.
    ExpireLeases { removed: Vec<Vec<u64>> },
    /// `process_retries` (per-event retry drain); `removed` as above.
    Retries { removed: Vec<u64> },
}

/// One write-ahead log record.
#[derive(Debug, Clone)]
pub(crate) enum WalRecord {
    /// Monotone clock advance to `at_h` (the serial `play` step).
    Advance { at_h: f64 },
    /// One transcript line appended at `at_h` (the line index is
    /// implicit: replay numbers lines in record order).
    Line { at_h: f64, line: String },
    /// Request `req` tracked as live session `sid` in the shard's
    /// `active`/`by_session` tables.
    Track { req: usize, sid: u64 },
    /// Request `req` / session `sid` untracked.
    Untrack { req: usize, sid: u64 },
    /// A journaled domain-server call.
    Call(ServerCall),
    /// A shard-local device fault, replayed through the shared
    /// [`apply_fault`] arm (which re-absorbs its recovery internally).
    Fault(TimedFault),
    /// Event-boundary coalescence of aggregate state: the full
    /// counter report, the per-shard iteration count, and the sweep
    /// cursor. Emitted at every event epilogue and at the crash
    /// instant itself, so replay lands exactly on the pre-crash
    /// values.
    Mark {
        report: Box<FaultReport>,
        iterations: u64,
        last_sweep_h: Option<f64>,
    },
}

/// A full checkpoint of one shard. The domain server is captured via
/// [`clone_for_checkpoint`](crate::DomainServer::clone_for_checkpoint)
/// (fresh event bus, cold composition cache, profiling copied by
/// value).
pub(crate) struct ShardSnapshot {
    shard: Shard,
}

impl ShardSnapshot {
    /// Captures shard `s` as of now.
    pub(crate) fn capture(shard: &Shard) -> Self {
        ShardSnapshot {
            shard: Shard {
                server: shard.server.clone_for_checkpoint(),
                cfg: shard.cfg.clone(),
                log: shard.log.clone(),
                report: shard.report.clone(),
                down: shard.down.clone(),
                det: shard.det.clone(),
                active: shard.active.clone(),
                by_session: shard.by_session.clone(),
                last_h: shard.last_h,
                idx: shard.idx,
                iterations: shard.iterations,
                last_sweep_h: shard.last_sweep_h,
            },
        }
    }

    /// Materializes a fresh shard from the checkpoint.
    pub(crate) fn restore(&self) -> Shard {
        ShardSnapshot::capture(&self.shard).shard
    }
}

/// One shard's write-ahead log: the last checkpoint plus the typed
/// record tail appended since.
pub(crate) struct ShardWal {
    enabled: bool,
    checkpoint_every: usize,
    snapshot: Option<ShardSnapshot>,
    pub(crate) tail: Vec<WalRecord>,
    /// Records appended over the shard's lifetime (across checkpoint
    /// truncations).
    pub(crate) appended: u64,
    /// Records replayed by crash recoveries.
    pub(crate) replayed: u64,
    /// Snapshot restores performed by crash recoveries.
    pub(crate) restores: u64,
}

impl ShardWal {
    /// A journal for `shard`, capturing the initial checkpoint when
    /// durability is enabled.
    pub(crate) fn new(cfg: &DurabilityConfig, shard: &Shard) -> Self {
        ShardWal {
            enabled: cfg.enabled,
            checkpoint_every: cfg.checkpoint_every.max(1),
            snapshot: cfg.enabled.then(|| ShardSnapshot::capture(shard)),
            tail: Vec::new(),
            appended: 0,
            replayed: 0,
            restores: 0,
        }
    }

    /// Appends one record (no-op when durability is disabled).
    pub(crate) fn push(&mut self, rec: WalRecord) {
        if self.enabled {
            self.tail.push(rec);
            self.appended += 1;
        }
    }

    /// Whether the tail has reached the checkpoint cadence.
    pub(crate) fn due_checkpoint(&self) -> bool {
        self.enabled && self.tail.len() >= self.checkpoint_every
    }

    /// Captures a fresh checkpoint of `shard` and truncates the tail.
    pub(crate) fn checkpoint(&mut self, shard: &Shard) {
        if self.enabled {
            self.snapshot = Some(ShardSnapshot::capture(shard));
            self.tail.clear();
        }
    }

    /// Rebuilds the shard from `snapshot + tail` replay. `grace_ms` is
    /// the engine's detection grace (the one live heartbeat calls
    /// used).
    pub(crate) fn recover(&mut self, grace_ms: f64) -> Shard {
        let n = self.tail.len();
        let shard = self.replay_prefix(grace_ms, n);
        self.replayed += n as u64;
        self.restores += 1;
        shard
    }

    /// Rebuilds the shard from the snapshot plus the first `n` tail
    /// records — a recovery that itself crashed after `n` records and
    /// restarted is exactly a second `replay_prefix(n)` call, so the
    /// prefix-idempotence property tests drive this directly.
    pub(crate) fn replay_prefix(&self, grace_ms: f64, n: usize) -> Shard {
        let snapshot = self
            .snapshot
            .as_ref()
            .expect("recovery requires durability to be enabled");
        let mut shard = snapshot.restore();
        for rec in &self.tail[..n] {
            apply_record(&mut shard, rec, grace_ms);
        }
        shard
    }
}

/// Untracks raw session id `raw` from the shard's session tables (the
/// replay arm of a live-side absorb removal).
fn untrack_raw(shard: &mut Shard, raw: u64) {
    let sid = SessionId::from_raw(raw);
    if let Some(req) = shard.by_session.remove(&sid) {
        shard.active.remove(&req);
    }
}

/// Applies one journal record to a shard under reconstruction.
fn apply_record(shard: &mut Shard, rec: &WalRecord, grace_ms: f64) {
    match rec {
        WalRecord::Advance { at_h } => {
            let delta_h = (at_h - shard.last_h).max(0.0);
            shard.server.play(delta_h * 3600.0);
            shard.last_h = *at_h;
        }
        WalRecord::Line { at_h, line } => {
            let idx = shard.idx;
            shard.log.push(idx, *at_h, line);
            shard.idx += 1;
        }
        WalRecord::Track { req, sid } => {
            let sid = SessionId::from_raw(*sid);
            shard.active.insert(*req, sid);
            shard.by_session.insert(sid, *req);
        }
        WalRecord::Untrack { req, sid } => {
            shard.active.remove(req);
            shard.by_session.remove(&SessionId::from_raw(*sid));
        }
        WalRecord::Call(call) => apply_call(shard, call, grace_ms),
        WalRecord::Fault(fault) => {
            // Re-executes the shared serial fault arm — counter bumps,
            // ground-truth flips, and recovery absorption all replay
            // inside it. Counters are overwritten by the next `Mark`
            // anyway; the ground truth (`down`, `det`) and the server
            // mutations are what matter here.
            let _line = apply_fault(
                &mut shard.server,
                fault,
                &shard.cfg,
                &mut shard.down,
                &mut shard.det,
                &mut shard.active,
                &mut shard.by_session,
                &mut shard.report,
            );
        }
        WalRecord::Mark {
            report,
            iterations,
            last_sweep_h,
        } => {
            shard.report = report.as_ref().clone();
            shard.iterations = *iterations;
            shard.last_sweep_h = *last_sweep_h;
        }
    }
}

/// Re-executes one journaled server call.
fn apply_call(shard: &mut Shard, call: &ServerCall, grace_ms: f64) {
    match call {
        ServerCall::Start {
            name,
            graph,
            qos,
            client_local,
        } => {
            let _ = shard.server.start_session(
                name.clone(),
                graph.clone(),
                qos.clone(),
                DeviceId::from_index(*client_local),
            );
        }
        ServerCall::Park {
            name,
            graph,
            qos,
            client_local,
            err,
        } => {
            let _ = shard.server.park_arrival(
                name.clone(),
                graph.clone(),
                qos.clone(),
                DeviceId::from_index(*client_local),
                None,
                err.clone(),
            );
        }
        ServerCall::Stop { sid } => {
            let _ = shard.server.stop_session(SessionId::from_raw(*sid));
        }
        ServerCall::Move { sid, to_local } => {
            let _ = shard.server.move_user(
                SessionId::from_raw(*sid),
                None,
                DeviceId::from_index(*to_local),
            );
        }
        ServerCall::Switch { sid, to_local } => {
            let _ = shard
                .server
                .switch_device(SessionId::from_raw(*sid), DeviceId::from_index(*to_local));
        }
        ServerCall::Heartbeat { device, removed } => {
            let rec = shard
                .server
                .heartbeat(DeviceId::from_index(*device), grace_ms);
            debug_assert!(
                rec.is_some() || removed.is_empty(),
                "a replayed heartbeat diverged from the recorded reinstatement"
            );
            for &raw in removed {
                untrack_raw(shard, raw);
            }
        }
        ServerCall::ExpireLeases { removed } => {
            let recs = shard.server.expire_overdue_leases();
            assert_eq!(
                recs.len(),
                removed.len(),
                "a replayed lease sweep diverged from the recorded one"
            );
            for list in removed {
                for &raw in list {
                    untrack_raw(shard, raw);
                }
            }
        }
        ServerCall::Retries { removed } => {
            let _ = shard.server.process_retries();
            for &raw in removed {
                untrack_raw(shard, raw);
            }
        }
    }
}

/// A deterministic digest of every durable field of a shard: the
/// transcript (digest and length), the counter report, ground truth
/// and detector state, session tables, the virtual clock (exact bits),
/// and the domain server's own state fingerprint. Volatile profiling
/// state is excluded by construction.
pub(crate) fn shard_fingerprint(shard: &Shard) -> u64 {
    let mut s = String::new();
    use std::fmt::Write as _;
    let _ = write!(
        s,
        "log={:016x}/{}|report={:?}|down={:?}|det={:?}|active={:?}|by={:?}|last_h={:016x}|idx={}|it={}|sweep={:?}|server={:016x}",
        shard.log.digest(),
        shard.log.lines().len(),
        shard.report,
        shard.down,
        shard.det,
        shard.active,
        shard.by_session,
        shard.last_h.to_bits(),
        shard.idx,
        shard.iterations,
        shard.last_sweep_h.map(f64::to_bits),
        shard.server.state_fingerprint(),
    );
    fnv1a(s.as_bytes())
}

/// Asserts a rebuilt shard equals the live one it replaces,
/// field by field (better diagnostics than one combined digest).
pub(crate) fn assert_recovered_equal(live: &Shard, rebuilt: &Shard, s: usize) {
    assert_eq!(
        rebuilt.log.lines(),
        live.log.lines(),
        "shard{s} recovery replayed a different transcript"
    );
    assert_eq!(
        rebuilt.report, live.report,
        "shard{s} recovery replayed different counters"
    );
    assert_eq!(
        rebuilt.down, live.down,
        "shard{s} recovery lost ground truth"
    );
    assert_eq!(
        rebuilt.det, live.det,
        "shard{s} recovery lost detector state"
    );
    assert_eq!(
        rebuilt.active, live.active,
        "shard{s} recovery lost the session table"
    );
    assert_eq!(
        rebuilt.by_session, live.by_session,
        "shard{s} recovery lost the reverse session table"
    );
    assert_eq!(
        rebuilt.last_h.to_bits(),
        live.last_h.to_bits(),
        "shard{s} recovery drifted the virtual clock"
    );
    assert_eq!(rebuilt.idx, live.idx, "shard{s} recovery miscounted lines");
    assert_eq!(
        (rebuilt.iterations, rebuilt.last_sweep_h.map(f64::to_bits)),
        (live.iterations, live.last_sweep_h.map(f64::to_bits)),
        "shard{s} recovery lost the event epilogue cursors"
    );
    assert_eq!(
        rebuilt.server.state_fingerprint(),
        live.server.state_fingerprint(),
        "shard{s} recovery rebuilt a different domain server"
    );
    debug_assert_eq!(shard_fingerprint(rebuilt), shard_fingerprint(live));
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::faults::{build_space, DetectorState, FaultCampaignConfig};
    use crate::EventLog;
    use std::collections::{BTreeMap, BTreeSet};

    fn tiny_shard() -> Shard {
        let cfg = FaultCampaignConfig {
            devices: 3,
            ..FaultCampaignConfig::default()
        };
        Shard {
            server: build_space(3),
            cfg,
            log: EventLog::default(),
            report: FaultReport::default(),
            down: BTreeSet::new(),
            det: DetectorState::new(3),
            active: BTreeMap::new(),
            by_session: BTreeMap::new(),
            last_h: 0.0,
            idx: 0,
            iterations: 0,
            last_sweep_h: None,
        }
    }

    fn start_call(i: usize) -> WalRecord {
        let (name, graph) = crate::faults::app_template(i % 5);
        WalRecord::Call(ServerCall::Start {
            name: format!("{name}-{i}"),
            graph,
            qos: QosVector::new(),
            client_local: i % 3,
        })
    }

    #[test]
    fn snapshot_restore_preserves_the_fingerprint() {
        let mut shard = tiny_shard();
        shard.server.play(10.0);
        shard.last_h = 10.0 / 3600.0;
        shard.log.push(0, 0.0, "arrive  req0 -> admitted");
        shard.idx = 1;
        let snap = ShardSnapshot::capture(&shard);
        let rebuilt = snap.restore();
        assert_recovered_equal(&shard, &rebuilt, 0);
        assert_eq!(shard_fingerprint(&shard), shard_fingerprint(&rebuilt));
    }

    #[test]
    fn disabled_wal_is_inert() {
        let shard = tiny_shard();
        let mut wal = ShardWal::new(
            &DurabilityConfig {
                enabled: false,
                checkpoint_every: 4,
            },
            &shard,
        );
        wal.push(WalRecord::Advance { at_h: 1.0 });
        assert!(wal.tail.is_empty() && wal.appended == 0 && !wal.due_checkpoint());
    }

    #[test]
    fn replay_reconstructs_live_mutations() {
        let mut shard = tiny_shard();
        let mut wal = ShardWal::new(&DurabilityConfig::default(), &shard);

        // Live side: advance, admit, log, track — journaling each
        // mutation exactly as the engine does.
        let recs = vec![
            WalRecord::Advance { at_h: 0.25 },
            start_call(0),
            WalRecord::Line {
                at_h: 0.25,
                line: "arrive  req0 -> admitted as s0".to_owned(),
            },
            WalRecord::Track { req: 0, sid: 0 },
            WalRecord::Advance { at_h: 0.5 },
            WalRecord::Call(ServerCall::Stop { sid: 0 }),
            WalRecord::Untrack { req: 0, sid: 0 },
            WalRecord::Line {
                at_h: 0.5,
                line: "depart  req0 -> completed".to_owned(),
            },
            WalRecord::Mark {
                report: Box::new(FaultReport {
                    events: 2,
                    arrivals: 1,
                    admitted: 1,
                    completed: 1,
                    ..FaultReport::default()
                }),
                iterations: 2,
                last_sweep_h: None,
            },
        ];
        for rec in recs {
            wal.push(rec.clone());
            apply_record(&mut shard, &rec, 180_000.0);
        }
        let rebuilt = wal.recover(180_000.0);
        assert_recovered_equal(&shard, &rebuilt, 0);
        assert_eq!(wal.replayed, 9);
        assert_eq!(wal.restores, 1);
    }

    #[test]
    fn prefix_replay_is_idempotent_and_composable() {
        let shard = tiny_shard();
        let mut wal = ShardWal::new(&DurabilityConfig::default(), &shard);
        for i in 0..6 {
            wal.push(WalRecord::Advance {
                at_h: 0.1 * (i + 1) as f64,
            });
            wal.push(start_call(i));
            wal.push(WalRecord::Track {
                req: i,
                sid: i as u64,
            });
        }
        for n in 0..=wal.tail.len() {
            // A recovery that crashed after `n` records and restarted
            // lands on the same state as one that never crashed.
            let once = wal.replay_prefix(180_000.0, n);
            let twice = wal.replay_prefix(180_000.0, n);
            assert_eq!(shard_fingerprint(&once), shard_fingerprint(&twice));
            // Checkpointing at `n` and replaying the rest composes to
            // the full replay.
            let mut resumed = ShardSnapshot::capture(&once).restore();
            for rec in &wal.tail[n..] {
                apply_record(&mut resumed, rec, 180_000.0);
            }
            let full = wal.replay_prefix(180_000.0, wal.tail.len());
            assert_eq!(shard_fingerprint(&resumed), shard_fingerprint(&full));
        }
    }
}
