//! The domain event service.
//!
//! "The service configuration model … cooperates with other domain
//! services, such as the event service, to dynamically configure
//! distributed applications for the user." A small pub/sub broker:
//! publishers broadcast [`RuntimeEvent`]s, every subscriber gets its own
//! queue.

use crossbeam::channel::{unbounded, Receiver, Sender};
use parking_lot::Mutex;
use ubiqos::ReconfigureTrigger;

/// An event on the domain bus.
#[derive(Debug, Clone, PartialEq)]
pub struct RuntimeEvent {
    /// Wall-clock time (ms since domain start).
    pub at_ms: f64,
    /// The session the event concerns, if any.
    pub session: Option<u64>,
    /// What happened.
    pub trigger: ReconfigureTrigger,
}

/// A broadcast pub/sub channel for [`RuntimeEvent`]s.
///
/// Thread-safe: publishers and subscribers may live on different threads
/// (`crossbeam` channels underneath). Subscribers that lag simply buffer;
/// dropped subscribers are pruned on the next publish.
#[derive(Debug, Default)]
pub struct EventService {
    subscribers: Mutex<Vec<Sender<RuntimeEvent>>>,
}

impl EventService {
    /// Creates an event service with no subscribers.
    pub fn new() -> Self {
        Self::default()
    }

    /// Subscribes; the receiver sees every event published after this
    /// call.
    pub fn subscribe(&self) -> Receiver<RuntimeEvent> {
        let (tx, rx) = unbounded();
        self.subscribers.lock().push(tx);
        rx
    }

    /// Publishes an event to every live subscriber, returning how many
    /// received it.
    pub fn publish(&self, event: RuntimeEvent) -> usize {
        let mut subs = self.subscribers.lock();
        subs.retain(|tx| tx.send(event.clone()).is_ok());
        subs.len()
    }

    /// The current number of live subscribers.
    pub fn subscriber_count(&self) -> usize {
        self.subscribers.lock().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ubiqos_graph::DeviceId;

    fn event(at: f64) -> RuntimeEvent {
        RuntimeEvent {
            at_ms: at,
            session: Some(1),
            trigger: ReconfigureTrigger::DeviceCrashed(DeviceId::from_index(0)),
        }
    }

    #[test]
    fn subscribers_each_get_every_event() {
        let svc = EventService::new();
        let a = svc.subscribe();
        let b = svc.subscribe();
        assert_eq!(svc.publish(event(1.0)), 2);
        assert_eq!(svc.publish(event(2.0)), 2);
        assert_eq!(a.try_iter().count(), 2);
        assert_eq!(b.try_iter().count(), 2);
    }

    #[test]
    fn dropped_subscribers_are_pruned() {
        let svc = EventService::new();
        let a = svc.subscribe();
        {
            let _b = svc.subscribe();
        } // b dropped
        assert_eq!(svc.publish(event(1.0)), 1);
        assert_eq!(svc.subscriber_count(), 1);
        assert_eq!(a.try_iter().count(), 1);
    }

    #[test]
    fn no_subscribers_is_fine() {
        let svc = EventService::new();
        assert_eq!(svc.publish(event(0.0)), 0);
    }

    #[test]
    fn events_cross_threads() {
        let svc = std::sync::Arc::new(EventService::new());
        let rx = svc.subscribe();
        let svc2 = svc.clone();
        let handle = std::thread::spawn(move || {
            svc2.publish(event(5.0));
        });
        handle.join().unwrap();
        let got = rx.recv_timeout(std::time::Duration::from_secs(1)).unwrap();
        assert_eq!(got.at_ms, 5.0);
    }
}
