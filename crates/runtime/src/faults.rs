//! Deterministic fault-injection harness for the smart-space runtime.
//!
//! This module replays a seeded schedule of §3.3 reconfiguration events
//! ([`ubiqos_sim::faultgen`]) against a live [`DomainServer`] while the
//! Figure 5 request workload ([`ubiqos_sim::workload`]) arrives and
//! departs around it. After **every** event the harness sweeps the full
//! invariant set of the paper's model:
//!
//! * **Capacity bounds** — no device's residual availability is negative
//!   or above its current capacity; no link's residual bandwidth is
//!   negative or above the shared pool (Definition 3.4).
//! * **Conservation** — residual equals capacity minus the sum of every
//!   live session's charge, per device dimension and per link pair: no
//!   charge is ever leaked or double-refunded.
//! * **QoS consistency** — every live session's concrete service graph
//!   still satisfies Equation 1 (`diagnose(..).is_consistent()`).
//! * **Placement sanity** — every live cut respects its pins, and no
//!   component sits on a crashed device.
//! * **Discovery hygiene** — no service instance hosted on (pinned to) a
//!   crashed device is ever visible to discovery; crashed hosts'
//!   instances are unregistered until recovery.
//! * **Witnessed drops** — a session is only ever dropped together with
//!   the [`ConfigureError`](ubiqos::ConfigureError) that proves it was
//!   unplaceable when its retry budget ran out, and session fates balance
//!   exactly (admitted = completed + dropped + live + parked).
//!
//! Recovery runs the staged degrade → park → retry → drop pipeline of
//! [`crate::recovery`]: sessions untouched by a fault keep their
//! placement (incremental re-placement, O(affected) per fault), affected
//! sessions walk the QoS degradation ladder before being parked, and the
//! retry queue re-admits parked sessions as capacity returns.
//! [`FaultCampaignConfig::staged_recovery`]` = false` reverts to the
//! strict drop-on-first-failure baseline for comparison.
//!
//! # Imperfect failure detection
//!
//! By default the harness is a *perfect* detector: every crash is
//! observed the instant it happens (the crash arm immediately zeroes the
//! device and re-places its sessions). Setting
//! [`FaultCampaignConfig::detection_grace_h`] `> 0` switches to the
//! realistic model: devices renew registry **leases** through periodic
//! heartbeats (DES events), a crashed or partitioned device silently
//! stops renewing, and only when its lease has been expired for the
//! grace window does the detector *suspect* it — zeroing its capacity,
//! hiding its hosted instances from discovery, and parking its sessions.
//! Between failure and suspicion the control plane acts on a stale view:
//! placements onto the dead device fail witnessed at activation time
//! ([`ubiqos::ConfigureError::StaleView`]) and the arrival parks into
//! the retry queue instead of being denied. Partitions and heartbeat
//! jams make healthy devices look dead (*false suspicion*), which a
//! later heartbeat must cleanly undo — the conservation invariants
//! above keep running after every event, so any leaked or double-
//! refunded charge under false suspicion aborts the campaign.
//!
//! Two extra invariants guard the detector itself: **soundness after
//! grace** (a ground-unreachable device is suspected within grace +
//! heartbeat period) and **eventual completeness** (after the horizon,
//! the retry queue is pumped dry — an eventually-healed schedule ends
//! with zero permanently parked sessions).
//!
//! The whole campaign is a pure function of
//! [`FaultCampaignConfig::seed`]: the event log renders byte-identically
//! across runs and across `UBIQOS_THREADS` settings, which
//! `tests/fault_injection.rs` and `repro -- faults` both assert. With
//! `detection_grace_h = 0` (and no partition/jam overlays) the campaign
//! reproduces the perfect-detection logs and digests byte-identically —
//! no heartbeat events exist, no extra RNG draws happen, no new log
//! lines appear.

use crate::cost_model::LinkKind;
use crate::domain_server::{DomainServer, PlacementStrategy, SessionId};
use crate::pipeline::{PipelineConfig, PipelineStats, SpecTable};
use crate::profiler::StageTimes;
use crate::recovery::RecoveryReport;
use crate::retry_queue::RetryPolicy;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::fmt;
use std::fmt::Write as _;
use std::time::Instant;
use ubiqos::{ConfigureError, FaultReport};
use ubiqos_composition::{diagnose, DegradationLadder};
use ubiqos_discovery::{DeviceProperties, ServiceDescriptor};
use ubiqos_distribution::{Device, Environment};
use ubiqos_graph::{
    AbstractComponentSpec, AbstractServiceGraph, ComponentRole, DeviceId, PinHint, ServiceComponent,
};
use ubiqos_model::{QosDimension, QosValue, QosVector, ResourceVector};
use ubiqos_sim::{EventQueue, FaultKind, FaultScheduleConfig, Request, TimedFault, WorkloadConfig};

/// Mix constant separating the fault-schedule RNG stream from the
/// workload stream (both derive from the campaign seed).
const FAULT_STREAM_SALT: u64 = 0x5eed_fa17_0000_0001;

/// Numerical slack for conservation checks (charges are f64 sums).
const EPS: f64 = 1e-6;

/// Parameters of one fault-injection campaign.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultCampaignConfig {
    /// Master seed: workload, fault schedule, and client-device draws
    /// all derive from it, so one `u64` pins the whole campaign.
    pub seed: u64,
    /// Number of devices in the generated smart space (≥ 2).
    pub devices: usize,
    /// Number of application requests in the workload.
    pub requests: usize,
    /// Campaign horizon in hours.
    pub horizon_h: f64,
    /// Number of injected fault events.
    pub faults: usize,
    /// Smallest capacity fraction a fluctuation may leave.
    pub min_factor: f64,
    /// Largest correlated crash scope (`1` = independent crashes only).
    pub scope_max: usize,
    /// Number of flapping-link patterns overlaid on the fault schedule
    /// (each adds periodic degrade/restore events on one link, *on top
    /// of* `faults`).
    pub flapping_links: usize,
    /// Full degrade→restore period of each flapping link, in hours.
    pub flap_period_h: f64,
    /// Whether the staged degrade → park → retry → drop pipeline is
    /// active. `false` reverts to the strict baseline (no degradation
    /// ladder, no parking: re-placement failure drops immediately) for
    /// side-by-side comparison at the same admission workload.
    pub staged_recovery: bool,
    /// Whether the configuration caches (composition memo + discovery
    /// memo) are active. The caches are specified to be invisible to
    /// every observable output, so campaigns with and without them must
    /// produce byte-identical logs and digests — which `repro --
    /// configure` asserts by flipping this flag.
    pub config_cache: bool,
    /// Failure-detection grace window in hours. `0.0` (the default) is
    /// **perfect detection**: crashes are observed instantly, no
    /// heartbeats or leases exist, and the campaign reproduces the
    /// pre-detector logs byte-identically. `> 0.0` enables the
    /// lease/heartbeat detector: a device is suspected only after its
    /// lease has gone unrenewed for this long.
    pub detection_grace_h: f64,
    /// Heartbeat period in hours (each device renews its lease this
    /// often while reachable). Only read when `detection_grace_h > 0`.
    pub heartbeat_period_h: f64,
    /// Number of partition/heal pairs overlaid on the fault schedule
    /// (device groups cut off from the domain server while still
    /// running; every partition heals inside the horizon).
    pub partitions: usize,
    /// Largest device-group size a partition may cut off.
    pub partition_max: usize,
    /// Probability in `[0, 1]` of seeded heartbeat-jam windows (detector
    /// signal lost while the device stays healthy). `0.0` draws nothing
    /// from the RNG.
    pub heartbeat_loss: f64,
    /// Run the full invariant sweep every N-th event (default `1`:
    /// after every event, the behavior every pinned digest was captured
    /// under). Scale campaigns raise this — the sweep is O(live
    /// sessions × cut parts) and would otherwise dominate 10⁵-arrival
    /// runs — using the *same* stride for the serial and batched cells
    /// so their reports stay comparable. Values < 1 are treated as 1;
    /// skipped sweeps emit nothing, so the stride never perturbs logs
    /// or digests, only `invariant_checks`.
    pub invariant_stride: usize,
    /// Distribution-tier strategy every domain server in the campaign
    /// places with. The default ([`PlacementStrategy::Heuristic`]) is
    /// what every pinned digest was captured under; switching to
    /// [`PlacementStrategy::Portfolio`] exercises the exact/hierarchical
    /// solver portfolio under the same fault schedule.
    pub placement: PlacementStrategy,
}

impl FaultCampaignConfig {
    /// Whether this campaign runs the perfect detector (no grace window,
    /// no leases, no heartbeats) — the mode whose logs and digests are
    /// pinned by `tests/fault_injection.rs` and the CI baseline.
    pub fn perfect_detection(&self) -> bool {
        self.detection_grace_h <= 0.0
    }
}

impl Default for FaultCampaignConfig {
    fn default() -> Self {
        FaultCampaignConfig {
            seed: 0x1cdc_2002,
            devices: 5,
            requests: 120,
            horizon_h: 48.0,
            faults: 40,
            min_factor: 0.25,
            scope_max: 1,
            flapping_links: 0,
            flap_period_h: 8.0,
            staged_recovery: true,
            config_cache: true,
            detection_grace_h: 0.0,
            heartbeat_period_h: 0.25,
            partitions: 0,
            partition_max: 1,
            heartbeat_loss: 0.0,
            invariant_stride: 1,
            placement: PlacementStrategy::default(),
        }
    }
}

/// A deterministic, append-only log of everything the campaign did.
///
/// Rendering is byte-stable: every line is formatted with fixed float
/// precision at push time, so two campaigns agree iff their logs agree.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct EventLog {
    lines: Vec<String>,
}

impl EventLog {
    pub(crate) fn push(&mut self, idx: usize, at_h: f64, text: &str) {
        self.push_args(idx, at_h, format_args!("{text}"));
    }

    /// Formats one line straight into its final String — prefix and text
    /// in a single pass, no intermediate allocation. This is the event
    /// loop's hot path: at 10⁵ arrivals the naive
    /// `format!("[{idx:04}] t={at_h:010.4}h {text}")` over a separately
    /// formatted `text` costs more than the admission work it records.
    pub(crate) fn push_args(&mut self, idx: usize, at_h: f64, args: fmt::Arguments<'_>) {
        let mut line = String::with_capacity(128);
        line.push('[');
        push_padded_int(&mut line, idx as u64, 4);
        line.push_str("] t=");
        push_hours(&mut line, at_h);
        line.push_str("h ");
        if let Some(text) = args.as_str() {
            line.push_str(text);
        } else {
            use fmt::Write as _;
            let _ = line.write_fmt(args);
        }
        self.lines.push(line);
    }

    /// The log lines, in event order.
    pub fn lines(&self) -> &[String] {
        &self.lines
    }

    /// Renders the log to one newline-joined string (the byte sequence
    /// the determinism digest is computed over).
    pub fn render(&self) -> String {
        let mut out = String::new();
        for line in &self.lines {
            out.push_str(line);
            out.push('\n');
        }
        out
    }

    /// FNV-1a digest of [`EventLog::render`], streamed line by line so
    /// the multi-megabyte joined string is never materialized.
    pub fn digest(&self) -> u64 {
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        let mut eat = |bytes: &[u8]| {
            for &b in bytes {
                hash ^= u64::from(b);
                hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
            }
        };
        for line in &self.lines {
            eat(line.as_bytes());
            eat(b"\n");
        }
        hash
    }
}

/// Appends `value` in decimal, zero-padded to at least `width` digits —
/// the bytes `format!("{value:0width$}")` produces, without the
/// formatting machinery.
fn push_padded_int(out: &mut String, value: u64, width: usize) {
    let mut buf = [0u8; 20];
    let mut n = 0;
    let mut v = value;
    loop {
        buf[n] = b'0' + (v % 10) as u8;
        v /= 10;
        n += 1;
        if v == 0 {
            break;
        }
    }
    for _ in n..width {
        out.push('0');
    }
    for i in (0..n).rev() {
        out.push(buf[i] as char);
    }
}

/// Appends `at_h` as `format!("{at_h:010.4}")` would. The fast path
/// formats the scaled integer directly; values whose fourth decimal sits
/// near a rounding boundary (where a naive `* 1e4` could round the other
/// way than the exact decimal expansion `{:.4}` works from), negative
/// values, and values too wide for the `010` pad all fall back to the
/// std formatter. The `fast_hours_matches_std_formatting` test sweeps
/// both paths against `format!` to keep every digest byte-stable.
fn push_hours(out: &mut String, at_h: f64) {
    use fmt::Write as _;
    let scaled = at_h * 1e4;
    // Fast-path guard: in-range, and ≥ 10 ulps clear of the x.5 rounding
    // boundary of the fourth decimal (ulp(1e9) ≈ 1.2e-7 ≪ 1e-5).
    if !(0.0..=999_999_999.0).contains(&scaled) || (scaled.fract() - 0.5).abs() <= 1e-5 {
        let _ = write!(out, "{at_h:010.4}");
        return;
    }
    let r = scaled.round() as u64;
    push_padded_int(out, r / 10_000, 5);
    out.push('.');
    push_padded_int(out, r % 10_000, 4);
}

/// An invariant broken mid-campaign: where, during what, and how.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InvariantViolation {
    /// Simulation time of the offending event, in hours.
    pub at_h_milli: u64,
    /// The log line of the event being processed.
    pub event: String,
    /// What went wrong.
    pub violation: String,
}

impl fmt::Display for InvariantViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "invariant violated at t={}h during `{}`: {}",
            self.at_h_milli as f64 / 1000.0,
            self.event,
            self.violation
        )
    }
}

impl std::error::Error for InvariantViolation {}

/// A finished campaign: the summary report plus the full event log.
#[derive(Debug, Clone)]
pub struct CampaignOutcome {
    /// Aggregate counters and the log digest.
    pub report: FaultReport,
    /// The deterministic event log.
    pub log: EventLog,
    /// Wall-clock stage profile captured from the domain server at the
    /// end of the run (includes the pipeline runtime's queue-wait and
    /// batch-size histograms, which stay empty on the serial path).
    /// Never feeds logs or digests.
    pub stages: StageTimes,
    /// Overlap counters of the batched pipeline runtime; `None` for
    /// serial runs.
    pub pipeline: Option<PipelineStats>,
}

/// One event in the merged campaign timeline.
#[derive(Debug, Clone, Copy)]
pub(crate) enum CampaignEvent {
    /// Request `i` of the workload arrives.
    Arrival(usize),
    /// Request `i`'s lifetime ends.
    Departure(usize),
    /// Fault `j` of the schedule fires.
    Fault(usize),
    /// Device `d` sends its periodic heartbeat (imperfect mode only;
    /// lost while the device is down, partitioned, or jammed).
    Heartbeat(usize),
    /// The anti-entropy sweep scheduled `grace` after a lease renewal:
    /// any lease now expired turns into a suspicion (imperfect only).
    /// Carries the renewing device for the transcript; the sweep itself
    /// is global.
    LeaseCheck(#[allow(dead_code)] usize),
}

/// Ground-truth bookkeeping the imperfect detector is *not* allowed to
/// read — only the harness (playing the role of physical reality) does.
/// Clone + equality exist for the durability layer: the detector state
/// is part of a shard's durable image, snapshotted and compared against
/// the write-ahead-log replay on every crash recovery.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct DetectorState {
    /// Nesting depth of partitions covering each device (> 0 = cut off).
    pub(crate) partition_depth: Vec<u32>,
    /// Heartbeats from each device are lost until this hour.
    pub(crate) jam_until_h: Vec<f64>,
    /// Hour each currently-unreachable device became unreachable, for
    /// the soundness-after-grace invariant.
    pub(crate) unreachable_since: BTreeMap<usize, f64>,
}

impl DetectorState {
    pub(crate) fn new(devices: usize) -> Self {
        DetectorState {
            partition_depth: vec![0; devices],
            jam_until_h: vec![0.0; devices],
            unreachable_since: BTreeMap::new(),
        }
    }
}

/// Builds the campaign's smart space: `devices` devices with cycling
/// capacity profiles, mixed wired/wireless links, and a registry
/// offering a WAV pipeline plus an MPEG pipeline whose sink only accepts
/// WAV (so composing it exercises transcoder insertion).
///
/// Besides the space-wide (unpinned) instances, every device *hosts* a
/// pinned `wav-source` instance. Hosted instances are what the registry
/// churn path exercises: when a device crashes its instances vanish from
/// discovery (re-composition falls back to survivors or the space-wide
/// source), and they re-register on recovery.
pub fn build_space(devices: usize) -> DomainServer {
    assert!(devices >= 2, "fault campaigns need at least 2 devices");
    let profiles = [
        ResourceVector::mem_cpu(256.0, 300.0),
        ResourceVector::mem_cpu(192.0, 220.0),
        ResourceVector::mem_cpu(128.0, 160.0),
        ResourceVector::mem_cpu(96.0, 120.0),
    ];
    let mut builder = Environment::builder().default_bandwidth_mbps(40.0);
    for i in 0..devices {
        builder = builder.device(Device::new(
            format!("dev{i}"),
            profiles[i % profiles.len()].clone(),
        ));
    }
    let env = builder.link_mbps(0, 1, 80.0).build();
    let links: Vec<LinkKind> = (0..devices)
        .map(|i| {
            if i % 2 == 0 {
                LinkKind::Ethernet
            } else {
                LinkKind::Wireless
            }
        })
        .collect();
    let props = DeviceProperties {
        screen_pixels: 1_920_000.0,
        compute_factor: 4.0,
    };
    let mut server = DomainServer::new(env, links, vec![props; devices]);

    server.registry_mut().register(ServiceDescriptor::new(
        "wav-source@space",
        "wav-source",
        ServiceComponent::builder("wav-source")
            .role(ComponentRole::Source)
            .qos_out(
                QosVector::new()
                    .with(QosDimension::Format, QosValue::token("WAV"))
                    .with(QosDimension::FrameRate, QosValue::exact(30.0)),
            )
            .capability(QosDimension::FrameRate, QosValue::range(1.0, 30.0))
            .resources(ResourceVector::mem_cpu(24.0, 30.0))
            .build(),
    ));
    server.registry_mut().register(ServiceDescriptor::new(
        "wav-sink@space",
        "wav-sink",
        ServiceComponent::builder("wav-sink")
            .role(ComponentRole::Sink)
            .qos_in(
                QosVector::new()
                    .with(QosDimension::Format, QosValue::token("WAV"))
                    .with(QosDimension::FrameRate, QosValue::range(5.0, 30.0)),
            )
            .resources(ResourceVector::mem_cpu(10.0, 14.0))
            .build(),
    ));
    for i in 0..devices {
        server.registry_mut().register(ServiceDescriptor::new(
            format!("wav-source@dev{i}"),
            "wav-source",
            ServiceComponent::builder("wav-source")
                .role(ComponentRole::Source)
                .qos_out(
                    QosVector::new()
                        .with(QosDimension::Format, QosValue::token("WAV"))
                        .with(QosDimension::FrameRate, QosValue::exact(30.0)),
                )
                .capability(QosDimension::FrameRate, QosValue::range(1.0, 30.0))
                .resources(ResourceVector::mem_cpu(24.0, 30.0))
                .pinned_to(DeviceId::from_index(i))
                .build(),
        ));
    }
    server.registry_mut().register(ServiceDescriptor::new(
        "mpeg-source@space",
        "mpeg-source",
        ServiceComponent::builder("mpeg-source")
            .role(ComponentRole::Source)
            .qos_out(
                QosVector::new()
                    .with(QosDimension::Format, QosValue::token("MPEG"))
                    .with(QosDimension::FrameRate, QosValue::exact(24.0)),
            )
            .capability(QosDimension::FrameRate, QosValue::range(5.0, 24.0))
            .resources(ResourceVector::mem_cpu(40.0, 50.0))
            .build(),
    ));
    server.registry_mut().register(ServiceDescriptor::new(
        "pcm-player@space",
        "pcm-player",
        ServiceComponent::builder("pcm-player")
            .role(ComponentRole::Sink)
            .qos_in(
                QosVector::new()
                    .with(QosDimension::Format, QosValue::token("WAV"))
                    .with(QosDimension::FrameRate, QosValue::range(5.0, 24.0)),
            )
            .resources(ResourceVector::mem_cpu(12.0, 16.0))
            .build(),
    ));
    server
}

/// The campaign's application templates: index 0 is a consistent WAV
/// pipeline, index 1 an MPEG source feeding a WAV-only player (forcing
/// the composer to insert the catalog's MPEG→WAV transcoder).
pub fn app_template(graph_index: usize) -> (&'static str, AbstractServiceGraph) {
    let mut g = AbstractServiceGraph::new();
    if graph_index.is_multiple_of(2) {
        let s = g.add_spec(AbstractComponentSpec::new("wav-source"));
        let p = g.add_spec(AbstractComponentSpec::new("wav-sink").with_pin(PinHint::ClientDevice));
        g.add_edge(s, p, 1.2).expect("template edge");
        ("wav-audio", g)
    } else {
        let s = g.add_spec(AbstractComponentSpec::new("mpeg-source"));
        let p =
            g.add_spec(AbstractComponentSpec::new("pcm-player").with_pin(PinHint::ClientDevice));
        g.add_edge(s, p, 2.5).expect("template edge");
        ("mpeg-audio", g)
    }
}

/// SplitMix64 step — used to derive per-request client devices from the
/// campaign seed without consuming the workload RNG stream.
pub(crate) fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Runs one fault-injection campaign to completion.
///
/// Returns the outcome, or the first [`InvariantViolation`] encountered
/// (the campaign aborts at the first broken invariant so the offending
/// event is always the last log line).
///
/// # Panics
///
/// Panics when the config is structurally invalid (fewer than 2 devices,
/// non-positive horizon) — the same construction errors the underlying
/// generators reject.
pub fn run_fault_campaign(
    cfg: &FaultCampaignConfig,
) -> Result<CampaignOutcome, InvariantViolation> {
    run_fault_campaign_with(cfg, &campaign_schedule(cfg))
}

/// The exact fault schedule [`run_fault_campaign`] derives from `cfg`
/// (seeded off a salted stream so it never perturbs the workload RNG).
///
/// Exposed so callers that hit an [`InvariantViolation`] can hand this
/// schedule to [`crate::shrink::shrink_schedule`] and replay shrunken
/// candidates through [`run_fault_campaign_with`].
pub fn campaign_schedule(cfg: &FaultCampaignConfig) -> Vec<TimedFault> {
    FaultScheduleConfig {
        seed: cfg.seed ^ FAULT_STREAM_SALT,
        events: cfg.faults,
        horizon_h: cfg.horizon_h,
        devices: cfg.devices,
        min_factor: cfg.min_factor,
        scope_max: cfg.scope_max,
        flapping_links: cfg.flapping_links,
        flap_period_h: cfg.flap_period_h,
        partitions: cfg.partitions,
        partition_max: cfg.partition_max,
        heartbeat_loss: cfg.heartbeat_loss,
    }
    .generate()
}

/// Runs one campaign against an *explicit* fault schedule instead of the
/// config-derived one — the replay hook [`crate::shrink`] uses to probe
/// shrunken schedules. [`run_fault_campaign`] is exactly this with the
/// seeded schedule.
///
/// # Panics
///
/// See [`run_fault_campaign`].
pub fn run_fault_campaign_with(
    cfg: &FaultCampaignConfig,
    schedule: &[TimedFault],
) -> Result<CampaignOutcome, InvariantViolation> {
    run_fault_campaign_impl(cfg, schedule, None)
}

/// Pulls the next event to commit, refilling the admission batch from
/// the DES queue when it runs dry.
///
/// Serial mode (`pipeline == None`) admits exactly one event per refill
/// — the historical pop-one loop. Batched mode admits up to
/// `batch_size` events bounded by the lease-check horizon (see
/// [`crate::pipeline`] module docs for why that preserves the serial
/// pop order), then primes the speculation table for the batch's
/// arrivals on the worker pool before the first commit.
#[allow(clippy::too_many_arguments)]
fn next_event(
    pending: &mut VecDeque<(f64, CampaignEvent)>,
    queue: &mut EventQueue<CampaignEvent>,
    pipeline: Option<&PipelineConfig>,
    cfg: &FaultCampaignConfig,
    trace: &[Request],
    down: &BTreeSet<usize>,
    spec: &mut SpecTable,
    server: &DomainServer,
    batch_wall: &mut Instant,
) -> Option<(f64, CampaignEvent)> {
    if pending.is_empty() {
        let max = pipeline.map_or(1, |pl| pl.batch_size.max(1));
        let imperfect = !cfg.perfect_detection();
        let mut horizon = f64::INFINITY;
        while pending.len() < max {
            match queue.peek_time() {
                Some(t) if t <= horizon => {
                    let (at_h, ev) = queue.pop().expect("peeked event pops");
                    if imperfect {
                        if let CampaignEvent::Heartbeat(_) = ev {
                            horizon = horizon.min(at_h + cfg.detection_grace_h);
                        }
                    }
                    pending.push_back((at_h, ev));
                }
                _ => break,
            }
        }
        if let Some(pl) = pipeline {
            if !pending.is_empty() {
                server.record_batch_size(pending.len());
                spec.prime(server, pl, cfg, trace, down, pending.iter().map(|(_, e)| e));
                *batch_wall = Instant::now();
            }
        }
    }
    let next = pending.pop_front();
    if next.is_some() && pipeline.is_some() {
        server.record_queue_wait_us(u64::try_from(batch_wall.elapsed().as_micros()).unwrap_or(0));
    }
    next
}

/// The shared campaign body behind [`run_fault_campaign_with`]
/// (`pipeline == None`: commit events straight off the DES queue) and
/// [`crate::pipeline::run_fault_campaign_batched`] (`Some`: admit in
/// batches, speculate arrival pipelines on the worker pool, commit in
/// the identical deterministic order).
pub(crate) fn run_fault_campaign_impl(
    cfg: &FaultCampaignConfig,
    schedule: &[TimedFault],
    pipeline: Option<&PipelineConfig>,
) -> Result<CampaignOutcome, InvariantViolation> {
    let mut server = build_space(cfg.devices);
    if !cfg.staged_recovery {
        server.set_ladder(DegradationLadder::strict());
        server.set_retry_policy(RetryPolicy::strict());
    }
    server.set_config_cache(cfg.config_cache);
    server.set_placement_strategy(cfg.placement);
    let workload = WorkloadConfig::overload(cfg.requests, cfg.horizon_h);
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let trace = workload.generate(&mut rng);

    let imperfect = !cfg.perfect_detection();
    let grace_ms = cfg.detection_grace_h * 3_600_000.0;
    // The detector lives exactly as long as the heartbeat stream: lease
    // checks that fire after the last scheduled heartbeat are ignored
    // (otherwise every healthy device would be "suspected" at the end of
    // the campaign simply because its renewals stopped with the
    // schedule). The final anti-entropy sweep below reconciles whatever
    // is still unreachable at that point.
    let hb_steps = if imperfect {
        assert!(
            cfg.heartbeat_period_h > 0.0,
            "imperfect detection needs a positive heartbeat period"
        );
        (cfg.horizon_h / cfg.heartbeat_period_h).floor() as usize
    } else {
        0
    };
    let hb_end_h = hb_steps as f64 * cfg.heartbeat_period_h;

    let mut queue: EventQueue<CampaignEvent> = EventQueue::new();
    for (i, r) in trace.iter().enumerate() {
        queue.schedule(r.arrival_h, CampaignEvent::Arrival(i));
        queue.schedule(r.departure_h(), CampaignEvent::Departure(i));
    }
    for (j, f) in schedule.iter().enumerate() {
        queue.schedule(f.at_h, CampaignEvent::Fault(j));
    }
    if imperfect {
        // Multiples of the period (not an accumulating sum) so the last
        // heartbeat lands exactly on the horizon when it divides evenly.
        for d in 0..cfg.devices {
            for k in 0..=hb_steps {
                queue.schedule(
                    k as f64 * cfg.heartbeat_period_h,
                    CampaignEvent::Heartbeat(d),
                );
            }
        }
    }

    let mut report = FaultReport {
        seed: cfg.seed,
        ..FaultReport::default()
    };
    let mut log = EventLog::default();
    let mut down: BTreeSet<usize> = BTreeSet::new();
    let mut det = DetectorState::new(cfg.devices);
    // request index -> live session, and the reverse (for drop handling).
    let mut active: BTreeMap<usize, SessionId> = BTreeMap::new();
    let mut by_session: BTreeMap<SessionId, usize> = BTreeMap::new();
    let mut last_h = 0.0_f64;
    let mut idx = 0usize;
    let stride = cfg.invariant_stride.max(1) as u64;
    let mut iterations = 0u64;
    // Hour of the last anti-entropy sweep: consecutive lease checks at
    // one instant share a single sweep (see the LeaseCheck arm).
    let mut last_sweep_h: Option<f64> = None;
    let mut spec = SpecTable::default();
    let mut pending: VecDeque<(f64, CampaignEvent)> = VecDeque::new();
    let mut batch_wall = Instant::now();
    // Reused across arrivals: the reachable-device scratch buffer.
    let mut up: Vec<usize> = Vec::with_capacity(cfg.devices);

    while let Some((at_h, event)) = next_event(
        &mut pending,
        &mut queue,
        pipeline,
        cfg,
        &trace,
        &down,
        &mut spec,
        &server,
        &mut batch_wall,
    ) {
        let delta_h = (at_h - last_h).max(0.0);
        server.play(delta_h * 3600.0);
        last_h = at_h;

        let mut lines: Vec<String> = Vec::new();
        match event {
            CampaignEvent::Arrival(i) => {
                report.events += 1;
                let req = &trace[i];
                report.arrivals += 1;
                up.clear();
                up.extend((0..cfg.devices).filter(|d| !down.contains(d)));
                let client = up[(splitmix64(cfg.seed ^ i as u64) % up.len() as u64) as usize];
                let (name, graph) = app_template(req.graph_index);
                // Batched mode adopts a speculated pipeline outcome in
                // this event's deterministic commit slot; with the
                // table invalidated on every mutation, speculate +
                // admit is exactly `start_session` decomposed, so both
                // arms produce byte-identical logs and accounting.
                let outcome = if pipeline.is_some() {
                    let speculated =
                        spec.take_or_speculate(&server, (req.graph_index, client), &graph);
                    server.admit_speculated(
                        || format!("{name}-{i}"),
                        graph,
                        QosVector::new(),
                        DeviceId::from_index(client),
                        speculated,
                    )
                } else {
                    server.start_session(
                        format!("{name}-{i}"),
                        graph,
                        QosVector::new(),
                        DeviceId::from_index(client),
                    )
                };
                // Hot path: these lines go straight into the log (one
                // String, one formatting pass) instead of through the
                // `lines` staging buffer.
                match outcome {
                    Ok(id) => {
                        spec.invalidate();
                        report.admitted += 1;
                        active.insert(i, id);
                        by_session.insert(id, i);
                        log.push_args(
                            idx,
                            at_h,
                            format_args!(
                                "arrive  req{i} {name} client=dev{client} -> admitted as {id}"
                            ),
                        );
                    }
                    Err(e) if matches!(e, ConfigureError::StaleView { .. }) => {
                        // The stale-view admission path: the view said
                        // yes, reality said no at activation. Nothing
                        // was charged; the session parks (counted as
                        // admitted — its fate resolves later) instead
                        // of being denied outright.
                        report.admitted += 1;
                        report.parked += 1;
                        let (_, graph) = app_template(req.graph_index);
                        let id = server.park_arrival(
                            format!("{name}-{i}"),
                            graph,
                            QosVector::new(),
                            DeviceId::from_index(client),
                            None,
                            e,
                        );
                        active.insert(i, id);
                        by_session.insert(id, i);
                        log.push_args(
                            idx,
                            at_h,
                            format_args!(
                                "arrive  req{i} {name} client=dev{client} -> parked on stale view as {id}"
                            ),
                        );
                    }
                    Err(e) => {
                        report.denied += 1;
                        log.push_args(
                            idx,
                            at_h,
                            format_args!(
                                "arrive  req{i} {name} client=dev{client} -> denied ({e})"
                            ),
                        );
                    }
                }
                idx += 1;
            }
            CampaignEvent::Departure(i) => {
                report.events += 1;
                match active.remove(&i) {
                    Some(id) => {
                        by_session.remove(&id);
                        let stopped = server.stop_session(id);
                        debug_assert!(stopped.is_some(), "active map tracks live sessions");
                        // The refund changed residual capacity.
                        spec.invalidate();
                        report.completed += 1;
                        log.push_args(
                            idx,
                            at_h,
                            format_args!("depart  req{i} -> completed ({id})"),
                        );
                    }
                    None => {
                        log.push_args(idx, at_h, format_args!("depart  req{i} -> already gone"));
                    }
                }
                idx += 1;
            }
            CampaignEvent::Fault(j) => {
                report.events += 1;
                // Conservatively treat every fault as a mutation (even
                // skipped ones — the check costs nothing).
                spec.invalidate();
                let fault = &schedule[j];
                lines.push(apply_fault(
                    &mut server,
                    fault,
                    cfg,
                    &mut down,
                    &mut det,
                    &mut active,
                    &mut by_session,
                    &mut report,
                ));
            }
            CampaignEvent::Heartbeat(d) => {
                let lost =
                    down.contains(&d) || det.partition_depth[d] > 0 || at_h < det.jam_until_h[d];
                if !lost {
                    if let Some(rec) = server.heartbeat(DeviceId::from_index(d), grace_ms) {
                        // A heartbeat from a *suspected* device: the
                        // suspicion was stale (heal or recovery) and is
                        // withdrawn.
                        spec.invalidate();
                        report.reinstatements += 1;
                        count_pass(&rec, &mut report);
                        let tail = absorb_recovery(&rec, &mut active, &mut by_session, &mut report);
                        lines.push(format!(
                            "detect  reinstate dev{d} (lease renewed) -> {tail}"
                        ));
                    }
                    queue.schedule(at_h + cfg.detection_grace_h, CampaignEvent::LeaseCheck(d));
                }
            }
            CampaignEvent::LeaseCheck(_) if at_h > hb_end_h + 1e-9 => {
                // Detector decommissioned with the heartbeat stream; the
                // final sweep below reconciles remaining ground truth.
            }
            CampaignEvent::LeaseCheck(_) if last_sweep_h == Some(at_h) => {
                // Hoisted: heartbeats land on shared period multiples,
                // so their lease checks cluster at identical instants
                // and pop consecutively (in-loop schedules always
                // follow same-time setup events in seq order, and only
                // lease checks are scheduled in-loop). The first check
                // at this instant already swept *every* overdue lease
                // and revoked it; nothing between two same-instant
                // checks can create a new overdue lease, so the repeat
                // sweep is provably empty and skipped — no lines, no
                // counters, digests byte-identical to sweeping again.
            }
            CampaignEvent::LeaseCheck(_) => {
                // Anti-entropy: *every* overdue lease is swept, not just
                // the one whose renewal scheduled this check.
                last_sweep_h = Some(at_h);
                let mut swept = false;
                for (device, rec) in server.expire_overdue_leases() {
                    swept = true;
                    report.suspicions += 1;
                    let ground_up = !down.contains(&device.index());
                    if ground_up {
                        report.false_suspected += 1;
                    }
                    count_pass(&rec, &mut report);
                    let tail = absorb_recovery(&rec, &mut active, &mut by_session, &mut report);
                    let tag = if ground_up { " (falsely)" } else { "" };
                    lines.push(format!(
                        "detect  suspect dev{}{tag} (lease expired) -> {tail}",
                        device.index()
                    ));
                }
                if swept {
                    spec.invalidate();
                }
            }
        }
        for line in &lines {
            log.push(idx, at_h, line);
            idx += 1;
        }

        // Drain any parked-session retries that became due as virtual
        // time advanced (recovery passes drain their own; this catches
        // time passing through arrivals/departures/switches).
        let retries = server.process_retries();
        if !retries.is_empty() {
            spec.invalidate();
            let tail = absorb_recovery(&retries, &mut active, &mut by_session, &mut report);
            log.push(idx, at_h, &format!("retry   parked queue -> {tail}"));
            idx += 1;
        }

        iterations += 1;
        if !iterations.is_multiple_of(stride) {
            continue;
        }
        // Cloned lazily — only checked iterations pay for the violation
        // context.
        let event_line = log.lines().last().cloned().unwrap_or_default();
        report.invariant_checks += 1;
        let observed: BTreeSet<usize> = if imperfect {
            server.suspected_devices().clone()
        } else {
            down.clone()
        };
        if let Err(violation) = check_invariants(&server, &observed) {
            return Err(InvariantViolation {
                at_h_milli: (at_h * 1000.0).round() as u64,
                event: event_line,
                violation,
            });
        }
        if imperfect && at_h <= hb_end_h + 1e-9 {
            // Detector soundness after grace: once a device has been
            // unreachable longer than grace + one heartbeat period, some
            // lease check must have suspected it. Only enforceable while
            // the heartbeat stream (and thus the detector) is running.
            let lag = cfg.detection_grace_h + cfg.heartbeat_period_h + 1e-6;
            for (&d, &since) in &det.unreachable_since {
                if at_h > since + lag && !server.is_suspected(DeviceId::from_index(d)) {
                    return Err(InvariantViolation {
                        at_h_milli: (at_h * 1000.0).round() as u64,
                        event: event_line,
                        violation: format!(
                            "detector unsound: dev{d} unreachable since t={since:.4}h \
                             still unsuspected at t={at_h:.4}h (grace {:.4}h)",
                            cfg.detection_grace_h
                        ),
                    });
                }
            }
        }
    }

    if imperfect {
        // Anti-entropy finalize: any device still unreachable at the end
        // of the horizon whose lease check has not fired yet is swept
        // now, so the convergence drain below sees the true capacity.
        for d in 0..cfg.devices {
            let unreachable = down.contains(&d) || det.partition_depth[d] > 0;
            if unreachable && !server.is_suspected(DeviceId::from_index(d)) {
                report.suspicions += 1;
                if !down.contains(&d) {
                    report.false_suspected += 1;
                }
                let rec = server.suspect_many(&[DeviceId::from_index(d)]);
                count_pass(&rec, &mut report);
                let tail = absorb_recovery(&rec, &mut active, &mut by_session, &mut report);
                log.push(
                    idx,
                    last_h,
                    &format!("detect  suspect dev{d} (final sweep) -> {tail}"),
                );
                idx += 1;
            }
        }
        // Eventual completeness: pump the retry queue dry. Every parked
        // session either re-admits (the schedule eventually healed) or
        // exhausts its finite retry budget and drops witnessed — nothing
        // stays parked forever.
        while server.parked_count() > 0 {
            let next_ms = server
                .parked_sessions()
                .map(|(_, p)| p.next_retry_ms)
                .fold(f64::INFINITY, f64::min);
            if next_ms > server.now_ms() {
                server.play((next_ms - server.now_ms()) / 1000.0);
            }
            let rec = server.process_retries();
            let drain_h = server.now_ms() / 3_600_000.0;
            let tail = absorb_recovery(&rec, &mut active, &mut by_session, &mut report);
            log.push(idx, drain_h, &format!("drain   parked queue -> {tail}"));
            idx += 1;
            report.invariant_checks += 1;
            let observed: BTreeSet<usize> = server.suspected_devices().clone();
            if let Err(violation) = check_invariants(&server, &observed) {
                return Err(InvariantViolation {
                    at_h_milli: (drain_h * 1000.0).round() as u64,
                    event: "drain   parked queue".to_owned(),
                    violation,
                });
            }
        }
    }

    report.live_at_end = server.session_count() as u32;
    report.parked_at_end = server.parked_count() as u32;
    report.stale_views = server.stale_view_count() as u32;
    // Everything still live or parked at the horizon is neither
    // completed nor dropped; fates must balance exactly.
    report.log_digest = log.digest();
    debug_assert!(report.session_fates_balance(), "fates balance: {report:?}");
    Ok(CampaignOutcome {
        report,
        log,
        stages: server.stage_times(),
        pipeline: pipeline.map(|_| spec.stats.clone()),
    })
}

/// Applies one fault to the server, updating the bookkeeping and
/// returning the log line describing what actually happened.
#[allow(clippy::too_many_arguments)]
pub(crate) fn apply_fault(
    server: &mut DomainServer,
    fault: &TimedFault,
    cfg: &FaultCampaignConfig,
    down: &mut BTreeSet<usize>,
    det: &mut DetectorState,
    active: &mut BTreeMap<usize, SessionId>,
    by_session: &mut BTreeMap<SessionId, usize>,
    report: &mut FaultReport,
) -> String {
    let imperfect = !cfg.perfect_detection();
    match fault.kind {
        FaultKind::Crash { device } => {
            // The schedule's up/down state machine ran in generation
            // order; after time-sorting, a crash may arrive while the
            // device is already down or is the last survivor. Skip those
            // (logged), so the space never fully blacks out.
            if down.contains(&device) {
                return format!("fault   crash dev{device} -> skipped (already down)");
            }
            if down.len() + 1 >= cfg.devices {
                return format!("fault   crash dev{device} -> skipped (last device up)");
            }
            report.crashes += 1;
            down.insert(device);
            if imperfect {
                // Ground truth only: the detector learns nothing until
                // the device's lease expires.
                server.set_reachable(DeviceId::from_index(device), false);
                det.unreachable_since.entry(device).or_insert(fault.at_h);
                return format!("fault   crash dev{device} -> undetected (awaiting lease expiry)");
            }
            let rec = server.handle_crash(DeviceId::from_index(device));
            count_pass(&rec, report);
            let tail = absorb_recovery(&rec, active, by_session, report);
            format!("fault   crash dev{device} -> {tail}")
        }
        FaultKind::CrashScope { first, count } => {
            // Same skip rules as single crashes, applied member-wise, and
            // the whole group shrinks (from the back) until a survivor
            // remains outside it.
            let mut members: Vec<usize> = (first..first + count)
                .filter(|d| !down.contains(d))
                .collect();
            while !members.is_empty() && down.len() + members.len() >= cfg.devices {
                members.pop();
            }
            if members.is_empty() {
                return format!(
                    "fault   crash-scope dev{first}+{count} -> skipped (no member can go down)"
                );
            }
            report.crashes += members.len() as u32;
            if members.len() >= 2 {
                report.correlated_crashes += 1;
            }
            down.extend(members.iter().copied());
            if imperfect {
                for &d in &members {
                    server.set_reachable(DeviceId::from_index(d), false);
                    det.unreachable_since.entry(d).or_insert(fault.at_h);
                }
                let last = members.last().expect("non-empty");
                return format!(
                    "fault   crash-scope dev{first}..dev{last} ({} members) -> undetected (awaiting lease expiry)",
                    members.len()
                );
            }
            let ids: Vec<DeviceId> = members.iter().map(|&d| DeviceId::from_index(d)).collect();
            let rec = server.handle_crash_many(&ids);
            count_pass(&rec, report);
            let tail = absorb_recovery(&rec, active, by_session, report);
            let last = members.last().expect("non-empty");
            format!(
                "fault   crash-scope dev{first}..dev{last} ({} members) -> {tail}",
                members.len()
            )
        }
        FaultKind::Recover { device } => {
            if !down.contains(&device) {
                return format!("fault   recover dev{device} -> skipped (already up)");
            }
            report.device_recoveries += 1;
            down.remove(&device);
            if imperfect {
                // Ground truth restored; if the crash was never even
                // suspected (shorter than the grace window) the blip is
                // tolerated invisibly, otherwise the next heartbeat
                // renews the lease and reinstates the device.
                if det.partition_depth[device] == 0 {
                    server.set_reachable(DeviceId::from_index(device), true);
                    det.unreachable_since.remove(&device);
                }
                return format!("fault   recover dev{device} -> reachable (awaiting heartbeat)");
            }
            let rec = server.recover_device(DeviceId::from_index(device));
            count_pass(&rec, report);
            let tail = absorb_recovery(&rec, active, by_session, report);
            format!("fault   recover dev{device} -> {tail}")
        }
        FaultKind::Fluctuate { device, factor } => {
            if down.contains(&device) {
                return format!("fault   fluctuate dev{device} -> skipped (down)");
            }
            if server.is_suspected(DeviceId::from_index(device)) {
                // A suspected device's capacity is held at zero by the
                // detector; applying the fluctuation would overwrite it.
                // Physically the fluctuation happens on the (healthy)
                // device, but the domain server cannot observe it.
                return format!("fault   fluctuate dev{device} -> skipped (suspected)");
            }
            report.fluctuations += 1;
            let pristine = server
                .pristine()
                .device(device)
                .expect("schedule device indexes the space")
                .availability()
                .clone();
            let scaled = pristine
                .scaled_by(&vec![factor; pristine.dim()])
                .expect("factor vector matches dimension");
            let rec = server.fluctuate(DeviceId::from_index(device), scaled);
            count_pass(&rec, report);
            let tail = absorb_recovery(&rec, active, by_session, report);
            format!("fault   fluctuate dev{device} x{factor:.3} -> {tail}")
        }
        FaultKind::DegradeLink { a, b, factor } => {
            if down.contains(&a) || down.contains(&b) {
                return format!("fault   degrade-link dev{a}-dev{b} -> skipped (endpoint down)");
            }
            report.link_fluctuations += 1;
            let mbps = server.pristine().bandwidth().get(a, b) * factor;
            let rec = server.degrade_link(DeviceId::from_index(a), DeviceId::from_index(b), mbps);
            count_pass(&rec, report);
            let tail = absorb_recovery(&rec, active, by_session, report);
            format!("fault   degrade-link dev{a}-dev{b} x{factor:.3} -> {tail}")
        }
        FaultKind::SwitchDevice { pick, to } => {
            // Parked sessions stay tracked in `by_session` but have no
            // live placement; portal switches only target live ones.
            let ids: Vec<SessionId> = by_session
                .keys()
                .copied()
                .filter(|&id| server.session(id).is_some())
                .collect();
            if ids.is_empty() {
                return "fault   switch-device -> skipped (no live session)".to_owned();
            }
            let id = ids[(pick % ids.len() as u64) as usize];
            report.switches += 1;
            match server.switch_device(id, DeviceId::from_index(to)) {
                Ok(plan) => format!(
                    "fault   switch-device {id} -> dev{to} (resume at {:.4}s)",
                    plan.resume_position_s()
                ),
                Err(e) => {
                    report.switch_failures += 1;
                    format!("fault   switch-device {id} -> dev{to} failed ({e}), old config kept")
                }
            }
        }
        FaultKind::MoveUser { pick, to } => {
            let ids: Vec<SessionId> = by_session
                .keys()
                .copied()
                .filter(|&id| server.session(id).is_some())
                .collect();
            if ids.is_empty() {
                return "fault   move-user -> skipped (no live session)".to_owned();
            }
            let id = ids[(pick % ids.len() as u64) as usize];
            report.moves += 1;
            match server.move_user(id, None, DeviceId::from_index(to)) {
                Ok(plan) => format!(
                    "fault   move-user {id} -> dev{to} (resume at {:.4}s)",
                    plan.resume_position_s()
                ),
                Err(e) => {
                    report.move_failures += 1;
                    format!("fault   move-user {id} -> dev{to} failed ({e}), old config kept")
                }
            }
        }
        FaultKind::Partition { first, count } => {
            if !imperfect {
                return format!(
                    "fault   partition dev{first}+{count} -> skipped (perfect detection)"
                );
            }
            report.partitions += 1;
            let hi = (first + count).min(cfg.devices);
            for d in first..hi {
                det.partition_depth[d] += 1;
                if det.partition_depth[d] == 1 && !down.contains(&d) {
                    server.set_reachable(DeviceId::from_index(d), false);
                    det.unreachable_since.entry(d).or_insert(fault.at_h);
                }
            }
            format!(
                "fault   partition dev{first}+{} -> cut off from the domain server",
                hi - first
            )
        }
        FaultKind::Heal { first, count } => {
            if !imperfect {
                return format!("fault   heal dev{first}+{count} -> skipped (perfect detection)");
            }
            report.heals += 1;
            let hi = (first + count).min(cfg.devices);
            for d in first..hi {
                det.partition_depth[d] = det.partition_depth[d].saturating_sub(1);
                if det.partition_depth[d] == 0 && !down.contains(&d) {
                    server.set_reachable(DeviceId::from_index(d), true);
                    det.unreachable_since.remove(&d);
                }
            }
            format!(
                "fault   heal dev{first}+{} -> rejoined (awaiting heartbeat)",
                hi - first
            )
        }
        FaultKind::JamHeartbeats { device, until_h } => {
            if !imperfect {
                return format!(
                    "fault   jam-heartbeats dev{device} -> skipped (perfect detection)"
                );
            }
            report.heartbeat_jams += 1;
            det.jam_until_h[device] = det.jam_until_h[device].max(until_h);
            format!("fault   jam-heartbeats dev{device} until t={until_h:010.4}h")
        }
        // Domain-server crashes only exist at the federation level; the
        // serial harness runs the one immortal server these events
        // cannot reach (the federated engine intercepts them before
        // this dispatch).
        FaultKind::ShardCrash { shard } => {
            format!("fault   shard-crash shard{shard} -> skipped (serial harness)")
        }
        FaultKind::ShardRestart { shard } => {
            format!("fault   shard-restart shard{shard} -> skipped (serial harness)")
        }
    }
}

/// Folds a [`RecoveryReport`] into the campaign bookkeeping: successful
/// re-placements (full-quality or degraded) count as replacements,
/// parked sessions stay tracked (a later departure reaches them through
/// `stop_session`), dropped ones leave the active maps. Every drop must
/// carry its witnessing error (asserted here).
pub(crate) fn absorb_recovery(
    rec: &RecoveryReport,
    active: &mut BTreeMap<usize, SessionId>,
    by_session: &mut BTreeMap<SessionId, usize>,
    report: &mut FaultReport,
) -> String {
    assert_eq!(
        rec.dropped.len(),
        rec.drop_errors.len(),
        "every drop carries the error witnessing unplaceability"
    );
    for (id, (witness_id, _)) in rec.dropped.iter().zip(&rec.drop_errors) {
        assert_eq!(id, witness_id, "drop witnesses line up");
        let req = by_session
            .remove(id)
            .expect("dropped sessions were tracked");
        active.remove(&req);
    }
    report.replacements += rec.replacements() as u32;
    report.degraded += rec.degraded.len() as u32;
    report.parked += rec.parked.len() as u32;
    report.readmitted += rec.readmitted.len() as u32;
    report.dropped += rec.dropped.len() as u32;
    let mut tail = format!(
        "re-placed {} ({} degraded), parked {}, readmitted {}, dropped {}; affected {}/{}",
        rec.replacements(),
        rec.degraded.len(),
        rec.parked.len(),
        rec.readmitted.len(),
        rec.dropped.len(),
        rec.affected,
        rec.considered,
    );
    for (id, err) in &rec.drop_errors {
        let _ = write!(tail, "; {id} unplaceable ({err})");
    }
    tail
}

/// Counts one recovery pass's O(affected)-vs-O(considered) work into the
/// campaign report (fault arms only — the retry-queue drain is not a
/// pass).
pub(crate) fn count_pass(rec: &RecoveryReport, report: &mut FaultReport) {
    report.recovery_passes += 1;
    report.recovery_considered += rec.considered as u32;
    report.recovery_affected += rec.affected as u32;
}

/// Sweeps every invariant over the server's current state. Returns the
/// first violation found, described.
pub fn check_invariants(server: &DomainServer, down: &BTreeSet<usize>) -> Result<(), String> {
    let env = server.env();
    let capacity = server.capacity();

    // (1) Capacity bounds per device dimension.
    for (d, (residual, cap)) in env.devices().iter().zip(capacity.devices()).enumerate() {
        for (k, (&r, &c)) in residual
            .availability()
            .amounts()
            .iter()
            .zip(cap.availability().amounts())
            .enumerate()
        {
            if r < -EPS {
                return Err(format!("device {d} dim {k}: negative residual {r}"));
            }
            if r > c + EPS {
                return Err(format!(
                    "device {d} dim {k}: residual {r} exceeds capacity {c}"
                ));
            }
        }
    }

    // (2) Conservation: capacity - Σ live charges == residual, per
    // device dimension. Recompute the charges from the live cuts.
    let dim = capacity.device(0).map_or(0, |dev| dev.availability().dim());
    let mut charged = vec![ResourceVector::zero(dim); capacity.device_count()];
    for (_, s) in server.sessions() {
        let graph = &s.configuration.app.graph;
        let cut = &s.configuration.cut;
        for (part, charge) in charged.iter_mut().enumerate().take(cut.parts()) {
            let used = cut
                .part_resource_sum(graph, part)
                .map_err(|e| format!("session cut dimension mismatch: {e}"))?;
            *charge = charge
                .checked_add(&used)
                .map_err(|e| format!("charge accumulation mismatch: {e}"))?;
        }
    }
    for (d, used) in charged.iter().enumerate() {
        let cap = capacity.device(d).expect("index in range").availability();
        let res = env.device(d).expect("index in range").availability();
        for k in 0..dim {
            let expect = cap.amounts()[k] - used.amounts()[k];
            let got = res.amounts()[k];
            if (expect - got).abs() > EPS {
                return Err(format!(
                    "device {d} dim {k}: residual {got} != capacity-charges {expect}"
                ));
            }
        }
    }

    // (3) Link-bandwidth bounds and conservation over the shared pool.
    let mut link_charged: BTreeMap<(usize, usize), f64> = BTreeMap::new();
    for (_, s) in server.sessions() {
        let graph = &s.configuration.app.graph;
        let t = s.configuration.cut.inter_part_throughput(graph);
        for (i, row) in t.iter().enumerate() {
            for (j, &mbps) in row.iter().enumerate().skip(i + 1) {
                let both = mbps + t[j][i];
                if both > 0.0 {
                    *link_charged.entry((i, j)).or_insert(0.0) += both;
                }
            }
        }
    }
    for (i, j, cap_mbps) in capacity.bandwidth().pairs() {
        if !cap_mbps.is_finite() {
            continue;
        }
        let res_mbps = env.bandwidth().get(i, j);
        if res_mbps < -EPS {
            return Err(format!("link {i}-{j}: negative residual {res_mbps}"));
        }
        let used = link_charged.get(&(i, j)).copied().unwrap_or(0.0);
        let expect = cap_mbps - used;
        if (expect - res_mbps).abs() > EPS {
            return Err(format!(
                "link {i}-{j}: residual {res_mbps} != capacity-charges {expect}"
            ));
        }
    }

    // (4) Discovery hygiene: no registered instance is pinned to a down
    // device — crashed hosts' instances must stay unregistered until
    // recovery re-registers them. Checked through the registry's
    // host index, which also exercises it under churn.
    for &d in down {
        if let Some(desc) = server.registry().hosted_on(d).first() {
            return Err(format!(
                "discovery: instance `{}` visible while host dev{d} is down",
                desc.instance_id
            ));
        }
    }

    // (5) Per-session checks: Eq. 1 consistency, pins, crashed devices
    // host nothing.
    for (id, s) in server.sessions() {
        let graph = &s.configuration.app.graph;
        let cut = &s.configuration.cut;
        if !diagnose(graph).is_consistent() {
            return Err(format!("{id}: live graph is not QoS-consistent (Eq. 1)"));
        }
        match cut.respects_pins(graph) {
            Ok(true) => {}
            Ok(false) => return Err(format!("{id}: cut violates a component pin")),
            Err(e) => return Err(format!("{id}: malformed cut ({e})")),
        }
        for &d in down {
            if d < cut.parts() {
                let used = cut
                    .part_resource_sum(graph, d)
                    .map_err(|e| format!("{id}: cut dimension mismatch ({e})"))?;
                if !used.is_zero() {
                    return Err(format!("{id}: components placed on crashed device {d}"));
                }
            }
        }
    }

    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use ubiqos::fault_report::fnv1a;

    /// The event-log fast path must reproduce `format!` byte-for-byte —
    /// every campaign digest depends on it. Sweeps exact representables,
    /// rounding boundaries (which must take the fallback), pathological
    /// values, and a seeded random cloud.
    #[test]
    fn fast_hours_matches_std_formatting() {
        let mut cases: Vec<f64> = vec![
            0.0,
            0.0001,
            0.00005,
            0.00014999999,
            0.12345,
            1.0 / 3.0,
            2.5,
            41.9999999,
            47.99995,
            1000.0,
            99_999.999_9,
            99_999.999_99,
            100_000.0,
            1e12,
            -1.5,
            f64::NAN,
            f64::INFINITY,
        ];
        let mut x = 0x1cdc_2002_u64;
        for _ in 0..20_000 {
            x = splitmix64(x);
            // Hours in [0, 1049): the magnitude every campaign uses.
            cases.push((x % (1 << 20)) as f64 / 1000.0 + (splitmix64(x) % 1000) as f64 * 1e-7);
        }
        for at_h in cases {
            let mut fast = String::new();
            push_hours(&mut fast, at_h);
            assert_eq!(fast, format!("{at_h:010.4}"), "at_h = {at_h:?}");
        }
        let mut s = String::new();
        push_padded_int(&mut s, 7, 4);
        s.push(' ');
        push_padded_int(&mut s, 123_456, 4);
        assert_eq!(s, "0007 123456");
    }

    /// The streamed digest must agree with hashing the rendered log.
    #[test]
    fn streamed_digest_matches_rendered_digest() {
        let mut log = EventLog::default();
        log.push(0, 0.25, "arrive  req0");
        log.push_args(1, 17.333333, format_args!("depart  req{} -> gone", 0));
        assert_eq!(log.digest(), fnv1a(log.render().as_bytes()));
        assert!(log.lines()[1].starts_with("[0001] t=00017.3333h "));
    }

    #[test]
    fn campaign_completes_and_balances() {
        let outcome = run_fault_campaign(&FaultCampaignConfig::default()).expect("no violations");
        let r = &outcome.report;
        assert!(r.session_fates_balance(), "{r:?}");
        assert_eq!(r.arrivals, 120);
        assert!(r.admitted > 0, "some sessions must be admitted");
        assert!(r.invariant_checks >= r.events);
        assert_eq!(r.log_digest, outcome.log.digest());
    }

    #[test]
    fn campaign_is_deterministic() {
        let cfg = FaultCampaignConfig::default();
        let a = run_fault_campaign(&cfg).expect("no violations");
        let b = run_fault_campaign(&cfg).expect("no violations");
        assert_eq!(a.log.render(), b.log.render(), "byte-identical logs");
        assert_eq!(a.report, b.report);
    }

    #[test]
    fn different_seeds_diverge() {
        let a = run_fault_campaign(&FaultCampaignConfig::default()).expect("no violations");
        let b = run_fault_campaign(&FaultCampaignConfig {
            seed: 7,
            ..FaultCampaignConfig::default()
        })
        .expect("no violations");
        assert_ne!(a.log.render(), b.log.render());
        assert_ne!(a.report.log_digest, b.report.log_digest);
    }

    #[test]
    fn faults_actually_fire() {
        let outcome = run_fault_campaign(&FaultCampaignConfig::default()).expect("no violations");
        let r = &outcome.report;
        assert!(r.crashes > 0, "schedule should include crashes: {r}");
        assert!(r.fluctuations > 0, "and fluctuations: {r}");
        assert_eq!(
            r.events,
            r.arrivals * 2 + 40,
            "arrival+departure per request plus every fault"
        );
    }

    #[test]
    fn staged_recovery_drops_fewer_sessions_than_strict() {
        // Dense enough that capacity actually contends: ~4 devices carry
        // several concurrent sessions while faults shrink them.
        let staged_cfg = FaultCampaignConfig {
            devices: 4,
            requests: 400,
            faults: 80,
            scope_max: 2,
            flapping_links: 1,
            ..FaultCampaignConfig::default()
        };
        let strict_cfg = FaultCampaignConfig {
            staged_recovery: false,
            ..staged_cfg.clone()
        };
        let staged = run_fault_campaign(&staged_cfg)
            .expect("no violations")
            .report;
        let strict = run_fault_campaign(&strict_cfg)
            .expect("no violations")
            .report;
        // Same seed, same schedule, same arrival stream: the comparison
        // is at equal admission workload.
        assert_eq!(staged.arrivals, strict.arrivals);
        assert_eq!(staged.crashes, strict.crashes);
        assert!(
            staged.dropped < strict.dropped,
            "staged pipeline must shed fewer sessions: staged {} vs strict {}",
            staged.dropped,
            strict.dropped
        );
        assert!(
            staged.degraded + staged.readmitted > 0,
            "the ladder/retry path must actually fire: {staged:?}"
        );
        // The incremental pass does strictly less work than a full
        // O(sessions) re-placement would have.
        assert!(staged.recovery_affected <= staged.recovery_considered);
        assert!(staged.recovery_passes > 0);
    }

    #[test]
    fn correlated_and_flapping_events_fire() {
        let outcome = run_fault_campaign(&FaultCampaignConfig {
            scope_max: 3,
            flapping_links: 1,
            ..FaultCampaignConfig::default()
        })
        .expect("no violations");
        let r = &outcome.report;
        assert!(
            r.events > r.arrivals * 2 + 40,
            "flapping overlays add events beyond the base schedule: {r}"
        );
        assert!(r.link_fluctuations > 0, "flapping links degrade/restore");
    }

    #[test]
    fn templates_cover_both_pipelines() {
        let (wav, g0) = app_template(0);
        let (mpeg, g1) = app_template(1);
        assert_eq!(wav, "wav-audio");
        assert_eq!(mpeg, "mpeg-audio");
        assert_eq!(g0.spec_count(), 2);
        assert_eq!(g1.spec_count(), 2);
    }

    #[test]
    fn invariants_pass_on_a_fresh_space() {
        let server = build_space(4);
        assert_eq!(check_invariants(&server, &BTreeSet::new()), Ok(()));
    }

    /// An imperfect-detection campaign config with every detector
    /// feature active: a 1 h grace window, partitions, and lossy
    /// heartbeats on top of the usual crash/flap schedule.
    fn imperfect_cfg() -> FaultCampaignConfig {
        FaultCampaignConfig {
            detection_grace_h: 1.0,
            heartbeat_period_h: 0.25,
            partitions: 2,
            partition_max: 2,
            heartbeat_loss: 0.3,
            scope_max: 2,
            ..FaultCampaignConfig::default()
        }
    }

    #[test]
    fn imperfect_detection_converges_and_balances() {
        let outcome = run_fault_campaign(&imperfect_cfg()).expect("no violations");
        let r = &outcome.report;
        assert!(r.session_fates_balance(), "{r:?}");
        assert!(r.partitions > 0, "partition overlay must fire: {r}");
        assert_eq!(r.heals, r.partitions, "every partition heals in-horizon");
        assert!(
            r.suspicions > 0,
            "crashes/partitions must be suspected: {r}"
        );
        assert!(
            r.false_suspected > 0,
            "partitioned-but-healthy devices must be falsely suspected: {r}"
        );
        assert!(
            r.reinstatements > 0,
            "healed/recovered devices must be reinstated by a heartbeat: {r}"
        );
        // Eventual completeness: the convergence drain leaves nothing
        // permanently parked.
        assert_eq!(
            r.parked_at_end, 0,
            "converged schedules park nothing forever: {r}"
        );
    }

    #[test]
    fn imperfect_detection_is_deterministic() {
        let cfg = imperfect_cfg();
        let a = run_fault_campaign(&cfg).expect("no violations");
        let b = run_fault_campaign(&cfg).expect("no violations");
        assert_eq!(a.log.render(), b.log.render(), "byte-identical logs");
        assert_eq!(a.report, b.report);
    }

    #[test]
    fn partitions_without_crashes_only_false_suspect_and_fully_reinstate() {
        // No crashes at all: every suspicion is of a healthy device, and
        // every one must be cleanly undone by a post-heal heartbeat.
        let cfg = FaultCampaignConfig {
            faults: 0,
            detection_grace_h: 0.5,
            heartbeat_period_h: 0.25,
            partitions: 3,
            partition_max: 2,
            ..FaultCampaignConfig::default()
        };
        let r = run_fault_campaign(&cfg).expect("no violations").report;
        assert_eq!(r.crashes, 0);
        assert!(r.suspicions > 0, "partitions outlast the grace window: {r}");
        assert_eq!(
            r.false_suspected, r.suspicions,
            "all suspicions are false: {r}"
        );
        assert_eq!(
            r.reinstatements, r.suspicions,
            "all suspicions are undone: {r}"
        );
        assert_eq!(r.parked_at_end, 0, "{r}");
        assert!(r.session_fates_balance(), "{r:?}");
    }

    #[test]
    fn grace_zero_reproduces_the_perfect_detection_bytes() {
        // The equivalence the CI baseline job pins: detector knobs at
        // their defaults (grace 0, no partitions, no loss) are not
        // merely *similar* to the pre-detector harness — the logs are
        // byte-identical, because no heartbeat events exist, no extra
        // RNG draws happen, and no new log lines fire.
        let cfg = FaultCampaignConfig {
            detection_grace_h: 0.0,
            heartbeat_period_h: 0.125, // ignored when grace is zero
            partitions: 0,
            partition_max: 3, // ignored when partitions is zero
            heartbeat_loss: 0.0,
            ..FaultCampaignConfig::default()
        };
        assert!(cfg.perfect_detection());
        let explicit = run_fault_campaign(&cfg).expect("no violations");
        let default = run_fault_campaign(&FaultCampaignConfig::default()).expect("no violations");
        assert_eq!(explicit.log.render(), default.log.render());
        assert_eq!(explicit.report, default.report);
    }

    #[test]
    fn stale_view_parks_surface_in_the_log_and_report() {
        // A long grace window and plenty of partitions maximize the
        // window where placement acts on a stale view; some arrival or
        // re-placement must hit it.
        let cfg = FaultCampaignConfig {
            requests: 300,
            detection_grace_h: 2.0,
            heartbeat_period_h: 0.5,
            partitions: 4,
            partition_max: 2,
            scope_max: 2,
            ..FaultCampaignConfig::default()
        };
        let outcome = run_fault_campaign(&cfg).expect("no violations");
        let r = &outcome.report;
        assert!(
            r.stale_views > 0,
            "stale-view activations must be witnessed: {r}"
        );
        assert!(r.session_fates_balance(), "{r:?}");
    }
}
