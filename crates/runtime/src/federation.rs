//! Sharded multi-domain federation: the fault-campaign harness scaled
//! out over N [`DomainServer`] shards.
//!
//! PR 1-6 grew a single domain server that admits, degrades, parks,
//! and recovers sessions under a deterministic fault schedule. This
//! module shards that world: the device space splits into contiguous
//! blocks, each owned by one `DomainServer` keyed to a subtree of the
//! shared [`DomainId`] tree (`campus` → optional `wing{w}` → `shard{s}`),
//! and the shards communicate *only* by typed message passing over a
//! [`Transport`] (the in-process [`ChannelTransport`] here; a socket
//! transport can slot in later without touching the protocol).
//!
//! ## Cross-domain discovery
//!
//! An arrival is routed to the shard owning its client device. When
//! that shard cannot compose the application locally (its registry is
//! specialized and lacks the service type), it resolves through the
//! domain tree: candidate shards in
//! [`ServiceRegistry::resolution_order`](ubiqos_discovery::ServiceRegistry::resolution_order)
//! order (same wing first, then the rest) are probed with
//! [`FederationMsg::DiscoverRemote`], and the first shard advertising
//! the missing type admits the session itself.
//!
//! ## Two-phase session handoff
//!
//! A `move-user` whose destination device lives on another shard runs
//! a two-phase protocol: **reserve** on the destination (resources
//! charged there under a lease), then **commit-and-release** on the
//! source after `commit_lag_h` — with exact refunds on every abort
//! path. The protocol stays correct when the detector suspects either
//! shard mid-move:
//!
//! * destination suspected at initiation → the session is *parked*
//!   into the PR-3 retry queue on the source with a witnessed
//!   [`ConfigureError::StaleView`], never half-moved;
//! * destination suspected at decide time → abort, and the
//!   destination's reservation is released by its own lease expiry
//!   (`reserve_grace_h`), witnessed in its log;
//! * source partitioned at decide time → abort; the abort message is
//!   delivered only after the partition heals, and the reservation
//!   lease expires first, cleaning up without it.
//!
//! `commit_lag_h < reserve_grace_h` is enforced, so a commit always
//! races ahead of its own reservation's expiry while both shards are
//! healthy; a *late* commit (delivered after expiry because of a
//! partition) re-admits the session on the destination instead of
//! double-charging it.
//!
//! ## Ordering and determinism
//!
//! All cross-shard events commit in the established total order — the
//! global DES queue pops (virtual time, then scheduling sequence), and
//! every in-flight message carries a sequence number so same-instant
//! deliveries replay in send order. Overlay events (reserve decides,
//! lease expiries, deferred deliveries) only exist when `shards > 1`,
//! so the 1-shard configuration pops the *identical* event sequence as
//! the serial reference and reproduces its log **byte-identically**;
//! per-shard digests at every other shard count are pinned in
//! `tests/federation_equivalence.rs`.
//!
//! ## Reliable delivery over a lossy transport
//!
//! The engine no longer assumes the [`Transport`] is perfect. A
//! reliability sublayer sits between the handlers and the fabric:
//! payloads carry per-(src, dst)-link monotone sequence numbers,
//! receivers dedup + release in order and acknowledge cumulatively
//! (piggybacked on reverse traffic plus standalone
//! [`FederationMsg::Ack`] frames), and unacknowledged payloads
//! retransmit on a virtual-time timer with capped exponential backoff
//! (the [`RetryPolicy`] doubling discipline). Net-layer events live on
//! their **own** DES queue: an application event opens a *turn* that
//! cannot complete while a payload due at its instant is still
//! physically undelivered, so the net queue spins (retransmissions,
//! late arrivals) without ever perturbing the application event order.
//! The consequence is the equivalence contract this module pins: under
//! any seeded loss/dup/reorder/delay schedule (see
//! [`LossyTransport`](crate::transport::LossyTransport)), every shard
//! replays the exact per-shard handler sequence — and therefore the
//! exact log bytes — of the perfect run, while the zero-loss path
//! stays byte-identical to the bare [`ChannelTransport`].

use crate::domain_server::{DomainServer, SessionId};
use crate::durability::{
    assert_recovered_equal, DurabilityConfig, ServerCall, ShardWal, WalRecord,
};
use crate::faults::{
    app_template, apply_fault, build_space, campaign_schedule, check_invariants, count_pass,
    splitmix64, DetectorState, EventLog, FaultCampaignConfig, InvariantViolation,
};
use crate::profiler::StageTimes;
use crate::recovery::RecoveryReport;
use crate::retry_queue::RetryPolicy;
use crate::transport::{
    ChannelTransport, Envelope, LossConfig, LossStats, LossyTransport, Transport,
};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt::Write as _;
use ubiqos::fault_report::fnv1a;
use ubiqos::{ConfigureError, FaultReport};
use ubiqos_composition::DegradationLadder;
use ubiqos_discovery::{DiscoveryQuery, DomainId, ServiceRegistry};
use ubiqos_graph::{AbstractServiceGraph, DeviceId};
use ubiqos_model::QosVector;
use ubiqos_sim::{
    merge_schedules, EventQueue, FaultKind, MobilityWaveConfig, Request, ShardCrashPlan,
    TimedFault, WorkloadConfig,
};

/// Slack for "has this instant passed" comparisons on event times.
const TIME_EPS: f64 = 1e-9;

/// Hard ceiling on a receiver's in-order release buffer. The real
/// bound is the per-link cumulative-ack watermark asserted at every
/// insert; this cap only catches a watermark-accounting bug before it
/// can hide behind unbounded memory.
const REORDER_CAP: u64 = 1 << 16;

/// One scheduled shard-level partition: the federation's failure
/// detector loses contact with `shard` for `[from_h, to_h)` hours.
/// Messages to or from the shard are deferred until the heal; the
/// shard itself keeps running (it is partitioned, not crashed).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ShardPartition {
    /// The shard cut off from its peers.
    pub shard: usize,
    /// Partition start (hours).
    pub from_h: f64,
    /// Heal time (hours, exclusive).
    pub to_h: f64,
}

/// Parameters of one federated campaign.
#[derive(Debug, Clone, PartialEq)]
pub struct FederationConfig {
    /// The underlying fault-campaign config. `base.devices` is the
    /// *global* device count, split contiguously across the shards;
    /// workload, fault schedule, and client draws all derive from
    /// `base.seed` exactly as in the serial harness.
    pub base: FaultCampaignConfig,
    /// Number of `DomainServer` shards (≥ 1; every shard needs ≥ 2
    /// devices). `1` reproduces the serial reference byte-identically.
    pub shards: usize,
    /// Mobility-wave overlay merged into the base fault schedule —
    /// the bursts of `move-user`/`switch-device` events that drag
    /// sessions across shard boundaries.
    pub mobility: MobilityWaveConfig,
    /// Hours between a handoff's reserve and its commit/abort decision
    /// on the source shard. Must be strictly less than
    /// `reserve_grace_h`.
    pub commit_lag_h: f64,
    /// Reservation lease on the destination shard: a reserved-but-not
    /// -committed session is released (exact refund) this many hours
    /// after the reserve, witnessing the source's stale view.
    pub reserve_grace_h: f64,
    /// Scheduled shard-level partitions (the federation-level analog
    /// of the PR-5 device partitions).
    pub shard_partitions: Vec<ShardPartition>,
    /// Grace before a partitioned shard is *suspected* by its peers.
    pub shard_grace_h: f64,
    /// Inter-shard heartbeat period: a healed shard stays suspected
    /// until its next heartbeat multiple.
    pub shard_heartbeat_h: f64,
    /// When `true` (and `shards > 1`), odd shards drop their
    /// space-wide `mpeg-source` so cross-shard discovery has real work
    /// to do. The 1-shard configuration never specializes.
    pub specialize_registry: bool,
    /// Virtual-time retransmission backoff of the reliable-delivery
    /// sublayer: `base * 2^attempts` milliseconds, saturating at the
    /// cap. `max_attempts` is ignored — the reliable layer never gives
    /// up on a payload (loss is bounded away from 1, so retransmission
    /// converges).
    pub retx_policy: RetryPolicy,
    /// Seeded shard-crash overlay merged into the schedule after the
    /// base campaign and mobility waves. `crashes == 0` (the default)
    /// leaves the schedule bit-exact with its crash-free baseline.
    pub crashes: ShardCrashPlan,
    /// Per-shard WAL + snapshot durability knobs. Crash faults require
    /// `durability.enabled`; journaling never touches shard state, so
    /// a crash-free run is byte-identical with durability on or off.
    pub durability: DurabilityConfig,
}

impl Default for FederationConfig {
    fn default() -> Self {
        FederationConfig {
            base: FaultCampaignConfig::default(),
            shards: 1,
            mobility: MobilityWaveConfig {
                devices: FaultCampaignConfig::default().devices,
                ..MobilityWaveConfig::default()
            },
            commit_lag_h: 0.02,
            reserve_grace_h: 0.1,
            shard_partitions: Vec::new(),
            shard_grace_h: 0.05,
            shard_heartbeat_h: 0.25,
            specialize_registry: true,
            // Ten virtual seconds base, ~5.3 virtual minutes cap —
            // transport-scale, far below the session-level lease and
            // retry windows.
            retx_policy: RetryPolicy {
                base_backoff_ms: 10_000.0,
                max_backoff_ms: 320_000.0,
                max_attempts: 0,
            },
            crashes: ShardCrashPlan::default(),
            durability: DurabilityConfig::default(),
        }
    }
}

impl FederationConfig {
    /// The merged fault schedule this config runs: the seeded base
    /// campaign schedule plus the mobility-wave overlay, in the
    /// deterministic merge order. The serial equivalence reference is
    /// `run_fault_campaign_with(&cfg.base, &cfg.schedule())`.
    pub fn schedule(&self) -> Vec<TimedFault> {
        let device_level =
            merge_schedules(&campaign_schedule(&self.base), &self.mobility.generate());
        if self.crashes.crashes == 0 {
            return device_level;
        }
        merge_schedules(&device_level, &self.crashes.generate())
    }

    /// Checks structural validity (shard/device arithmetic, lease
    /// windows, partition windows).
    ///
    /// # Panics
    ///
    /// Panics on a structurally invalid config.
    pub fn validate(&self) {
        assert!(self.shards >= 1, "federation needs at least one shard");
        assert!(
            self.base.devices >= 2 * self.shards,
            "every shard needs at least 2 devices ({} devices / {} shards)",
            self.base.devices,
            self.shards
        );
        assert!(
            self.commit_lag_h > 0.0 && self.commit_lag_h < self.reserve_grace_h,
            "commit lag must fall strictly inside the reservation lease"
        );
        assert!(self.shard_grace_h > 0.0, "shard grace must be positive");
        assert!(
            self.shard_heartbeat_h > 0.0,
            "shard heartbeat period must be positive"
        );
        assert!(
            self.retx_policy.base_backoff_ms > 0.0
                && self.retx_policy.max_backoff_ms >= self.retx_policy.base_backoff_ms,
            "retransmission backoff must be positive and capped above its base"
        );
        if self.mobility.moves > 0 {
            assert!(
                self.mobility.devices <= self.base.devices,
                "mobility destinations must index the global device space"
            );
        }
        for p in &self.shard_partitions {
            assert!(p.shard < self.shards, "partitioned shard out of range");
            assert!(
                p.from_h.is_finite() && p.to_h.is_finite() && p.from_h < p.to_h,
                "shard partition window must be a finite forward interval"
            );
        }
        assert!(
            self.durability.checkpoint_every >= 1,
            "checkpoint cadence must be at least one record"
        );
        if self.crashes.crashes > 0 {
            assert!(
                self.durability.enabled,
                "shard crashes require durability (recovery replays the WAL)"
            );
            assert_eq!(
                self.crashes.shards, self.shards,
                "the crash plan must target the federation's shard count"
            );
        }
    }
}

/// The typed messages shards exchange. A socket transport would carry
/// exactly these (plus serialized session snapshots for `Reserve`,
/// which the in-process transport reads from the shared handoff table).
#[derive(Debug, Clone, PartialEq)]
pub enum FederationMsg {
    /// "Does your registry advertise `service_type`?" — cross-domain
    /// discovery for request `req`, resolved through the domain tree.
    DiscoverRemote {
        /// The service type the origin shard lacks.
        service_type: String,
        /// The workload request being resolved (transcript context).
        req: usize,
    },
    /// Reply to [`FederationMsg::DiscoverRemote`].
    DiscoverFound {
        /// Whether the queried registry advertises the type.
        found: bool,
        /// The request the reply resolves (correlates the reply with
        /// its pending discovery across retransmissions).
        req: usize,
    },
    /// Phase 1: charge resources for handoff `hid` on the destination
    /// under a lease.
    Reserve {
        /// The handoff this reserve belongs to.
        hid: u64,
    },
    /// The destination holds a reservation for `hid`.
    ReserveOk {
        /// The acknowledged handoff.
        hid: u64,
    },
    /// The destination could not place the session.
    ReserveErr {
        /// The declined handoff.
        hid: u64,
        /// Why placement failed (display form of the configure error).
        error: String,
    },
    /// Phase 2: the source released the session; the destination
    /// promotes its reservation to ownership.
    Commit {
        /// The committed handoff.
        hid: u64,
    },
    /// Phase 2 alternative: release the reservation, exact refund.
    Abort {
        /// The aborted handoff.
        hid: u64,
    },
    /// Standalone cumulative acknowledgement frame of the reliable
    /// sublayer. Carries no payload — the acknowledgement itself rides
    /// in the envelope's `ack_upto` field, like the piggyback on every
    /// other message. Never sequenced, never retransmitted, and never
    /// surfaced to the application layer.
    Ack,
}

/// Federation-level counters (all deterministic; serialized into
/// `BENCH_federation.json`).
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FederationStats {
    /// Envelopes sent over the transport.
    pub messages: u64,
    /// Cross-domain discovery probes issued.
    pub remote_discoveries: u64,
    /// Arrivals admitted on a non-home shard after remote discovery.
    pub forwarded: u64,
    /// Two-phase handoffs started.
    pub handoffs_initiated: u64,
    /// Handoffs whose source committed (custody transferred).
    pub handoffs_committed: u64,
    /// Handoffs aborted at or before decide time.
    pub handoffs_aborted: u64,
    /// Moves parked on the source because the destination shard was
    /// suspected at initiation.
    pub handoffs_parked_dest_suspected: u64,
    /// Destination reservations released by their own lease expiry.
    pub reservation_expiries: u64,
    /// Commits delivered after the reservation lease had expired
    /// (re-admitted instead of promoted).
    pub late_commits: u64,
    /// Payload retransmissions issued by the reliable sublayer (zero
    /// on a perfect transport).
    #[serde(default)]
    pub retransmissions: u64,
    /// Duplicate payload copies absorbed before reaching a handler.
    #[serde(default)]
    pub duplicate_drops: u64,
    /// Standalone ack frames sent (one per received payload copy).
    #[serde(default)]
    pub acks_sent: u64,
    /// Payload copies held in a receiver's in-order release buffer
    /// because an earlier sequence number was still missing.
    #[serde(default)]
    pub reorder_buffered: u64,
    /// Deepest any in-order release buffer ever grew.
    #[serde(default)]
    pub reorder_depth_max: u64,
    /// Largest gap (virtual µs) between a payload's send instant and
    /// its physical release by the receiver's reliable layer — how far
    /// behind the perfect run the lossy transport ever dragged a
    /// message before convergence.
    #[serde(default)]
    pub convergence_delay_us_max: u64,
    /// Sum of those per-payload release delays (virtual µs).
    #[serde(default)]
    pub convergence_delay_us_total: u64,
    /// Shard crashes injected (teardown + snapshot/WAL rebuild).
    #[serde(default)]
    pub shard_crashes: u64,
    /// Physical copies eaten by a crash outage window (dead NIC at
    /// transmit or arrival; the reliable layer retransmits them after
    /// the restart).
    #[serde(default)]
    pub crash_copies_dropped: u64,
    /// WAL records appended across all shards (lifetime, counted
    /// across checkpoint truncations).
    #[serde(default)]
    pub wal_records: u64,
    /// WAL records replayed by crash recoveries.
    #[serde(default)]
    pub wal_replayed: u64,
    /// Snapshot restores performed by crash recoveries.
    #[serde(default)]
    pub snapshot_restores: u64,
    /// Per-crash WAL replay depth (records replayed by each recovery,
    /// in crash order) — the deterministic recovery-time distribution
    /// the bench artifact reports.
    #[serde(default)]
    pub wal_replay_depths: Vec<u64>,
    /// Sessions each shard committed *away* (by shard index).
    pub handed_out: Vec<u32>,
    /// Sessions each shard received custody of (by shard index).
    pub handed_in: Vec<u32>,
    /// Arrivals each shard forwarded elsewhere (by shard index).
    pub forwarded_out: Vec<u32>,
    /// Forwarded arrivals each shard resolved (by shard index).
    pub forwarded_in: Vec<u32>,
}

impl FederationStats {
    fn new(shards: usize) -> Self {
        FederationStats {
            handed_out: vec![0; shards],
            handed_in: vec![0; shards],
            forwarded_out: vec![0; shards],
            forwarded_in: vec![0; shards],
            ..FederationStats::default()
        }
    }
}

/// One shard's finished campaign: its report, full event log, and
/// wall-clock stage profile.
#[derive(Debug, Clone)]
pub struct ShardOutcome {
    /// Aggregate counters and the shard's log digest.
    pub report: FaultReport,
    /// The shard's deterministic event log.
    pub log: EventLog,
    /// Wall-clock stage profile (never feeds logs or digests).
    pub stages: StageTimes,
}

/// A finished federated campaign.
#[derive(Debug, Clone)]
pub struct FederationOutcome {
    /// Per-shard outcomes, by shard index.
    pub shards: Vec<ShardOutcome>,
    /// Federation-level counters.
    pub stats: FederationStats,
    /// FNV-1a over the concatenated per-shard log digests (little
    /// -endian) — one number pinning the whole federated run.
    pub combined_digest: u64,
}

impl FederationOutcome {
    /// Per-shard log digests, by shard index.
    pub fn shard_digests(&self) -> Vec<u64> {
        self.shards.iter().map(|s| s.report.log_digest).collect()
    }

    /// The federated fate ledger: per shard, every arrival was
    /// admitted or denied, and every session the shard ever owned
    /// (admitted locally or handed in) completed, dropped, stayed
    /// live or parked, or was handed out — nothing duplicated,
    /// nothing leaked.
    pub fn fates_balance(&self) -> bool {
        self.shards.iter().enumerate().all(|(s, sh)| {
            let r = &sh.report;
            r.arrivals == r.admitted + r.denied
                && r.admitted + self.stats.handed_in[s]
                    == r.completed
                        + r.dropped
                        + r.live_at_end
                        + r.parked_at_end
                        + self.stats.handed_out[s]
        })
    }

    /// Total admitted sessions across the federation.
    pub fn total_admitted(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| u64::from(s.report.admitted))
            .sum()
    }
}

// ---------------------------------------------------------------------
// Engine internals
// ---------------------------------------------------------------------

/// One event in the federated timeline. `Arrival`/`Departure`/`Fault`/
/// `Heartbeat`/`LeaseCheck` are scheduled in the serial harness's exact
/// setup order (so the 1-shard pop sequence is identical); `Decide`,
/// `Expire`, and `Deliver` are federation overlays that only exist at
/// `shards > 1`.
#[derive(Debug, Clone, Copy)]
enum FedEvent {
    Arrival(usize),
    Departure(usize),
    Fault(usize),
    Heartbeat(usize),
    LeaseCheck(usize),
    /// Commit-or-abort decision for handoff `hid` on its source shard.
    Decide(u64),
    /// Reservation lease expiry for handoff `hid` on its destination.
    Expire(u64),
    /// A deferred message for `shard` becomes deliverable.
    Deliver(usize),
}

/// Net-layer events: physical arrivals and retransmission timers.
/// They live on their own DES queue so transport jitter and backoff
/// scheduling can never perturb the application event order (net
/// events consume no application-queue sequence numbers).
#[derive(Debug, Clone, Copy)]
enum NetEvent {
    /// A stashed copy's physical arrival instant has been reached.
    Arrive,
    /// Retransmission timer for payload `seq` on link (`from`, `to`).
    /// Fires as a no-op once the payload has been acknowledged.
    Retx { from: usize, to: usize, seq: u64 },
}

/// One application event being processed. The turn stays open until
/// every payload due at its instant has been physically delivered and
/// handled; while it is blocked, only net events (arrivals,
/// retransmissions) advance. This is what makes every lossy schedule
/// replay the exact per-shard handler sequence of the perfect run.
struct Turn {
    at_h: f64,
    touched: BTreeSet<usize>,
}

/// One unacknowledged payload in a link's retransmission window.
struct TxEntry {
    /// The payload as first transmitted (attempt counter and piggyback
    /// are re-stamped on every copy).
    env: Envelope,
    /// Retransmissions issued so far.
    attempts: u32,
}

/// Per-directed-link reliable-delivery state: the sender's
/// retransmission window and the receiver's dedup/in-order cursor.
#[derive(Default)]
struct LinkState {
    /// Next payload sequence to assign (sender side).
    tx_next_seq: u64,
    /// Unacknowledged payloads by link sequence (sender side).
    tx: BTreeMap<u64, TxEntry>,
    /// Standalone-ack frame counter (sender side; only diversifies
    /// each ack copy's seeded fate — acks are unsequenced).
    ack_next: u64,
    /// Next payload sequence the receiver will release (everything
    /// below it has been released; cumulative acks carry this value).
    rx_expected: u64,
    /// Out-of-order payloads held for in-order release (receiver
    /// side).
    rx_buffer: BTreeMap<u64, Envelope>,
}

/// A cross-domain discovery waiting on its `DiscoverFound` reply. The
/// reply always resolves within the originating arrival's turn (probe
/// legs are only sent between mutually reachable shards, so their
/// delivery times equal the arrival instant), so this map is empty
/// between turns.
struct DiscoveryState {
    /// The shard resolving the arrival.
    origin: usize,
    /// The arrival's application template.
    graph_index: usize,
    /// Global client device id (transcript context).
    client: usize,
    /// The local composition error, replayed verbatim in the denial
    /// line if every candidate declines.
    err: String,
    /// Index into `candidates[origin]` of the probe in flight.
    pos: usize,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum HandoffState {
    Reserving,
    Reserved,
    Committed,
    Aborted,
}

/// What the destination currently holds for a handoff.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Reservation {
    /// Nothing reserved (yet, or ever).
    None,
    /// A live reserved session (raw id), resources charged.
    Live(u64),
    /// The reservation was parked by a destination-side recovery pass.
    Parked(u64),
    /// Released by lease expiry before commit/abort arrived.
    Expired,
    /// Dropped by a destination-side recovery pass (witnessed).
    Dead,
    /// Fully resolved (promoted, released, or declined).
    Done,
}

/// One two-phase session handoff.
struct Handoff {
    req: usize,
    source: usize,
    dest: usize,
    sid: SessionId,
    is_move: bool,
    name: String,
    graph: AbstractServiceGraph,
    qos: QosVector,
    client_local: usize,
    to_global: usize,
    state: HandoffState,
    reservation: Reservation,
    /// The user departed while the session was in flight; the commit
    /// completes it on arrival.
    departed: bool,
}

/// Where a request's session currently lives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Loc {
    /// Owned by `shard` as session `id` (live or parked there).
    At { shard: usize, id: SessionId },
    /// Mid-handoff: released by the source, not yet landed.
    InFlight { hid: u64 },
    /// Resolved (completed, dropped, or denied) on `shard`.
    Gone { shard: usize },
}

/// One shard: a full serial-harness state bundle around its own
/// `DomainServer`. Fields are crate-visible so the durability module
/// can snapshot, replay, and fingerprint them.
pub(crate) struct Shard {
    pub(crate) server: DomainServer,
    /// The base config with `devices` rewritten to this shard's size.
    pub(crate) cfg: FaultCampaignConfig,
    pub(crate) log: EventLog,
    pub(crate) report: FaultReport,
    pub(crate) down: BTreeSet<usize>,
    pub(crate) det: DetectorState,
    pub(crate) active: BTreeMap<usize, SessionId>,
    pub(crate) by_session: BTreeMap<SessionId, usize>,
    pub(crate) last_h: f64,
    pub(crate) idx: usize,
    pub(crate) iterations: u64,
    pub(crate) last_sweep_h: Option<f64>,
}

struct Engine<'a> {
    cfg: &'a FederationConfig,
    schedule: Vec<TimedFault>,
    trace: Vec<Request>,
    shards: Vec<Shard>,
    /// Global index of each shard's first device.
    offsets: Vec<usize>,
    sizes: Vec<usize>,
    /// Per shard: the other shards in domain-tree resolution order.
    candidates: Vec<Vec<usize>>,
    specialized: bool,
    imperfect: bool,
    grace_ms: f64,
    hb_end_h: f64,
    queue: EventQueue<FedEvent>,
    /// Net-layer queue: physical arrivals and retransmission timers.
    netq: EventQueue<NetEvent>,
    transport: Box<dyn Transport>,
    /// Released-but-undelivered envelopes keyed by (deliver-time bits,
    /// send seq) — the deterministic delivery order.
    pending: BTreeMap<(u64, u64), Envelope>,
    /// Sent payloads the receiver's reliable layer has not yet
    /// released, by the same key. An open turn cannot complete while
    /// one of these is due at or before its instant.
    in_flight: BTreeSet<(u64, u64)>,
    /// Per-directed-link reliable-delivery state.
    links: BTreeMap<(usize, usize), LinkState>,
    /// Physically arrived copies awaiting their arrival instant, keyed
    /// by (arrive-time bits, stash order).
    net_rx: BTreeMap<(u64, u64), Envelope>,
    /// Monotone stash counter for `net_rx` (drain-order tiebreak).
    next_stash: u64,
    /// Envelope sequence for standalone ack frames — a disjoint stream
    /// so acks never consume application payload sequence numbers.
    next_net_seq: u64,
    /// Global net-layer clock (max of all popped event times; runs
    /// ahead of a blocked turn's instant while retransmissions spin).
    now_h: f64,
    /// The application event currently being processed, if any.
    turn: Option<Turn>,
    /// Cross-domain discoveries awaiting their reply.
    pending_discovery: BTreeMap<usize, DiscoveryState>,
    next_seq: u64,
    next_hid: u64,
    handoffs: BTreeMap<u64, Handoff>,
    /// (shard, raw reserved id) → handoff — how destination-side
    /// recovery passes recognize reservations.
    res_index: BTreeMap<(usize, u64), u64>,
    /// Request index → current session location.
    directory: BTreeMap<usize, Loc>,
    stats: FederationStats,
    /// Per-shard write-ahead logs (inert when durability is disabled).
    wals: Vec<ShardWal>,
    /// Precomputed `(shard, crash_h, restart_h)` outage windows from
    /// the schedule's `ShardCrash`/`ShardRestart` pairs. During a
    /// window the shard's NIC is dead: physical copies transmitted by
    /// it or arriving at it are eaten (the reliable layer's
    /// retransmissions bridge the outage). Suspicion and delivery
    /// times are *not* derived from these windows — a crash only
    /// drives the failure detector when its window is aligned with a
    /// [`ShardPartition`].
    crash_windows: Vec<(usize, f64, f64)>,
}

/// Builds the shared domain tree into one shard's registry and returns
/// the shard-domain ids (identical across shards — every registry runs
/// the same construction). With ≥ 4 shards the tree gets a wing layer
/// (two shards per wing), so resolution order prefers the same-wing
/// sibling before crossing the campus.
fn build_domain_tree(reg: &mut ServiceRegistry, shards: usize) -> Vec<DomainId> {
    let root = reg.add_domain("campus", None);
    if shards >= 4 {
        let wing_ids: Vec<DomainId> = (0..shards.div_ceil(2))
            .map(|w| reg.add_domain(format!("wing{w}"), Some(root)))
            .collect();
        (0..shards)
            .map(|s| reg.add_domain(format!("shard{s}"), Some(wing_ids[s / 2])))
            .collect()
    } else {
        (0..shards)
            .map(|s| reg.add_domain(format!("shard{s}"), Some(root)))
            .collect()
    }
}

/// Runs a federated campaign with the config-derived schedule.
///
/// # Panics
///
/// Panics on a structurally invalid config (see
/// [`FederationConfig::validate`]).
pub fn run_federation_campaign(
    cfg: &FederationConfig,
) -> Result<FederationOutcome, InvariantViolation> {
    run_federation_campaign_with(cfg, &cfg.schedule())
}

/// Runs a federated campaign against an explicit (already merged)
/// fault schedule, over the in-process [`ChannelTransport`].
pub fn run_federation_campaign_with(
    cfg: &FederationConfig,
    schedule: &[TimedFault],
) -> Result<FederationOutcome, InvariantViolation> {
    let transport = Box::new(ChannelTransport::new(cfg.shards));
    run_federation_campaign_over(cfg, schedule, transport)
}

/// Runs a federated campaign over a seeded lossy transport
/// ([`LossyTransport`] decorating the in-process channels) and returns
/// the outcome together with the injection counters.
///
/// The reliability sublayer guarantees the outcome's per-shard logs,
/// digests, and reports are identical to the perfect-transport run of
/// the same config and schedule — the loss stats (plus the
/// retransmission counters in [`FederationStats`]) are the only
/// visible difference.
pub fn run_federation_campaign_lossy(
    cfg: &FederationConfig,
    schedule: &[TimedFault],
    loss: LossConfig,
) -> Result<(FederationOutcome, LossStats), InvariantViolation> {
    let lossy = LossyTransport::new(Box::new(ChannelTransport::new(cfg.shards)), loss);
    let handle = lossy.stats_handle();
    let outcome = run_federation_campaign_over(cfg, schedule, Box::new(lossy))?;
    let stats = *handle.borrow();
    Ok((outcome, stats))
}

/// Runs a federated campaign over a caller-supplied transport.
pub fn run_federation_campaign_over(
    cfg: &FederationConfig,
    schedule: &[TimedFault],
    transport: Box<dyn Transport>,
) -> Result<FederationOutcome, InvariantViolation> {
    cfg.validate();
    let mut engine = Engine::new(cfg, schedule.to_vec(), transport);
    engine.run()?;
    Ok(engine.finish())
}

impl<'a> Engine<'a> {
    fn new(
        cfg: &'a FederationConfig,
        schedule: Vec<TimedFault>,
        transport: Box<dyn Transport>,
    ) -> Self {
        let n = cfg.shards;
        let base = &cfg.base;
        // Contiguous device blocks: D/N each, first D%N shards one
        // larger.
        let mut sizes = vec![base.devices / n; n];
        for size in sizes.iter_mut().take(base.devices % n) {
            *size += 1;
        }
        let mut offsets = Vec::with_capacity(n);
        let mut acc = 0usize;
        for &s in &sizes {
            offsets.push(acc);
            acc += s;
        }
        let specialized = n > 1 && cfg.specialize_registry;

        let mut shards = Vec::with_capacity(n);
        let mut candidates: Vec<Vec<usize>> = Vec::with_capacity(n);
        for (s, &size) in sizes.iter().enumerate() {
            let mut server = build_space(size);
            server.set_shard_index(s);
            let mut local = base.clone();
            local.devices = size;
            if !local.staged_recovery {
                server.set_ladder(DegradationLadder::strict());
                server.set_retry_policy(RetryPolicy::strict());
            }
            server.set_config_cache(local.config_cache);
            server.set_placement_strategy(local.placement);
            let shard_domains = build_domain_tree(server.registry_mut(), n);
            if candidates.is_empty() {
                // Same tree in every registry — compute the resolution
                // orders once, from the first.
                for (me, &dom) in shard_domains.iter().enumerate() {
                    let order = server.registry().resolution_order(dom);
                    candidates.push(
                        order
                            .iter()
                            .filter_map(|d| shard_domains.iter().position(|x| x == d))
                            .filter(|&x| x != me)
                            .collect(),
                    );
                }
            }
            if specialized && s % 2 == 1 {
                server.registry_mut().unregister("mpeg-source@space");
            }
            shards.push(Shard {
                server,
                log: EventLog::default(),
                report: FaultReport {
                    seed: base.seed,
                    ..FaultReport::default()
                },
                down: BTreeSet::new(),
                det: DetectorState::new(size),
                active: BTreeMap::new(),
                by_session: BTreeMap::new(),
                last_h: 0.0,
                idx: 0,
                iterations: 0,
                last_sweep_h: None,
                cfg: local,
            });
        }

        let workload = WorkloadConfig::overload(base.requests, base.horizon_h);
        let mut rng = StdRng::seed_from_u64(base.seed);
        let trace = workload.generate(&mut rng);

        let imperfect = !base.perfect_detection();
        let grace_ms = base.detection_grace_h * 3_600_000.0;
        let hb_steps = if imperfect {
            assert!(
                base.heartbeat_period_h > 0.0,
                "imperfect detection needs a positive heartbeat period"
            );
            (base.horizon_h / base.heartbeat_period_h).floor() as usize
        } else {
            0
        };
        let hb_end_h = hb_steps as f64 * base.heartbeat_period_h;

        // Exact serial setup order: arrival+departure per request,
        // faults per schedule index, heartbeats device-major over the
        // *global* device index. At one shard this makes the DES pop
        // sequence identical to the reference.
        let mut queue: EventQueue<FedEvent> = EventQueue::new();
        for (i, r) in trace.iter().enumerate() {
            queue.schedule(r.arrival_h, FedEvent::Arrival(i));
            queue.schedule(r.departure_h(), FedEvent::Departure(i));
        }
        for (j, f) in schedule.iter().enumerate() {
            queue.schedule(f.at_h, FedEvent::Fault(j));
        }
        if imperfect {
            for d in 0..base.devices {
                for k in 0..=hb_steps {
                    queue.schedule(k as f64 * base.heartbeat_period_h, FedEvent::Heartbeat(d));
                }
            }
        }

        let stats = FederationStats::new(n);
        // Initial checkpoints (virtual t=0) and the crash outage
        // windows. The schedule is the source of truth for windows —
        // explicitly supplied schedules work exactly like plan-derived
        // ones. A crash without a later matching restart would never
        // let its eaten payloads drain, so it is rejected up front.
        let wals: Vec<ShardWal> = shards
            .iter()
            .map(|sh| ShardWal::new(&cfg.durability, sh))
            .collect();
        let mut crash_windows: Vec<(usize, f64, f64)> = Vec::new();
        for (j, f) in schedule.iter().enumerate() {
            if let FaultKind::ShardCrash { shard } = f.kind {
                assert!(shard < n, "crashed shard out of range");
                assert!(
                    cfg.durability.enabled,
                    "shard crashes require durability (recovery replays the WAL)"
                );
                let restart = schedule[j + 1..].iter().find_map(|g| match g.kind {
                    FaultKind::ShardRestart { shard: rs } if rs == shard => Some(g.at_h),
                    _ => None,
                });
                let to = restart
                    .expect("every shard crash needs a matching later restart to end its outage");
                crash_windows.push((shard, f.at_h, to));
            }
        }
        Engine {
            cfg,
            schedule,
            trace,
            shards,
            offsets,
            sizes,
            candidates,
            specialized,
            imperfect,
            grace_ms,
            hb_end_h,
            queue,
            netq: EventQueue::new(),
            transport,
            pending: BTreeMap::new(),
            in_flight: BTreeSet::new(),
            links: BTreeMap::new(),
            net_rx: BTreeMap::new(),
            next_stash: 0,
            next_net_seq: 0,
            now_h: 0.0,
            turn: None,
            pending_discovery: BTreeMap::new(),
            next_seq: 0,
            next_hid: 0,
            handoffs: BTreeMap::new(),
            res_index: BTreeMap::new(),
            directory: BTreeMap::new(),
            stats,
            wals,
            crash_windows,
        }
    }

    /// Whether shard `s`'s NIC is inside a crash outage window at `t`.
    fn crashed_at(&self, s: usize, t: f64) -> bool {
        self.crash_windows
            .iter()
            .any(|&(cs, from, to)| cs == s && t >= from && t < to)
    }

    /// Journals an event-boundary `Mark` for shard `s`: the full
    /// counter report plus the epilogue cursors, so replay lands
    /// exactly on the current aggregate state.
    fn wal_mark(&mut self, s: usize) {
        if !self.cfg.durability.enabled {
            return;
        }
        let shard = &self.shards[s];
        self.wals[s].push(WalRecord::Mark {
            report: Box::new(shard.report.clone()),
            iterations: shard.iterations,
            last_sweep_h: shard.last_sweep_h,
        });
    }

    /// The shard owning global device `g`.
    fn owner(&self, g: usize) -> usize {
        debug_assert!(g < self.cfg.base.devices, "global device in range");
        match self.offsets.binary_search(&g) {
            Ok(s) => s,
            Err(ins) => ins - 1,
        }
    }

    /// Advances shard `s`'s virtual clock to `at_h` (monotone, exactly
    /// the serial `play` step). Journaled before the clock moves.
    fn advance(&mut self, s: usize, at_h: f64) {
        self.wals[s].push(WalRecord::Advance { at_h });
        let shard = &mut self.shards[s];
        let delta_h = (at_h - shard.last_h).max(0.0);
        shard.server.play(delta_h * 3600.0);
        shard.last_h = at_h;
    }

    /// Appends one line to shard `s`'s log. Journaled before the push
    /// (the line index is implicit in record order).
    fn slog(&mut self, s: usize, at_h: f64, line: &str) {
        if self.cfg.durability.enabled {
            self.wals[s].push(WalRecord::Line {
                at_h,
                line: line.to_owned(),
            });
        }
        let shard = &mut self.shards[s];
        let idx = shard.idx;
        shard.log.push(idx, at_h, line);
        shard.idx += 1;
    }

    /// Whether shard `s` is reachable (no partition window covers `t`).
    fn reachable_shard(&self, s: usize, t: f64) -> bool {
        !self
            .cfg
            .shard_partitions
            .iter()
            .any(|p| p.shard == s && t >= p.from_h && t < p.to_h)
    }

    /// Whether the federation's failure detector suspects shard `s` at
    /// `t`: a partition has lasted past the grace, and the suspicion
    /// holds until the first heartbeat multiple at or after the heal.
    /// Closed-form over the schedule — no DES events, so overlay
    /// timing never perturbs the per-shard event order.
    fn suspected_shard(&self, s: usize, t: f64) -> bool {
        self.cfg.shard_partitions.iter().any(|p| {
            if p.shard != s {
                return false;
            }
            let from = p.from_h + self.cfg.shard_grace_h;
            let to = (p.to_h / self.cfg.shard_heartbeat_h).ceil() * self.cfg.shard_heartbeat_h;
            t >= from && t < to
        })
    }

    /// When a message sent at `at_h` between `from` and `to` becomes
    /// deliverable: the first instant no partition window covers either
    /// endpoint (fixpoint over the windows).
    fn delivery_time(&self, from: usize, to: usize, at_h: f64) -> f64 {
        let mut t = at_h;
        loop {
            let mut moved = false;
            for p in &self.cfg.shard_partitions {
                if (p.shard == from || p.shard == to) && t >= p.from_h && t < p.to_h {
                    t = p.to_h;
                    moved = true;
                }
            }
            if !moved {
                return t;
            }
        }
    }

    /// Sends a payload through the reliable sublayer: stamps the
    /// envelope (app seq, link seq), counts it, registers it in flight
    /// and in the link's retransmission window, transmits the first
    /// copy, arms the retransmission timer, and — when application
    /// -level delivery is deferred by a partition — schedules the
    /// wakeup turn that will deliver it.
    fn send(&mut self, from: usize, to: usize, at_h: f64, msg: FederationMsg) {
        let deliver_at_h = self.delivery_time(from, to, at_h);
        let link = self.links.entry((from, to)).or_default();
        let link_seq = link.tx_next_seq;
        link.tx_next_seq += 1;
        let env = Envelope {
            seq: self.next_seq,
            from,
            to,
            sent_at_h: at_h,
            deliver_at_h,
            link_seq,
            attempt: 0,
            ack_upto: 0, // stamped per copy by `transmit`
            tx_at_h: at_h,
            arrive_at_h: at_h,
            msg,
        };
        self.next_seq += 1;
        self.stats.messages += 1;
        self.in_flight.insert((deliver_at_h.to_bits(), env.seq));
        self.links
            .get_mut(&(from, to))
            .expect("link just ensured")
            .tx
            .insert(
                link_seq,
                TxEntry {
                    env: env.clone(),
                    attempts: 0,
                },
            );
        self.netq.schedule(
            at_h + self.rto_h(0),
            NetEvent::Retx {
                from,
                to,
                seq: link_seq,
            },
        );
        self.transmit(env);
        if deliver_at_h > at_h + TIME_EPS {
            self.queue.schedule(deliver_at_h, FedEvent::Deliver(to));
        }
    }

    /// The retransmission timeout after `attempts` transmissions, in
    /// virtual hours (the [`RetryPolicy`] doubling discipline at
    /// transport scale).
    fn rto_h(&self, attempts: u32) -> f64 {
        self.cfg.retx_policy.backoff_ms(attempts) / 3_600_000.0
    }

    /// Hands one copy to the transport with a fresh cumulative
    /// piggyback, then sweeps whatever the fabric delivered into the
    /// arrival stash.
    fn transmit(&mut self, mut env: Envelope) {
        env.ack_upto = self
            .links
            .entry((env.to, env.from))
            .or_default()
            .rx_expected;
        self.transport.send(env);
        self.collect_transport();
    }

    /// Drains every shard's inbox into the arrival stash, scheduling a
    /// net wakeup for copies that arrive in the future (transport
    /// jitter). Copies already due are processed by the next
    /// `process_net_due` sweep.
    fn collect_transport(&mut self) {
        for s in 0..self.shards.len() {
            for env in self.transport.drain(s) {
                if env.arrive_at_h > self.now_h + TIME_EPS {
                    self.netq.schedule(env.arrive_at_h, NetEvent::Arrive);
                }
                let key = (env.arrive_at_h.to_bits(), self.next_stash);
                self.next_stash += 1;
                self.net_rx.insert(key, env);
            }
        }
    }

    /// Processes every stashed copy whose arrival instant has been
    /// reached, in (arrival time, drain order). Processing may send
    /// acks, which can arrive immediately — the loop re-inspects the
    /// stash each round.
    fn process_net_due(&mut self) {
        loop {
            let key = match self.net_rx.keys().next() {
                Some(&(bits, s)) if f64::from_bits(bits) <= self.now_h + TIME_EPS => (bits, s),
                _ => return,
            };
            let env = self.net_rx.remove(&key).expect("keyed");
            self.on_net_copy(env);
        }
    }

    /// Receiver-side reliable layer for one physically arrived copy:
    /// apply its cumulative piggyback, then dedup / buffer / release
    /// the payload and acknowledge the copy.
    fn on_net_copy(&mut self, env: Envelope) {
        // A copy transmitted while the sender's NIC was down, or
        // arriving while the receiver's was, never existed physically:
        // eaten before the piggyback, exactly like a burst-loss fate.
        // The sender's retransmission timer keeps re-arming through
        // the outage and a post-restart copy converges the link.
        if self.crashed_at(env.from, env.tx_at_h) || self.crashed_at(env.to, env.arrive_at_h) {
            self.stats.crash_copies_dropped += 1;
            return;
        }
        // The piggyback acknowledges the reverse link: `env.from` has
        // released everything below `ack_upto` of what `env.to` sent.
        self.apply_ack(env.to, env.from, env.ack_upto);
        if matches!(env.msg, FederationMsg::Ack) {
            return; // acks are pure control frames
        }
        let (from, to) = (env.from, env.to);
        let link = self.links.entry((from, to)).or_default();
        let seq = env.link_seq;
        if seq < link.rx_expected || link.rx_buffer.contains_key(&seq) {
            // A retransmission of something already released or held:
            // absorb it here — handlers must never see duplicates —
            // and re-ack so the sender can stop retransmitting even if
            // the original ack was lost.
            self.stats.duplicate_drops += 1;
            self.shards[to].report.duplicate_drops += 1;
            self.send_ack(to, from);
            return;
        }
        if seq > link.rx_expected {
            // A gap: hold for in-order release.
            link.rx_buffer.insert(seq, env);
            let depth = link.rx_buffer.len() as u64;
            // Cumulative-ack watermark bound: every buffered sequence
            // is distinct and lies strictly inside
            // (rx_expected, max_buffered], so by pigeonhole the depth
            // can never exceed `max_buffered - rx_expected` — eviction
            // is impossible, the buffer drains purely by in-order
            // release advancing `rx_expected`. The hard cap is a
            // deterministic sanity ceiling far above any reachable
            // depth (a link can hold at most `tx_next_seq -
            // rx_expected` distinct undelivered sequences).
            let hi = *link.rx_buffer.keys().next_back().expect("just inserted");
            assert!(
                depth <= hi - link.rx_expected,
                "reorder buffer broke its cumulative-ack watermark"
            );
            assert!(
                depth <= REORDER_CAP,
                "reorder buffer exceeded its deterministic bound"
            );
            self.stats.reorder_buffered += 1;
            self.stats.reorder_depth_max = self.stats.reorder_depth_max.max(depth);
            let report = &mut self.shards[to].report;
            report.reorder_depth_max = report.reorder_depth_max.max(depth as u32);
            self.send_ack(to, from);
            return;
        }
        // The expected sequence: release it plus any consecutive run
        // it unblocks.
        let mut released = vec![env];
        link.rx_expected += 1;
        while let Some(next) = link.rx_buffer.remove(&link.rx_expected) {
            released.push(next);
            link.rx_expected += 1;
        }
        for env in released {
            let key = (env.deliver_at_h.to_bits(), env.seq);
            let was_in_flight = self.in_flight.remove(&key);
            debug_assert!(was_in_flight, "released payload was in flight");
            let delay_us = ((self.now_h - env.sent_at_h).max(0.0) * 3.6e9) as u64;
            self.stats.convergence_delay_us_total += delay_us;
            self.stats.convergence_delay_us_max = self.stats.convergence_delay_us_max.max(delay_us);
            self.pending.insert(key, env);
        }
        self.send_ack(to, from);
    }

    /// Clears acknowledged payloads from the (`src`, `dst`) link's
    /// retransmission window, recording each payload's final attempt
    /// count into the sender's stage profile.
    fn apply_ack(&mut self, src: usize, dst: usize, upto: u64) {
        let Some(link) = self.links.get_mut(&(src, dst)) else {
            return;
        };
        let done: Vec<u64> = link.tx.range(..upto).map(|(&s, _)| s).collect();
        let mut attempts = Vec::with_capacity(done.len());
        for seq in done {
            attempts.push(link.tx.remove(&seq).expect("keyed").attempts);
        }
        for a in attempts {
            self.shards[src].server.record_retransmits(u64::from(a));
        }
    }

    /// Sends a standalone cumulative ack frame from `rx` back to `tx`
    /// for the (`tx`, `rx`) payload link. Pure net-layer traffic: not
    /// sequenced, not retransmitted, never delivered to handlers, and
    /// excluded from the application message count.
    fn send_ack(&mut self, rx: usize, tx: usize) {
        self.stats.acks_sent += 1;
        let link = self.links.entry((rx, tx)).or_default();
        let link_seq = link.ack_next;
        link.ack_next += 1;
        let ack_upto = self.links.entry((tx, rx)).or_default().rx_expected;
        let env = Envelope {
            seq: self.next_net_seq,
            from: rx,
            to: tx,
            sent_at_h: self.now_h,
            deliver_at_h: self.now_h,
            link_seq,
            attempt: 0,
            ack_upto,
            tx_at_h: self.now_h,
            arrive_at_h: self.now_h,
            msg: FederationMsg::Ack,
        };
        self.next_net_seq += 1;
        self.transport.send(env);
        self.collect_transport();
    }

    /// Handles one net-layer event, then sweeps the stash.
    fn on_net(&mut self, ev: NetEvent) {
        if let NetEvent::Retx { from, to, seq } = ev {
            let due = self
                .links
                .get_mut(&(from, to))
                .and_then(|l| l.tx.get_mut(&seq))
                .map(|entry| {
                    entry.attempts += 1;
                    let mut env = entry.env.clone();
                    env.attempt = entry.attempts;
                    (env, entry.attempts)
                });
            if let Some((mut env, attempts)) = due {
                // Still unacknowledged: retransmit with a fresh copy
                // stamp and arm the next (backed-off) timer.
                env.tx_at_h = self.now_h;
                env.arrive_at_h = self.now_h;
                self.stats.retransmissions += 1;
                self.shards[from].report.retransmissions += 1;
                self.transmit(env);
                self.netq.schedule(
                    self.now_h + self.rto_h(attempts),
                    NetEvent::Retx { from, to, seq },
                );
            }
        }
        self.process_net_due();
    }

    fn run(&mut self) -> Result<(), InvariantViolation> {
        self.run_events()?;
        self.finalize_shards()
    }

    /// The two-queue main loop. Application events open *turns*;
    /// net-layer events (arrivals, retransmission timers) interleave in
    /// global time order. A turn blocked on an undelivered payload
    /// yields to the net queue until the payload physically lands —
    /// application events are never popped past a blocked turn, so the
    /// application event order is exactly the perfect run's.
    fn run_events(&mut self) -> Result<(), InvariantViolation> {
        loop {
            self.resume_turn()?;
            if self.turn.is_some() {
                // Blocked on a payload due at this turn's instant:
                // only net progress (a retransmission getting through)
                // can release it.
                let (t, ev) = self
                    .netq
                    .pop()
                    .expect("blocked turn starves: no net event can release its payload");
                self.now_h = self.now_h.max(t);
                self.on_net(ev);
                continue;
            }
            let pop_net = match (self.netq.peek_time(), self.queue.peek_time()) {
                (Some(tn), Some(ta)) => tn <= ta,
                (Some(_), None) => true,
                (None, Some(_)) => false,
                (None, None) => return Ok(()),
            };
            if pop_net {
                let (t, ev) = self.netq.pop().expect("peeked");
                self.now_h = self.now_h.max(t);
                self.on_net(ev);
            } else {
                let (at_h, event) = self.queue.pop().expect("peeked");
                self.now_h = self.now_h.max(at_h);
                self.begin_turn(at_h, event);
            }
        }
    }

    /// Dispatches one application event and opens its turn. The turn
    /// is pumped (and closed) by `resume_turn` on the next loop round.
    fn begin_turn(&mut self, at_h: f64, event: FedEvent) {
        debug_assert!(self.turn.is_none(), "turns are strictly sequential");
        let mut touched: BTreeSet<usize> = BTreeSet::new();
        match event {
            FedEvent::Arrival(i) => self.on_arrival(i, at_h, &mut touched),
            FedEvent::Departure(i) => self.on_departure(i, at_h, &mut touched),
            FedEvent::Fault(j) => self.on_fault(j, at_h, &mut touched),
            FedEvent::Heartbeat(g) => self.on_heartbeat(g, at_h, &mut touched),
            FedEvent::LeaseCheck(g) => self.on_lease_check(g, at_h, &mut touched),
            FedEvent::Decide(hid) => self.on_decide(hid, at_h, &mut touched),
            FedEvent::Expire(hid) => self.on_expire(hid, at_h, &mut touched),
            FedEvent::Deliver(to) => {
                // The turn's pump delivers everything due.
                debug_assert!(to < self.shards.len(), "deliver target in range");
            }
        }
        self.turn = Some(Turn { at_h, touched });
    }

    /// Pumps the open turn, if any; when it completes, runs the serial
    /// per-event epilogue for every shard it touched.
    fn resume_turn(&mut self) -> Result<(), InvariantViolation> {
        let Some(mut turn) = self.turn.take() else {
            return Ok(());
        };
        if self.pump_turn(&mut turn) {
            for s in std::mem::take(&mut turn.touched) {
                self.finish_event(s, turn.at_h)?;
            }
        } else {
            self.turn = Some(turn);
        }
        Ok(())
    }

    /// Delivers everything due at the turn's instant in the global
    /// (deliver time, send seq) order, gated on physical delivery.
    /// Returns `false` while a payload due at this instant is still in
    /// flight — the turn then waits for net progress.
    fn pump_turn(&mut self, turn: &mut Turn) -> bool {
        loop {
            self.process_net_due();
            if let Some(&(bits, seq)) = self.pending.keys().next() {
                if f64::from_bits(bits) <= turn.at_h + TIME_EPS {
                    if self
                        .in_flight
                        .first()
                        .is_some_and(|&flight| flight < (bits, seq))
                    {
                        // An earlier payload in the global order has
                        // not physically landed yet.
                        return false;
                    }
                    let env = self.pending.remove(&(bits, seq)).expect("keyed");
                    self.deliver(env, turn.at_h, &mut turn.touched);
                    continue;
                }
            }
            // Nothing released is due; the turn can only close once no
            // in-flight payload is due at (or before) its instant.
            return !self
                .in_flight
                .first()
                .is_some_and(|&(bits, _)| f64::from_bits(bits) <= turn.at_h + TIME_EPS);
        }
    }

    /// Routes an arrival: serial client draw over the *global* up
    /// list, admission on the owner shard, cross-domain forwarding
    /// when a specialized registry lacks the service type.
    fn on_arrival(&mut self, i: usize, at_h: f64, touched: &mut BTreeSet<usize>) {
        let req = self.trace[i];
        let mut up: Vec<usize> = Vec::new();
        for (s, sh) in self.shards.iter().enumerate() {
            let off = self.offsets[s];
            up.extend(
                (0..self.sizes[s])
                    .filter(|d| !sh.down.contains(d))
                    .map(|d| off + d),
            );
        }
        let client = up[(splitmix64(self.cfg.base.seed ^ i as u64) % up.len() as u64) as usize];
        let a = self.owner(client);
        let client_local = client - self.offsets[a];
        self.advance(a, at_h);
        touched.insert(a);
        self.shards[a].report.events += 1;
        let (name, graph) = app_template(req.graph_index);
        if self.cfg.durability.enabled {
            self.wals[a].push(WalRecord::Call(ServerCall::Start {
                name: format!("{name}-{i}"),
                graph: graph.clone(),
                qos: QosVector::new(),
                client_local,
            }));
        }
        let outcome = self.shards[a].server.start_session(
            format!("{name}-{i}"),
            graph,
            QosVector::new(),
            DeviceId::from_index(client_local),
        );
        match outcome {
            Ok(id) => {
                let shard = &mut self.shards[a];
                shard.report.arrivals += 1;
                shard.report.admitted += 1;
                shard.active.insert(i, id);
                shard.by_session.insert(id, i);
                self.wals[a].push(WalRecord::Track {
                    req: i,
                    sid: id.raw(),
                });
                self.directory.insert(i, Loc::At { shard: a, id });
                self.slog(
                    a,
                    at_h,
                    &format!("arrive  req{i} {name} client=dev{client} -> admitted as {id}"),
                );
            }
            Err(e) if matches!(e, ConfigureError::StaleView { .. }) => {
                let (_, graph) = app_template(req.graph_index);
                if self.cfg.durability.enabled {
                    self.wals[a].push(WalRecord::Call(ServerCall::Park {
                        name: format!("{name}-{i}"),
                        graph: graph.clone(),
                        qos: QosVector::new(),
                        client_local,
                        err: e.clone(),
                    }));
                }
                let shard = &mut self.shards[a];
                shard.report.arrivals += 1;
                shard.report.admitted += 1;
                shard.report.parked += 1;
                let id = shard.server.park_arrival(
                    format!("{name}-{i}"),
                    graph,
                    QosVector::new(),
                    DeviceId::from_index(client_local),
                    None,
                    e,
                );
                shard.active.insert(i, id);
                shard.by_session.insert(id, i);
                self.wals[a].push(WalRecord::Track {
                    req: i,
                    sid: id.raw(),
                });
                self.directory.insert(i, Loc::At { shard: a, id });
                self.slog(
                    a,
                    at_h,
                    &format!(
                        "arrive  req{i} {name} client=dev{client} -> parked on stale view as {id}"
                    ),
                );
            }
            Err(e) => {
                // Cross-domain resolution: only for composition
                // failures on a specialized, reachable shard. The
                // probe chain runs as asynchronous message round
                // trips; every leg connects two mutually-reachable
                // shards, so the whole chain resolves inside this
                // arrival's turn and the deny below is the only
                // synchronous fallback (nothing probe-able at all).
                let forwardable = self.specialized
                    && matches!(e, ConfigureError::Composition(_))
                    && self.reachable_shard(a, at_h);
                if !forwardable || !self.start_discovery(a, i, req.graph_index, client, at_h, &e) {
                    let shard = &mut self.shards[a];
                    shard.report.arrivals += 1;
                    shard.report.denied += 1;
                    self.directory.insert(i, Loc::Gone { shard: a });
                    self.slog(
                        a,
                        at_h,
                        &format!("arrive  req{i} {name} client=dev{client} -> denied ({e})"),
                    );
                }
            }
        }
    }

    /// Starts a cross-shard discovery chain for request `i`: sends a
    /// `DiscoverRemote` probe to the first probe-able candidate shard
    /// (domain-tree resolution order) and parks the continuation in
    /// `pending_discovery` until the `DiscoverFound` reply lands.
    /// Returns `false` if no candidate is probe-able — the caller
    /// denies the arrival immediately, exactly as the old synchronous
    /// resolution did.
    fn start_discovery(
        &mut self,
        a: usize,
        i: usize,
        graph_index: usize,
        client: usize,
        at_h: f64,
        err: &ConfigureError,
    ) -> bool {
        let candidates = self.candidates[a].clone();
        for (pos, &b) in candidates.iter().enumerate() {
            if !self.reachable_shard(b, at_h) || self.suspected_shard(b, at_h) {
                continue;
            }
            self.stats.remote_discoveries += 1;
            self.pending_discovery.insert(
                i,
                DiscoveryState {
                    origin: a,
                    graph_index,
                    client,
                    err: format!("{err}"),
                    pos,
                },
            );
            self.send(
                a,
                b,
                at_h,
                FederationMsg::DiscoverRemote {
                    service_type: probe_type(graph_index).to_owned(),
                    req: i,
                },
            );
            return true;
        }
        false
    }

    /// Advances a discovery chain past candidate position `st.pos`
    /// after a miss: probes the next probe-able candidate (re-parking
    /// the continuation) or returns the state back to the caller when
    /// the candidate list is exhausted, so it can deny the arrival.
    fn probe_next(
        &mut self,
        req: usize,
        mut st: DiscoveryState,
        at_h: f64,
    ) -> Option<DiscoveryState> {
        let candidates = self.candidates[st.origin].clone();
        for (pos, &b) in candidates.iter().enumerate().skip(st.pos + 1) {
            if !self.reachable_shard(b, at_h) || self.suspected_shard(b, at_h) {
                continue;
            }
            self.stats.remote_discoveries += 1;
            st.pos = pos;
            let origin = st.origin;
            let graph_index = st.graph_index;
            self.pending_discovery.insert(req, st);
            self.send(
                origin,
                b,
                at_h,
                FederationMsg::DiscoverRemote {
                    service_type: probe_type(graph_index).to_owned(),
                    req,
                },
            );
            return None;
        }
        Some(st)
    }

    /// Lands a `DiscoverFound` reply on the origin shard: forwards the
    /// arrival to the advertising shard on a hit, probes the next
    /// candidate on a miss, and denies with the original composition
    /// error once the candidate list runs dry.
    fn deliver_discover_found(
        &mut self,
        b: usize,
        a: usize,
        found: bool,
        req: usize,
        at_h: f64,
        touched: &mut BTreeSet<usize>,
    ) {
        self.advance(a, at_h);
        touched.insert(a);
        let st = self
            .pending_discovery
            .remove(&req)
            .expect("a DiscoverFound reply always has a parked continuation");
        debug_assert_eq!(st.origin, a, "the reply returns to the probing shard");
        let (name, _) = app_template(st.graph_index);
        let client = st.client;
        if found {
            let probe = probe_type(st.graph_index);
            self.stats.forwarded += 1;
            self.stats.forwarded_out[a] += 1;
            self.stats.forwarded_in[b] += 1;
            self.slog(
                a,
                at_h,
                &format!(
                    "arrive  req{req} {name} client=dev{client} -> forwarded to shard{b} (no local {probe})"
                ),
            );
            self.admit_forwarded(req, st.graph_index, a, b, at_h, touched);
        } else if let Some(st) = self.probe_next(req, st, at_h) {
            let err = st.err;
            let shard = &mut self.shards[a];
            shard.report.arrivals += 1;
            shard.report.denied += 1;
            self.directory.insert(req, Loc::Gone { shard: a });
            self.slog(
                a,
                at_h,
                &format!("arrive  req{req} {name} client=dev{client} -> denied ({err})"),
            );
        }
    }

    /// Admits a forwarded arrival on shard `b`: its own deterministic
    /// client draw over its local up list, then the serial admission
    /// arms with a `via shard{a}` transcript tag.
    fn admit_forwarded(
        &mut self,
        i: usize,
        graph_index: usize,
        a: usize,
        b: usize,
        at_h: f64,
        touched: &mut BTreeSet<usize>,
    ) {
        self.advance(b, at_h);
        touched.insert(b);
        let b_up: Vec<usize> = (0..self.sizes[b])
            .filter(|d| !self.shards[b].down.contains(d))
            .collect();
        debug_assert!(!b_up.is_empty(), "per-shard crash skips keep one device up");
        let client_local =
            b_up[(splitmix64(self.cfg.base.seed ^ i as u64) % b_up.len() as u64) as usize];
        let client = self.offsets[b] + client_local;
        let (name, graph) = app_template(graph_index);
        if self.cfg.durability.enabled {
            self.wals[b].push(WalRecord::Call(ServerCall::Start {
                name: format!("{name}-{i}"),
                graph: graph.clone(),
                qos: QosVector::new(),
                client_local,
            }));
        }
        let outcome = self.shards[b].server.start_session(
            format!("{name}-{i}"),
            graph,
            QosVector::new(),
            DeviceId::from_index(client_local),
        );
        match outcome {
            Ok(id) => {
                let shard = &mut self.shards[b];
                shard.report.arrivals += 1;
                shard.report.admitted += 1;
                shard.active.insert(i, id);
                shard.by_session.insert(id, i);
                self.wals[b].push(WalRecord::Track {
                    req: i,
                    sid: id.raw(),
                });
                self.directory.insert(i, Loc::At { shard: b, id });
                self.slog(
                    b,
                    at_h,
                    &format!(
                        "arrive  req{i} {name} client=dev{client} via shard{a} -> admitted as {id}"
                    ),
                );
            }
            Err(e) if matches!(e, ConfigureError::StaleView { .. }) => {
                let (_, graph) = app_template(graph_index);
                if self.cfg.durability.enabled {
                    self.wals[b].push(WalRecord::Call(ServerCall::Park {
                        name: format!("{name}-{i}"),
                        graph: graph.clone(),
                        qos: QosVector::new(),
                        client_local,
                        err: e.clone(),
                    }));
                }
                let shard = &mut self.shards[b];
                shard.report.arrivals += 1;
                shard.report.admitted += 1;
                shard.report.parked += 1;
                let id = shard.server.park_arrival(
                    format!("{name}-{i}"),
                    graph,
                    QosVector::new(),
                    DeviceId::from_index(client_local),
                    None,
                    e,
                );
                shard.active.insert(i, id);
                shard.by_session.insert(id, i);
                self.wals[b].push(WalRecord::Track {
                    req: i,
                    sid: id.raw(),
                });
                self.directory.insert(i, Loc::At { shard: b, id });
                self.slog(
                    b,
                    at_h,
                    &format!(
                        "arrive  req{i} {name} client=dev{client} via shard{a} -> parked on stale view as {id}"
                    ),
                );
            }
            Err(e) => {
                let shard = &mut self.shards[b];
                shard.report.arrivals += 1;
                shard.report.denied += 1;
                self.directory.insert(i, Loc::Gone { shard: b });
                self.slog(
                    b,
                    at_h,
                    &format!(
                        "arrive  req{i} {name} client=dev{client} via shard{a} -> denied ({e})"
                    ),
                );
            }
        }
    }

    /// Routes a departure through the directory to the owning shard
    /// (serial arm verbatim); a mid-handoff departure is deferred to
    /// the commit.
    fn on_departure(&mut self, i: usize, at_h: f64, touched: &mut BTreeSet<usize>) {
        let s = match self.directory.get(&i) {
            Some(Loc::At { shard, .. }) | Some(Loc::Gone { shard }) => *shard,
            Some(Loc::InFlight { hid }) => {
                let hid = *hid;
                let a = self.handoffs[&hid].source;
                self.advance(a, at_h);
                touched.insert(a);
                self.shards[a].report.events += 1;
                self.handoffs
                    .get_mut(&hid)
                    .expect("tracked handoff")
                    .departed = true;
                self.slog(
                    a,
                    at_h,
                    &format!("depart  req{i} -> in flight (h{hid}, deferred to commit)"),
                );
                return;
            }
            // Denied-before-tracking can't happen (every arrival sets
            // the directory), but route defensively to the home shard.
            None => 0,
        };
        self.advance(s, at_h);
        touched.insert(s);
        let shard = &mut self.shards[s];
        shard.report.events += 1;
        match shard.active.remove(&i) {
            Some(id) => {
                shard.by_session.remove(&id);
                let stopped = shard.server.stop_session(id);
                debug_assert!(stopped.is_some(), "active map tracks live sessions");
                shard.report.completed += 1;
                self.wals[s].push(WalRecord::Untrack {
                    req: i,
                    sid: id.raw(),
                });
                self.wals[s].push(WalRecord::Call(ServerCall::Stop { sid: id.raw() }));
                self.directory.insert(i, Loc::Gone { shard: s });
                self.slog(s, at_h, &format!("depart  req{i} -> completed ({id})"));
            }
            None => {
                self.slog(s, at_h, &format!("depart  req{i} -> already gone"));
            }
        }
    }

    /// Dispatches one scheduled fault: single-device kinds remap to
    /// the owner shard's local index and replay the serial arm; scoped
    /// kinds split into per-shard sub-scopes; moves and switches pick
    /// over the global live-session list and become two-phase handoffs
    /// when they cross a shard boundary.
    fn on_fault(&mut self, j: usize, at_h: f64, touched: &mut BTreeSet<usize>) {
        let fault = self.schedule[j];
        match fault.kind {
            FaultKind::Crash { device }
            | FaultKind::Recover { device }
            | FaultKind::Fluctuate { device, .. }
            | FaultKind::JamHeartbeats { device, .. } => {
                let s = self.owner(device);
                let local = device - self.offsets[s];
                let kind = match fault.kind {
                    FaultKind::Crash { .. } => FaultKind::Crash { device: local },
                    FaultKind::Recover { .. } => FaultKind::Recover { device: local },
                    FaultKind::Fluctuate { factor, .. } => FaultKind::Fluctuate {
                        device: local,
                        factor,
                    },
                    FaultKind::JamHeartbeats { until_h, .. } => FaultKind::JamHeartbeats {
                        device: local,
                        until_h,
                    },
                    _ => unreachable!(),
                };
                self.apply_local_fault(
                    s,
                    TimedFault {
                        at_h: fault.at_h,
                        kind,
                    },
                    at_h,
                    touched,
                );
            }
            FaultKind::DegradeLink { a, b, factor } => {
                let sa = self.owner(a);
                let sb = self.owner(b);
                if sa == sb {
                    let off = self.offsets[sa];
                    let kind = FaultKind::DegradeLink {
                        a: a - off,
                        b: b - off,
                        factor,
                    };
                    self.apply_local_fault(
                        sa,
                        TimedFault {
                            at_h: fault.at_h,
                            kind,
                        },
                        at_h,
                        touched,
                    );
                } else {
                    // No inter-shard links exist in the sharded space;
                    // the fault is observed (and logged) by the lower
                    // endpoint's owner.
                    let s = sa.min(sb);
                    self.advance(s, at_h);
                    touched.insert(s);
                    self.shards[s].report.events += 1;
                    self.slog(
                        s,
                        at_h,
                        &format!(
                            "fault   degrade-link dev{a}-dev{b} -> skipped (cross-shard link)"
                        ),
                    );
                }
            }
            FaultKind::CrashScope { first, count }
            | FaultKind::Partition { first, count }
            | FaultKind::Heal { first, count } => {
                let lo = first;
                let hi = first + count;
                let mut any = false;
                for s in 0..self.shards.len() {
                    let s_lo = lo.max(self.offsets[s]);
                    let s_hi = hi.min(self.offsets[s] + self.sizes[s]);
                    if s_lo >= s_hi {
                        continue;
                    }
                    any = true;
                    let off = self.offsets[s];
                    let kind = match fault.kind {
                        FaultKind::CrashScope { .. } => FaultKind::CrashScope {
                            first: s_lo - off,
                            count: s_hi - s_lo,
                        },
                        FaultKind::Partition { .. } => FaultKind::Partition {
                            first: s_lo - off,
                            count: s_hi - s_lo,
                        },
                        FaultKind::Heal { .. } => FaultKind::Heal {
                            first: s_lo - off,
                            count: s_hi - s_lo,
                        },
                        _ => unreachable!(),
                    };
                    self.apply_local_fault(
                        s,
                        TimedFault {
                            at_h: fault.at_h,
                            kind,
                        },
                        at_h,
                        touched,
                    );
                }
                debug_assert!(any, "scoped faults index the device space");
            }
            FaultKind::SwitchDevice { pick, to } => {
                self.on_move(pick, to, false, at_h, touched);
            }
            FaultKind::MoveUser { pick, to } => {
                self.on_move(pick, to, true, at_h, touched);
            }
            FaultKind::ShardCrash { shard } => {
                self.crash_shard(shard);
            }
            FaultKind::ShardRestart { .. } => {
                // The restart instant only closes the NIC-dead window
                // (already derived from the schedule in `new`); the
                // rebuild happened at the crash instant.
            }
        }
    }

    /// Tears down shard `s` at the crash instant and rebuilds it from
    /// its last snapshot plus WAL replay, asserting the rebuild is
    /// field-for-field identical before swapping it in. The crash does
    /// NOT advance the shard clock, log a line, or count an event —
    /// recovery is invisible in the event log by construction, so the
    /// digest-pinned equivalence contract stays two-sided (any replay
    /// bug trips the hard assert here and the digest gate downstream).
    fn crash_shard(&mut self, s: usize) {
        // Counters first, so the crash-boundary `Mark` (and therefore
        // the rebuilt report) already carries this crash.
        self.shards[s].report.shard_crashes += 1;
        self.wal_mark(s);
        let replayed = self.wals[s].tail.len() as u64;
        let rebuilt = self.wals[s].recover(self.grace_ms);
        assert_recovered_equal(&self.shards[s], &rebuilt, s);
        self.shards[s] = rebuilt;
        self.shards[s].report.wal_replayed += replayed as u32;
        self.shards[s].report.snapshot_restores += 1;
        self.stats.shard_crashes += 1;
        self.stats.wal_replayed += replayed;
        self.stats.snapshot_restores += 1;
        self.stats.wal_replay_depths.push(replayed);
        // Fresh checkpoint: the post-recovery state (with the counter
        // bumps above) becomes the new replay base.
        self.wals[s].checkpoint(&self.shards[s]);
    }

    /// Replays the serial fault arm on shard `s` with a shard-local
    /// fault.
    fn apply_local_fault(
        &mut self,
        s: usize,
        fault: TimedFault,
        at_h: f64,
        touched: &mut BTreeSet<usize>,
    ) {
        self.advance(s, at_h);
        touched.insert(s);
        self.wals[s].push(WalRecord::Fault(fault));
        let shard = &mut self.shards[s];
        shard.report.events += 1;
        let line = apply_fault(
            &mut shard.server,
            &fault,
            &shard.cfg,
            &mut shard.down,
            &mut shard.det,
            &mut shard.active,
            &mut shard.by_session,
            &mut shard.report,
        );
        self.slog(s, at_h, &line);
    }

    /// The `move-user` / `switch-device` arm over the federated
    /// session space: serial pick semantics (shard-major live-session
    /// list), local execution when source and destination share a
    /// shard, two-phase handoff otherwise.
    fn on_move(
        &mut self,
        pick: u64,
        to: usize,
        is_move: bool,
        at_h: f64,
        touched: &mut BTreeSet<usize>,
    ) {
        let label = if is_move {
            "move-user"
        } else {
            "switch-device"
        };
        let mut ids: Vec<(usize, SessionId)> = Vec::new();
        for (s, sh) in self.shards.iter().enumerate() {
            ids.extend(
                sh.by_session
                    .keys()
                    .copied()
                    .filter(|&id| sh.server.session(id).is_some())
                    .map(|id| (s, id)),
            );
        }
        if ids.is_empty() {
            let s = self.owner(to);
            self.advance(s, at_h);
            touched.insert(s);
            self.shards[s].report.events += 1;
            self.slog(
                s,
                at_h,
                &format!("fault   {label} -> skipped (no live session)"),
            );
            return;
        }
        let (a, id) = ids[(pick % ids.len() as u64) as usize];
        let b = self.owner(to);
        self.advance(a, at_h);
        touched.insert(a);
        self.shards[a].report.events += 1;
        if self.handoffs.values().any(|h| {
            h.source == a
                && h.sid == id
                && !matches!(h.state, HandoffState::Committed | HandoffState::Aborted)
        }) {
            self.slog(
                a,
                at_h,
                &format!("fault   {label} {id} -> skipped (handoff in progress)"),
            );
            return;
        }
        if a == b {
            // Serial arm verbatim (global `to` == local index + shard
            // offset; identical text at one shard).
            let local_to = to - self.offsets[a];
            if self.cfg.durability.enabled {
                let call = if is_move {
                    ServerCall::Move {
                        sid: id.raw(),
                        to_local: local_to,
                    }
                } else {
                    ServerCall::Switch {
                        sid: id.raw(),
                        to_local: local_to,
                    }
                };
                self.wals[a].push(WalRecord::Call(call));
            }
            let shard = &mut self.shards[a];
            if is_move {
                shard.report.moves += 1;
            } else {
                shard.report.switches += 1;
            }
            let result = if is_move {
                shard
                    .server
                    .move_user(id, None, DeviceId::from_index(local_to))
            } else {
                shard
                    .server
                    .switch_device(id, DeviceId::from_index(local_to))
            };
            let line = match result {
                Ok(plan) => format!(
                    "fault   {label} {id} -> dev{to} (resume at {:.4}s)",
                    plan.resume_position_s()
                ),
                Err(e) => {
                    if is_move {
                        shard.report.move_failures += 1;
                    } else {
                        shard.report.switch_failures += 1;
                    }
                    format!("fault   {label} {id} -> dev{to} failed ({e}), old config kept")
                }
            };
            self.slog(a, at_h, &line);
        } else {
            self.initiate_handoff(a, b, id, to, is_move, at_h);
        }
    }

    /// Starts (or parks) a cross-shard handoff at `at_h`.
    fn initiate_handoff(
        &mut self,
        a: usize,
        b: usize,
        id: SessionId,
        to_global: usize,
        is_move: bool,
        at_h: f64,
    ) {
        let label = if is_move {
            "move-user"
        } else {
            "switch-device"
        };
        {
            let report = &mut self.shards[a].report;
            if is_move {
                report.moves += 1;
            } else {
                report.switches += 1;
            }
        }
        let (name, graph, qos, old_client) = {
            let s = self.shards[a]
                .server
                .session(id)
                .expect("picked live session");
            (
                s.name.clone(),
                s.abstract_graph.clone(),
                s.user_qos.clone(),
                s.client_device,
            )
        };
        let req = self.shards[a].by_session[&id];
        if self.suspected_shard(b, at_h) {
            // Suspected destination: never half-move. The session is
            // stopped (exact refund) and parked on the source into the
            // retry queue, witnessed by the stale view of dev`to`.
            self.stats.handoffs_parked_dest_suspected += 1;
            let witness = ConfigureError::StaleView { device: to_global };
            if self.cfg.durability.enabled {
                self.wals[a].push(WalRecord::Call(ServerCall::Stop { sid: id.raw() }));
                self.wals[a].push(WalRecord::Call(ServerCall::Park {
                    name: name.clone(),
                    graph: graph.clone(),
                    qos: qos.clone(),
                    client_local: old_client.index(),
                    err: witness.clone(),
                }));
            }
            let shard = &mut self.shards[a];
            let stopped = shard.server.stop_session(id);
            debug_assert!(stopped.is_some(), "picked session was live");
            let pid = shard
                .server
                .park_arrival(name, graph, qos, old_client, None, witness);
            shard.report.parked += 1;
            if is_move {
                shard.report.move_failures += 1;
            } else {
                shard.report.switch_failures += 1;
            }
            shard.by_session.remove(&id);
            shard.active.insert(req, pid);
            shard.by_session.insert(pid, req);
            self.wals[a].push(WalRecord::Untrack { req, sid: id.raw() });
            self.wals[a].push(WalRecord::Track {
                req,
                sid: pid.raw(),
            });
            self.directory.insert(req, Loc::At { shard: a, id: pid });
            self.slog(
                a,
                at_h,
                &format!(
                    "fault   {label} {id} -> dev{to_global}@shard{b} parked (destination suspected) as {pid}"
                ),
            );
            return;
        }
        let hid = self.next_hid;
        self.next_hid += 1;
        self.stats.handoffs_initiated += 1;
        let client_local = to_global - self.offsets[b];
        self.handoffs.insert(
            hid,
            Handoff {
                req,
                source: a,
                dest: b,
                sid: id,
                is_move,
                name,
                graph,
                qos,
                client_local,
                to_global,
                state: HandoffState::Reserving,
                reservation: Reservation::None,
                departed: false,
            },
        );
        self.send(a, b, at_h, FederationMsg::Reserve { hid });
        let decide_h = at_h + self.cfg.commit_lag_h;
        self.queue.schedule(decide_h, FedEvent::Decide(hid));
        self.slog(
            a,
            at_h,
            &format!(
                "fault   {label} {id} -> dev{to_global}@shard{b} reserving (h{hid}, decide at t={decide_h:.4}h)"
            ),
        );
    }

    /// The commit-or-abort decision on the source shard,
    /// `commit_lag_h` after the reserve.
    fn on_decide(&mut self, hid: u64, at_h: f64, touched: &mut BTreeSet<usize>) {
        let (a, b, sid, req, is_move, state) = {
            let h = &self.handoffs[&hid];
            (h.source, h.dest, h.sid, h.req, h.is_move, h.state)
        };
        self.advance(a, at_h);
        touched.insert(a);
        match state {
            HandoffState::Committed | HandoffState::Aborted => {
                self.slog(
                    a,
                    at_h,
                    &format!("handoff h{hid} decide -> already resolved"),
                );
            }
            HandoffState::Reserving | HandoffState::Reserved => {
                let tracked = self.shards[a].by_session.contains_key(&sid);
                let live = tracked && self.shards[a].server.session(sid).is_some();
                if !tracked {
                    self.abort_handoff(hid, a, b, at_h, "session gone", false, is_move);
                } else if !live {
                    self.abort_handoff(hid, a, b, at_h, "session parked on source", false, is_move);
                } else if state == HandoffState::Reserving {
                    self.abort_handoff(
                        hid,
                        a,
                        b,
                        at_h,
                        "no reserve acknowledgement",
                        true,
                        is_move,
                    );
                } else if self.suspected_shard(b, at_h) {
                    let reason = format!("destination shard{b} suspected");
                    self.abort_handoff(hid, a, b, at_h, &reason, true, is_move);
                } else if !self.reachable_shard(a, at_h) {
                    let reason = format!("source shard{a} partitioned");
                    self.abort_handoff(hid, a, b, at_h, &reason, true, is_move);
                } else {
                    // Commit: release on the source (exact refund),
                    // custody transfers in flight.
                    if self.cfg.durability.enabled {
                        self.wals[a].push(WalRecord::Call(ServerCall::Stop { sid: sid.raw() }));
                        self.wals[a].push(WalRecord::Untrack {
                            req,
                            sid: sid.raw(),
                        });
                    }
                    let shard = &mut self.shards[a];
                    let stopped = shard.server.stop_session(sid);
                    debug_assert!(stopped.is_some(), "decide saw a live session");
                    shard.active.remove(&req);
                    shard.by_session.remove(&sid);
                    self.handoffs.get_mut(&hid).expect("tracked").state = HandoffState::Committed;
                    self.stats.handed_out[a] += 1;
                    self.stats.handoffs_committed += 1;
                    self.directory.insert(req, Loc::InFlight { hid });
                    self.send(a, b, at_h, FederationMsg::Commit { hid });
                    self.slog(
                        a,
                        at_h,
                        &format!(
                            "handoff h{hid} decide -> commit ({sid} released from shard{a}, in flight to shard{b})"
                        ),
                    );
                }
            }
        }
    }

    /// Aborts handoff `hid` at decide time: the source keeps (or has
    /// already lost) the session, and the destination is told to
    /// release whatever it holds. When the source is partitioned the
    /// abort itself defers — the reservation lease expires first and
    /// cleans up without it.
    #[allow(clippy::too_many_arguments)]
    fn abort_handoff(
        &mut self,
        hid: u64,
        a: usize,
        b: usize,
        at_h: f64,
        reason: &str,
        count_failure: bool,
        is_move: bool,
    ) {
        self.handoffs.get_mut(&hid).expect("tracked").state = HandoffState::Aborted;
        self.stats.handoffs_aborted += 1;
        let line = if count_failure {
            let report = &mut self.shards[a].report;
            if is_move {
                report.move_failures += 1;
            } else {
                report.switch_failures += 1;
            }
            format!("handoff h{hid} decide -> abort ({reason}), old config kept")
        } else {
            format!("handoff h{hid} decide -> abort ({reason})")
        };
        self.send(a, b, at_h, FederationMsg::Abort { hid });
        self.slog(a, at_h, &line);
    }

    /// Reservation lease expiry on the destination: a reservation not
    /// yet committed or aborted is released with an exact refund,
    /// witnessing the source's stale view of the handoff.
    fn on_expire(&mut self, hid: u64, at_h: f64, touched: &mut BTreeSet<usize>) {
        let (b, reservation, to_global) = {
            let h = &self.handoffs[&hid];
            (h.dest, h.reservation, h.to_global)
        };
        match reservation {
            Reservation::Live(raw) | Reservation::Parked(raw) => {
                self.advance(b, at_h);
                touched.insert(b);
                let rid = SessionId::from_raw(raw);
                if self.cfg.durability.enabled {
                    self.wals[b].push(WalRecord::Call(ServerCall::Stop { sid: raw }));
                }
                let released = self.shards[b].server.stop_session(rid);
                debug_assert!(released.is_some(), "reservation index tracks holdings");
                self.res_index.remove(&(b, raw));
                self.handoffs.get_mut(&hid).expect("tracked").reservation = Reservation::Expired;
                self.stats.reservation_expiries += 1;
                let witness = ConfigureError::StaleView { device: to_global };
                self.slog(
                    b,
                    at_h,
                    &format!(
                        "handoff h{hid} reservation lease expired -> {rid} released ({witness})"
                    ),
                );
            }
            _ => {
                // Already resolved — the expiry is a no-op and the
                // shard is not even touched.
            }
        }
    }

    /// Serial heartbeat arm, routed to the owner shard.
    fn on_heartbeat(&mut self, g: usize, at_h: f64, touched: &mut BTreeSet<usize>) {
        let s = self.owner(g);
        let d = g - self.offsets[s];
        self.advance(s, at_h);
        touched.insert(s);
        let shard = &mut self.shards[s];
        let lost = shard.down.contains(&d)
            || shard.det.partition_depth[d] > 0
            || at_h < shard.det.jam_until_h[d];
        if !lost {
            // Journal the heartbeat even when it reinstates nothing: the
            // call renews the device lease inside the server, and replay
            // must renew it too or a later sweep would diverge.
            if let Some(rec) = shard
                .server
                .heartbeat(DeviceId::from_index(d), self.grace_ms)
            {
                shard.report.reinstatements += 1;
                count_pass(&rec, &mut shard.report);
                let (tail, removed) = self.absorb(s, &rec);
                self.wals[s].push(WalRecord::Call(ServerCall::Heartbeat {
                    device: d,
                    removed,
                }));
                self.slog(
                    s,
                    at_h,
                    &format!("detect  reinstate dev{d} (lease renewed) -> {tail}"),
                );
            } else {
                self.wals[s].push(WalRecord::Call(ServerCall::Heartbeat {
                    device: d,
                    removed: Vec::new(),
                }));
            }
            self.queue.schedule(
                at_h + self.cfg.base.detection_grace_h,
                FedEvent::LeaseCheck(g),
            );
        }
    }

    /// Serial lease-check arm (anti-entropy sweep), routed to the
    /// owner shard. Per-shard sweep hoisting: same-instant checks on
    /// one shard share a single sweep.
    fn on_lease_check(&mut self, g: usize, at_h: f64, touched: &mut BTreeSet<usize>) {
        let s = self.owner(g);
        self.advance(s, at_h);
        touched.insert(s);
        if at_h > self.hb_end_h + 1e-9 {
            return;
        }
        if self.shards[s].last_sweep_h == Some(at_h) {
            return;
        }
        self.shards[s].last_sweep_h = Some(at_h);
        let mut removed_per_item: Vec<Vec<u64>> = Vec::new();
        for (device, rec) in self.shards[s].server.expire_overdue_leases() {
            let shard = &mut self.shards[s];
            shard.report.suspicions += 1;
            let ground_up = !shard.down.contains(&device.index());
            if ground_up {
                shard.report.false_suspected += 1;
            }
            count_pass(&rec, &mut shard.report);
            let (tail, removed) = self.absorb(s, &rec);
            removed_per_item.push(removed);
            let tag = if ground_up { " (falsely)" } else { "" };
            self.slog(
                s,
                at_h,
                &format!(
                    "detect  suspect dev{}{tag} (lease expired) -> {tail}",
                    device.index()
                ),
            );
        }
        // One record per sweep, even an empty one: the sweep advances
        // detector bookkeeping inside the server.
        self.wals[s].push(WalRecord::Call(ServerCall::ExpireLeases {
            removed: removed_per_item,
        }));
    }

    /// Processes one delivered message on its destination shard. The
    /// handler time is the envelope's own delivery instant — by the
    /// turn gating it always equals the open turn's instant
    /// (`turn_at_h`), however late the transport physically was.
    fn deliver(&mut self, env: Envelope, turn_at_h: f64, touched: &mut BTreeSet<usize>) {
        let at_h = env.deliver_at_h;
        debug_assert_eq!(
            at_h.to_bits(),
            turn_at_h.to_bits(),
            "a payload is always delivered by the turn at its own instant"
        );
        // Attribute the message's queueing delay (virtual µs spent
        // deferred behind a partition; zero for immediate delivery) to
        // the destination shard's queue-wait slot, so the federation
        // artifact reports per-shard message-queue distributions
        // through the same [`StageTimes`] schema the pipeline uses.
        let wait_h = (env.deliver_at_h - env.sent_at_h).max(0.0);
        self.shards[env.to]
            .server
            .record_queue_wait_us((wait_h * 3.6e9) as u64);
        match env.msg {
            FederationMsg::Ack => {
                unreachable!("ack frames are consumed by the reliable sublayer")
            }
            FederationMsg::DiscoverRemote { service_type, req } => {
                // Answer from the registry without touching the shard's
                // clock, log, or counters — a probe is a read, exactly
                // as in the old synchronous round trip.
                let b = env.to;
                let hit = self.shards[b]
                    .server
                    .registry()
                    .discover(&DiscoveryQuery::new(service_type))
                    .is_some();
                self.send(
                    b,
                    env.from,
                    at_h,
                    FederationMsg::DiscoverFound { found: hit, req },
                );
            }
            FederationMsg::DiscoverFound { found, req } => {
                self.deliver_discover_found(env.from, env.to, found, req, at_h, touched);
            }
            FederationMsg::Reserve { hid } => {
                let b = env.to;
                self.advance(b, at_h);
                touched.insert(b);
                let (state, name, graph, qos, client_local) = {
                    let h = &self.handoffs[&hid];
                    (
                        h.state,
                        h.name.clone(),
                        h.graph.clone(),
                        h.qos.clone(),
                        h.client_local,
                    )
                };
                if state == HandoffState::Aborted {
                    self.handoffs.get_mut(&hid).expect("tracked").reservation = Reservation::Done;
                    self.slog(
                        b,
                        at_h,
                        &format!("fedmsg  h{hid} reserve -> declined (handoff aborted)"),
                    );
                    return;
                }
                if self.cfg.durability.enabled {
                    self.wals[b].push(WalRecord::Call(ServerCall::Start {
                        name: name.clone(),
                        graph: graph.clone(),
                        qos: qos.clone(),
                        client_local,
                    }));
                }
                match self.shards[b].server.start_session(
                    name,
                    graph,
                    qos,
                    DeviceId::from_index(client_local),
                ) {
                    Ok(rid) => {
                        self.handoffs.get_mut(&hid).expect("tracked").reservation =
                            Reservation::Live(rid.raw());
                        self.res_index.insert((b, rid.raw()), hid);
                        let expire_h = at_h + self.cfg.reserve_grace_h;
                        self.queue.schedule(expire_h, FedEvent::Expire(hid));
                        self.send(b, env.from, at_h, FederationMsg::ReserveOk { hid });
                        self.slog(
                            b,
                            at_h,
                            &format!(
                                "fedmsg  h{hid} reserve dev{client_local} -> held as {rid} (lease until t={expire_h:.4}h)"
                            ),
                        );
                    }
                    Err(e) => {
                        self.handoffs.get_mut(&hid).expect("tracked").reservation =
                            Reservation::Done;
                        self.send(
                            b,
                            env.from,
                            at_h,
                            FederationMsg::ReserveErr {
                                hid,
                                error: format!("{e}"),
                            },
                        );
                        self.slog(
                            b,
                            at_h,
                            &format!("fedmsg  h{hid} reserve dev{client_local} -> declined ({e})"),
                        );
                    }
                }
            }
            FederationMsg::ReserveOk { hid } => {
                let a = env.to;
                self.advance(a, at_h);
                touched.insert(a);
                let h = self.handoffs.get_mut(&hid).expect("tracked");
                if h.state == HandoffState::Reserving {
                    h.state = HandoffState::Reserved;
                    self.slog(a, at_h, &format!("fedmsg  h{hid} reserve-ok -> reserved"));
                } else {
                    self.slog(
                        a,
                        at_h,
                        &format!("fedmsg  h{hid} reserve-ok -> ignored (already resolved)"),
                    );
                }
            }
            FederationMsg::ReserveErr { hid, error } => {
                let a = env.to;
                self.advance(a, at_h);
                touched.insert(a);
                let (state, sid, is_move) = {
                    let h = &self.handoffs[&hid];
                    (h.state, h.sid, h.is_move)
                };
                if state == HandoffState::Reserving {
                    self.handoffs.get_mut(&hid).expect("tracked").state = HandoffState::Aborted;
                    self.stats.handoffs_aborted += 1;
                    let shard = &mut self.shards[a];
                    if shard.by_session.contains_key(&sid) && shard.server.session(sid).is_some() {
                        if is_move {
                            shard.report.move_failures += 1;
                        } else {
                            shard.report.switch_failures += 1;
                        }
                    }
                    self.slog(
                        a,
                        at_h,
                        &format!(
                            "fedmsg  h{hid} reserve-err ({error}) -> aborted, old config kept"
                        ),
                    );
                } else {
                    self.slog(
                        a,
                        at_h,
                        &format!("fedmsg  h{hid} reserve-err -> ignored (already resolved)"),
                    );
                }
            }
            FederationMsg::Commit { hid } => {
                self.deliver_commit(hid, at_h, touched);
            }
            FederationMsg::Abort { hid } => {
                let b = env.to;
                self.advance(b, at_h);
                touched.insert(b);
                let reservation = self.handoffs[&hid].reservation;
                match reservation {
                    Reservation::Live(raw) | Reservation::Parked(raw) => {
                        let rid = SessionId::from_raw(raw);
                        self.wals[b].push(WalRecord::Call(ServerCall::Stop { sid: raw }));
                        let released = self.shards[b].server.stop_session(rid);
                        debug_assert!(released.is_some(), "reservation index tracks holdings");
                        self.res_index.remove(&(b, raw));
                        self.handoffs.get_mut(&hid).expect("tracked").reservation =
                            Reservation::Done;
                        self.slog(
                            b,
                            at_h,
                            &format!(
                                "fedmsg  h{hid} abort -> reservation {rid} released (exact refund)"
                            ),
                        );
                    }
                    _ => {
                        self.slog(b, at_h, &format!("fedmsg  h{hid} abort -> nothing held"));
                    }
                }
            }
        }
    }

    /// Phase-2 commit on the destination: promote the reservation to
    /// ownership — or, when the lease already expired (partition-
    /// -delayed commit), re-admit the session from its snapshot.
    fn deliver_commit(&mut self, hid: u64, at_h: f64, touched: &mut BTreeSet<usize>) {
        let (b, req, reservation, departed, name, graph, qos, client_local) = {
            let h = &self.handoffs[&hid];
            (
                h.dest,
                h.req,
                h.reservation,
                h.departed,
                h.name.clone(),
                h.graph.clone(),
                h.qos.clone(),
                h.client_local,
            )
        };
        self.advance(b, at_h);
        touched.insert(b);
        match reservation {
            Reservation::Live(raw) | Reservation::Parked(raw) => {
                self.stats.handed_in[b] += 1;
                let rid = SessionId::from_raw(raw);
                self.res_index.remove(&(b, raw));
                self.handoffs.get_mut(&hid).expect("tracked").reservation = Reservation::Done;
                if departed {
                    self.wals[b].push(WalRecord::Call(ServerCall::Stop { sid: raw }));
                    let stopped = self.shards[b].server.stop_session(rid);
                    debug_assert!(stopped.is_some(), "reservation index tracks holdings");
                    self.shards[b].report.completed += 1;
                    self.directory.insert(req, Loc::Gone { shard: b });
                    self.slog(
                        b,
                        at_h,
                        &format!("fedmsg  h{hid} commit -> {rid} arrived, user already departed (completed)"),
                    );
                } else {
                    let parked_tag = if matches!(reservation, Reservation::Parked(_)) {
                        " (parked)"
                    } else {
                        ""
                    };
                    let shard = &mut self.shards[b];
                    shard.active.insert(req, rid);
                    shard.by_session.insert(rid, req);
                    self.wals[b].push(WalRecord::Track { req, sid: raw });
                    self.directory.insert(req, Loc::At { shard: b, id: rid });
                    self.slog(
                        b,
                        at_h,
                        &format!("fedmsg  h{hid} commit -> session {rid} now owned by shard{b}{parked_tag}"),
                    );
                }
            }
            Reservation::Expired | Reservation::Dead => {
                self.stats.handed_in[b] += 1;
                self.stats.late_commits += 1;
                self.handoffs.get_mut(&hid).expect("tracked").reservation = Reservation::Done;
                if departed {
                    self.shards[b].report.completed += 1;
                    self.directory.insert(req, Loc::Gone { shard: b });
                    self.slog(
                        b,
                        at_h,
                        &format!(
                            "fedmsg  h{hid} commit -> lease expired, user departed (completed)"
                        ),
                    );
                } else {
                    if self.cfg.durability.enabled {
                        self.wals[b].push(WalRecord::Call(ServerCall::Start {
                            name: name.clone(),
                            graph: graph.clone(),
                            qos: qos.clone(),
                            client_local,
                        }));
                    }
                    match self.shards[b].server.start_session(
                        name,
                        graph,
                        qos,
                        DeviceId::from_index(client_local),
                    ) {
                        Ok(rid) => {
                            let shard = &mut self.shards[b];
                            shard.active.insert(req, rid);
                            shard.by_session.insert(rid, req);
                            self.wals[b].push(WalRecord::Track {
                                req,
                                sid: rid.raw(),
                            });
                            self.directory.insert(req, Loc::At { shard: b, id: rid });
                            self.slog(
                                b,
                                at_h,
                                &format!(
                                    "fedmsg  h{hid} commit -> lease expired, re-admitted as {rid}"
                                ),
                            );
                        }
                        Err(e) => {
                            if self.cfg.durability.enabled {
                                self.wals[b].push(WalRecord::Call(ServerCall::Park {
                                    name: self.handoffs[&hid].name.clone(),
                                    graph: self.handoffs[&hid].graph.clone(),
                                    qos: self.handoffs[&hid].qos.clone(),
                                    client_local,
                                    err: e.clone(),
                                }));
                            }
                            let shard = &mut self.shards[b];
                            shard.report.parked += 1;
                            let pid = shard.server.park_arrival(
                                self.handoffs[&hid].name.clone(),
                                self.handoffs[&hid].graph.clone(),
                                self.handoffs[&hid].qos.clone(),
                                DeviceId::from_index(client_local),
                                None,
                                e,
                            );
                            let shard = &mut self.shards[b];
                            shard.active.insert(req, pid);
                            shard.by_session.insert(pid, req);
                            self.wals[b].push(WalRecord::Track {
                                req,
                                sid: pid.raw(),
                            });
                            self.directory.insert(req, Loc::At { shard: b, id: pid });
                            self.slog(
                                b,
                                at_h,
                                &format!("fedmsg  h{hid} commit -> lease expired, parked on arrival as {pid}"),
                            );
                        }
                    }
                }
            }
            Reservation::None | Reservation::Done => {
                // Declined reserve followed by a commit cannot happen
                // (decide aborts on `Reserving`); log defensively.
                self.slog(
                    b,
                    at_h,
                    &format!("fedmsg  h{hid} commit -> nothing held (ignored)"),
                );
            }
        }
    }

    /// Folds a recovery report into shard `s`'s bookkeeping (the
    /// serial `absorb_recovery`, made reservation-aware).
    fn absorb(&mut self, s: usize, rec: &RecoveryReport) -> (String, Vec<u64>) {
        fed_absorb(
            rec,
            s,
            &mut self.shards[s],
            &mut self.directory,
            &mut self.handoffs,
            &mut self.res_index,
        )
    }

    /// The serial per-event epilogue for one touched shard: retry
    /// drain, invariant sweep (stride-gated per shard), and detector
    /// soundness. Ends the WAL's per-event record group with a `Mark`
    /// (coalescing every aggregate counter mutated since the last one)
    /// and takes a snapshot checkpoint when the tail is long enough.
    fn finish_event(&mut self, s: usize, at_h: f64) -> Result<(), InvariantViolation> {
        let result = self.finish_event_inner(s, at_h);
        if result.is_ok() {
            self.wal_mark(s);
            if self.wals[s].due_checkpoint() {
                self.wals[s].checkpoint(&self.shards[s]);
            }
        }
        result
    }

    fn finish_event_inner(&mut self, s: usize, at_h: f64) -> Result<(), InvariantViolation> {
        let retries = self.shards[s].server.process_retries();
        // Journal the drain even when it moved nothing: retry backoff
        // bookkeeping inside the server advances on every call.
        if retries.is_empty() {
            self.wals[s].push(WalRecord::Call(ServerCall::Retries {
                removed: Vec::new(),
            }));
        } else {
            let (tail, removed) = self.absorb(s, &retries);
            self.wals[s].push(WalRecord::Call(ServerCall::Retries { removed }));
            self.slog(s, at_h, &format!("retry   parked queue -> {tail}"));
        }
        let shard = &mut self.shards[s];
        shard.iterations += 1;
        let stride = shard.cfg.invariant_stride.max(1) as u64;
        if !shard.iterations.is_multiple_of(stride) {
            return Ok(());
        }
        let event_line = shard.log.lines().last().cloned().unwrap_or_default();
        shard.report.invariant_checks += 1;
        let observed: BTreeSet<usize> = if self.imperfect {
            shard.server.suspected_devices().clone()
        } else {
            shard.down.clone()
        };
        if let Err(violation) = check_invariants(&shard.server, &observed) {
            return Err(InvariantViolation {
                at_h_milli: (at_h * 1000.0).round() as u64,
                event: event_line,
                violation,
            });
        }
        if self.imperfect && at_h <= self.hb_end_h + 1e-9 {
            let lag = shard.cfg.detection_grace_h + shard.cfg.heartbeat_period_h + 1e-6;
            for (&d, &since) in &shard.det.unreachable_since {
                if at_h > since + lag && !shard.server.is_suspected(DeviceId::from_index(d)) {
                    return Err(InvariantViolation {
                        at_h_milli: (at_h * 1000.0).round() as u64,
                        event: event_line,
                        violation: format!(
                            "detector unsound: dev{d} unreachable since t={since:.4}h \
                             still unsuspected at t={at_h:.4}h (grace {:.4}h)",
                            shard.cfg.detection_grace_h
                        ),
                    });
                }
            }
        }
        Ok(())
    }

    /// The serial end-of-campaign phase, per shard in index order:
    /// final anti-entropy sweep and convergence drain (imperfect mode),
    /// then report finalization. Also asserts the federation reached a
    /// quiescent state: no undelivered messages, every handoff
    /// terminal, no reservation still indexed.
    fn finalize_shards(&mut self) -> Result<(), InvariantViolation> {
        assert!(
            self.pending.is_empty(),
            "all envelopes delivered by the horizon"
        );
        assert!(
            self.in_flight.is_empty(),
            "every sent payload was released by the drain"
        );
        assert!(
            self.net_rx.is_empty(),
            "no physical copy is still in the air after the drain"
        );
        assert!(
            self.pending_discovery.is_empty(),
            "every discovery chain resolved within its arrival turn"
        );
        for (link, state) in &self.links {
            assert!(
                state.tx.is_empty() && state.rx_buffer.is_empty(),
                "no unacknowledged payload survives the drain (link {link:?})"
            );
            assert_eq!(
                state.rx_expected, state.tx_next_seq,
                "the receiver consumed every sequence number the sender issued (link {link:?})"
            );
        }
        for (hid, h) in &self.handoffs {
            assert!(
                matches!(h.state, HandoffState::Committed | HandoffState::Aborted),
                "handoff h{hid} left non-terminal"
            );
        }
        assert!(
            self.res_index.is_empty(),
            "no reservation outlives its handoff"
        );
        for s in 0..self.shards.len() {
            if self.imperfect {
                for d in 0..self.sizes[s] {
                    let shard = &self.shards[s];
                    let unreachable = shard.down.contains(&d) || shard.det.partition_depth[d] > 0;
                    if unreachable && !shard.server.is_suspected(DeviceId::from_index(d)) {
                        let shard = &mut self.shards[s];
                        shard.report.suspicions += 1;
                        if !shard.down.contains(&d) {
                            shard.report.false_suspected += 1;
                        }
                        let rec = shard.server.suspect_many(&[DeviceId::from_index(d)]);
                        count_pass(&rec, &mut shard.report);
                        let (tail, _) = self.absorb(s, &rec);
                        let last_h = self.shards[s].last_h;
                        self.slog(
                            s,
                            last_h,
                            &format!("detect  suspect dev{d} (final sweep) -> {tail}"),
                        );
                    }
                }
                while self.shards[s].server.parked_count() > 0 {
                    let shard = &mut self.shards[s];
                    let next_ms = shard
                        .server
                        .parked_sessions()
                        .map(|(_, p)| p.next_retry_ms)
                        .fold(f64::INFINITY, f64::min);
                    if next_ms > shard.server.now_ms() {
                        let delta_s = (next_ms - shard.server.now_ms()) / 1000.0;
                        shard.server.play(delta_s);
                    }
                    let rec = shard.server.process_retries();
                    let drain_h = shard.server.now_ms() / 3_600_000.0;
                    let (tail, _) = self.absorb(s, &rec);
                    self.slog(s, drain_h, &format!("drain   parked queue -> {tail}"));
                    let shard = &mut self.shards[s];
                    shard.last_h = shard.last_h.max(drain_h);
                    shard.report.invariant_checks += 1;
                    let observed: BTreeSet<usize> = shard.server.suspected_devices().clone();
                    if let Err(violation) = check_invariants(&shard.server, &observed) {
                        return Err(InvariantViolation {
                            at_h_milli: (drain_h * 1000.0).round() as u64,
                            event: "drain   parked queue".to_owned(),
                            violation,
                        });
                    }
                }
            }
            let shard = &mut self.shards[s];
            shard.report.live_at_end = shard.server.session_count() as u32;
            shard.report.parked_at_end = shard.server.parked_count() as u32;
            shard.report.stale_views = shard.server.stale_view_count() as u32;
            shard.report.log_digest = shard.log.digest();
        }
        Ok(())
    }

    /// Consumes the engine into the outcome.
    fn finish(mut self) -> FederationOutcome {
        self.stats.wal_records = self.wals.iter().map(|w| w.appended).sum();
        debug_assert_eq!(
            self.stats.wal_replayed,
            self.wals.iter().map(|w| w.replayed).sum::<u64>(),
            "per-crash replay accounting matches the WALs' own"
        );
        debug_assert_eq!(
            self.stats.snapshot_restores,
            self.wals.iter().map(|w| w.restores).sum::<u64>(),
            "per-crash restore accounting matches the WALs' own"
        );
        let shards: Vec<ShardOutcome> = self
            .shards
            .into_iter()
            .map(|sh| ShardOutcome {
                stages: sh.server.stage_times(),
                report: sh.report,
                log: sh.log,
            })
            .collect();
        let mut bytes = Vec::with_capacity(shards.len() * 8);
        for sh in &shards {
            bytes.extend_from_slice(&sh.report.log_digest.to_le_bytes());
        }
        let combined_digest = fnv1a(&bytes);
        let outcome = FederationOutcome {
            shards,
            stats: self.stats,
            combined_digest,
        };
        debug_assert!(
            outcome.fates_balance(),
            "federated fates balance: {:?}",
            outcome.stats
        );
        outcome
    }
}

/// The service type an application template needs from a remote
/// registry when the local one is specialized: even graphs stream WAV
/// (ubiquitous), odd graphs need the `mpeg-source` that odd shards
/// drop.
fn probe_type(graph_index: usize) -> &'static str {
    if graph_index % 2 == 1 {
        "mpeg-source"
    } else {
        "wav-source"
    }
}

/// The serial `absorb_recovery`, extended with reservation custody: a
/// reserved session swept up by a destination-side recovery pass is
/// re-tagged on its handoff (parked / re-admitted / dead) instead of
/// entering the shard's fate ledger — it is not owned here until its
/// commit arrives. The rendered tail is byte-identical to the serial
/// harness (at one shard no reservations exist, so the counters match
/// exactly too).
fn fed_absorb(
    rec: &RecoveryReport,
    s: usize,
    shard: &mut Shard,
    directory: &mut BTreeMap<usize, Loc>,
    handoffs: &mut BTreeMap<u64, Handoff>,
    res_index: &mut BTreeMap<(usize, u64), u64>,
) -> (String, Vec<u64>) {
    assert_eq!(
        rec.dropped.len(),
        rec.drop_errors.len(),
        "every drop carries the error witnessing unplaceability"
    );
    let mut res_dropped = 0usize;
    // Session ids untracked from the shard maps, in order — the WAL
    // records them so replay repeats exactly this untracking without
    // consulting the (crash-surviving, engine-level) reservation index.
    let mut removed: Vec<u64> = Vec::new();
    for (id, (witness_id, _)) in rec.dropped.iter().zip(&rec.drop_errors) {
        assert_eq!(id, witness_id, "drop witnesses line up");
        if let Some(hid) = res_index.remove(&(s, id.raw())) {
            handoffs
                .get_mut(&hid)
                .expect("indexed handoff exists")
                .reservation = Reservation::Dead;
            res_dropped += 1;
            continue;
        }
        let req = shard
            .by_session
            .remove(id)
            .expect("dropped sessions were tracked");
        shard.active.remove(&req);
        removed.push(id.raw());
        directory.insert(req, Loc::Gone { shard: s });
    }
    let mut res_parked = 0usize;
    for id in &rec.parked {
        if let Some(&hid) = res_index.get(&(s, id.raw())) {
            handoffs
                .get_mut(&hid)
                .expect("indexed handoff exists")
                .reservation = Reservation::Parked(id.raw());
            res_parked += 1;
        }
    }
    let mut res_readmitted = 0usize;
    for id in &rec.readmitted {
        if let Some(&hid) = res_index.get(&(s, id.raw())) {
            handoffs
                .get_mut(&hid)
                .expect("indexed handoff exists")
                .reservation = Reservation::Live(id.raw());
            res_readmitted += 1;
        }
    }
    shard.report.replacements += rec.replacements() as u32;
    shard.report.degraded += rec.degraded.len() as u32;
    shard.report.parked += (rec.parked.len() - res_parked) as u32;
    shard.report.readmitted += (rec.readmitted.len() - res_readmitted) as u32;
    shard.report.dropped += (rec.dropped.len() - res_dropped) as u32;
    let mut tail = format!(
        "re-placed {} ({} degraded), parked {}, readmitted {}, dropped {}; affected {}/{}",
        rec.replacements(),
        rec.degraded.len(),
        rec.parked.len(),
        rec.readmitted.len(),
        rec.dropped.len(),
        rec.affected,
        rec.considered,
    );
    for (id, err) in &rec.drop_errors {
        let _ = write!(tail, "; {id} unplaceable ({err})");
    }
    (tail, removed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::durability::shard_fingerprint;
    use crate::faults::run_fault_campaign_with;
    use proptest::prelude::*;

    fn small_cfg(shards: usize) -> FederationConfig {
        FederationConfig {
            base: FaultCampaignConfig {
                devices: 6,
                requests: 48,
                horizon_h: 12.0,
                faults: 10,
                ..FaultCampaignConfig::default()
            },
            shards,
            mobility: MobilityWaveConfig {
                moves: 10,
                waves: 2,
                horizon_h: 12.0,
                devices: 6,
                ..MobilityWaveConfig::default()
            },
            ..FederationConfig::default()
        }
    }

    #[test]
    fn shard_suspicion_windows_are_closed_form() {
        let mut cfg = small_cfg(2);
        cfg.shard_partitions = vec![ShardPartition {
            shard: 1,
            from_h: 1.0,
            to_h: 1.1,
        }];
        cfg.shard_grace_h = 0.05;
        cfg.shard_heartbeat_h = 0.25;
        let engine = Engine::new(&cfg, Vec::new(), Box::new(ChannelTransport::new(2)));
        // Reachability tracks the raw window.
        assert!(engine.reachable_shard(1, 0.99));
        assert!(!engine.reachable_shard(1, 1.0));
        assert!(!engine.reachable_shard(1, 1.05));
        assert!(engine.reachable_shard(1, 1.1));
        // Suspicion starts after the grace and holds until the next
        // heartbeat multiple after the heal (1.25h).
        assert!(!engine.suspected_shard(1, 1.02));
        assert!(engine.suspected_shard(1, 1.05));
        assert!(engine.suspected_shard(1, 1.2));
        assert!(!engine.suspected_shard(1, 1.25));
        // The other shard is never implicated.
        assert!(engine.reachable_shard(0, 1.05) && !engine.suspected_shard(0, 1.05));
        // Messages into the window defer to the heal.
        assert_eq!(engine.delivery_time(0, 1, 1.05), 1.1);
        assert_eq!(engine.delivery_time(1, 0, 1.05), 1.1);
        assert_eq!(engine.delivery_time(0, 1, 1.2), 1.2);
    }

    #[test]
    fn one_shard_is_byte_identical_to_serial_reference() {
        let cfg = small_cfg(1);
        let schedule = cfg.schedule();
        let fed = run_federation_campaign_with(&cfg, &schedule).expect("federated run");
        let serial = run_fault_campaign_with(&cfg.base, &schedule).expect("serial run");
        assert_eq!(fed.shards.len(), 1);
        assert_eq!(
            fed.shards[0].log.render(),
            serial.log.render(),
            "1-shard log must be byte-identical to the serial DES reference"
        );
        assert_eq!(fed.shards[0].report, serial.report);
        assert_eq!(fed.stats.handoffs_initiated, 0, "no cross-shard traffic");
        assert_eq!(fed.stats.messages, 0);
        assert!(fed.fates_balance());
    }

    #[test]
    fn one_shard_is_byte_identical_under_imperfect_detection() {
        let mut cfg = small_cfg(1);
        cfg.base.detection_grace_h = 0.05;
        cfg.base.partitions = 1;
        let schedule = cfg.schedule();
        let fed = run_federation_campaign_with(&cfg, &schedule).expect("federated run");
        let serial = run_fault_campaign_with(&cfg.base, &schedule).expect("serial run");
        assert_eq!(fed.shards[0].log.render(), serial.log.render());
        assert_eq!(fed.shards[0].report, serial.report);
    }

    #[test]
    fn two_shards_balance_and_cross_traffic_flows() {
        let cfg = small_cfg(2);
        let fed = run_federation_campaign(&cfg).expect("federated run");
        assert!(fed.fates_balance(), "fate ledger: {:?}", fed.stats);
        let arrivals: u32 = fed.shards.iter().map(|s| s.report.arrivals).sum();
        assert_eq!(
            arrivals as usize, cfg.base.requests,
            "every arrival resolved on exactly one shard"
        );
        assert!(
            fed.stats.forwarded > 0,
            "specialized registries force cross-domain discovery: {:?}",
            fed.stats
        );
        assert!(
            fed.stats.handoffs_initiated > 0,
            "mobility waves cross the shard boundary"
        );
        assert_eq!(
            fed.stats.handoffs_initiated,
            fed.stats.handoffs_committed + fed.stats.handoffs_aborted,
            "every handoff resolves"
        );
        // Determinism: the same config reproduces the same digests.
        let again = run_federation_campaign(&cfg).expect("rerun");
        assert_eq!(fed.shard_digests(), again.shard_digests());
        assert_eq!(fed.combined_digest, again.combined_digest);
    }

    #[test]
    fn durability_journaling_is_invisible_when_crash_free() {
        for shards in [1usize, 2, 3] {
            let on = small_cfg(shards);
            let mut off = small_cfg(shards);
            off.durability.enabled = false;
            let a = run_federation_campaign(&on).expect("durability on");
            let b = run_federation_campaign(&off).expect("durability off");
            assert_eq!(a.combined_digest, b.combined_digest);
            for (x, y) in a.shards.iter().zip(&b.shards) {
                assert_eq!(x.log.render(), y.log.render());
                assert_eq!(x.report, y.report);
            }
            assert!(a.stats.wal_records > 0, "the journal actually recorded");
            assert_eq!(b.stats.wal_records, 0, "disabled journal stays empty");
        }
    }

    #[test]
    fn seeded_shard_crashes_converge_to_the_crash_free_digests() {
        let baseline = run_federation_campaign(&small_cfg(2)).expect("crash-free run");
        let mut cfg = small_cfg(2);
        cfg.crashes = ShardCrashPlan {
            crashes: 3,
            shards: 2,
            horizon_h: 12.0,
            outage_h: 0.4,
            ..ShardCrashPlan::default()
        };
        let crashed = run_federation_campaign(&cfg).expect("crashed run");
        assert!(
            crashed.stats.shard_crashes >= 1,
            "the plan scheduled real crashes: {:?}",
            crashed.stats
        );
        assert_eq!(
            crashed.stats.snapshot_restores, crashed.stats.shard_crashes,
            "one snapshot restore per crash"
        );
        assert_eq!(
            crashed.shard_digests(),
            baseline.shard_digests(),
            "crashed shards rebuild to the crash-free run's event logs"
        );
        assert!(crashed.fates_balance());
    }

    #[test]
    fn a_crash_with_zero_wal_tail_restores_from_the_snapshot_alone() {
        // checkpoint_every = 1 checkpoints after every event, so the
        // crash replays (at most) the records of the crash instant's
        // own partial event group.
        let mut cfg = small_cfg(2);
        cfg.durability.checkpoint_every = 1;
        cfg.crashes = ShardCrashPlan {
            crashes: 2,
            shards: 2,
            horizon_h: 12.0,
            outage_h: 0.3,
            ..ShardCrashPlan::default()
        };
        let crashed = run_federation_campaign(&cfg).expect("crashed run");
        let baseline = run_federation_campaign(&small_cfg(2)).expect("crash-free run");
        assert_eq!(crashed.shard_digests(), baseline.shard_digests());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(4))]
        #[test]
        fn replaying_any_wal_prefix_twice_equals_once(frac_a in 0.0f64..1.0, frac_b in 0.0f64..1.0) {
            // Keep the whole history in the tail so every prefix of the
            // run is replayable from the initial snapshot.
            let mut cfg = small_cfg(2);
            cfg.durability.checkpoint_every = usize::MAX;
            let schedule = cfg.schedule();
            let mut engine = Engine::new(&cfg, schedule, Box::new(ChannelTransport::new(2)));
            engine.run_events().expect("run");
            for s in 0..cfg.shards {
                let wal = &engine.wals[s];
                let len = wal.tail.len();
                prop_assert!(len > 0, "shard {s} journaled nothing");
                for frac in [frac_a, frac_b, 1.0] {
                    let n = (((len + 1) as f64) * frac) as usize;
                    let n = n.min(len);
                    let once = shard_fingerprint(&wal.replay_prefix(engine.grace_ms, n));
                    let twice = shard_fingerprint(&wal.replay_prefix(engine.grace_ms, n));
                    prop_assert!(once == twice, "prefix replay diverged at {n}/{len} on shard {s}");
                }
                // The full prefix reconstructs the live shard exactly.
                let full = wal.replay_prefix(engine.grace_ms, len);
                assert_recovered_equal(&engine.shards[s], &full, s);
            }
        }
    }

    #[test]
    fn owner_maps_contiguous_blocks() {
        let cfg = small_cfg(2);
        let engine = Engine::new(&cfg, Vec::new(), Box::new(ChannelTransport::new(2)));
        assert_eq!(engine.sizes, vec![3, 3]);
        assert_eq!(engine.offsets, vec![0, 3]);
        for g in 0..6 {
            assert_eq!(engine.owner(g), g / 3);
        }
        // Uneven split: first shards take the remainder.
        let mut cfg7 = small_cfg(3);
        cfg7.base.devices = 7;
        cfg7.mobility.devices = 7;
        let e7 = Engine::new(&cfg7, Vec::new(), Box::new(ChannelTransport::new(3)));
        assert_eq!(e7.sizes, vec![3, 2, 2]);
        assert_eq!(e7.candidates[0], vec![1, 2]);
        assert_eq!(e7.candidates[2], vec![0, 1]);
    }
}
