//! # ubiqos-runtime
//!
//! The smart-space runtime substrate standing in for the paper's Gaia OS
//! prototype (Section 4, first experiment set). It provides the
//! infrastructure services the configuration model assumes (Section 3.1)
//! and the scenario machinery that reproduces **Figure 3** (end-to-end
//! QoS across four configuration events) and **Figure 4** (per-event
//! overhead breakdown):
//!
//! * [`DomainServer`] — the per-domain infrastructure service hosting the
//!   two-tier configurator, driving sessions through start / device
//!   switch / reconfiguration;
//! * [`EventService`] — the pub/sub event channel domain services
//!   coordinate through;
//! * [`ComponentRepository`] — dynamic downloading of component code with
//!   a size ÷ bandwidth cost model;
//! * [`Profiler`] — the online resource-profiling service ([2, 13] in the
//!   paper);
//! * [`checkpoint`] — application checkpointing and the state-handoff
//!   timing model (wireless handoffs cost more than wired ones, matching
//!   the paper's PC→PDA vs PDA→PC asymmetry);
//! * [`streaming`] — delivered-QoS computation for a deployed
//!   configuration;
//! * [`pipeline`] — the batched admission runtime overlapping
//!   independent sessions' discover→compose→place→download pipelines
//!   while committing in the serial runtime's deterministic order;
//! * [`federation`] — the sharded multi-domain deployment: N domain
//!   servers own subtrees of the domain hierarchy, resolve discovery
//!   across shards, and hand sessions off with a two-phase
//!   reserve/commit protocol that stays correct under suspicion;
//! * [`durability`] — per-shard write-ahead log + snapshot checkpoints:
//!   a federated domain server can crash mid-campaign and rebuild its
//!   registry, session table, retry queue, and detector state from the
//!   log, converging to the crash-free run's digests;
//! * [`transport`] — the federation's message fabric: the `Transport`
//!   seam, in-process channels, and the seeded lossy-transport fault
//!   injector the reliable-delivery sublayer is hardened against;
//! * [`apps`] — the two prototype applications: *mobile audio-on-demand*
//!   and *video conferencing*;
//! * [`scenario`] — the scripted four-event experiment of Figures 3-4.
//!
//! All timing comes from the deterministic [`CostModel`], calibrated to
//! the magnitudes the paper reports (hundreds of ms for middleware
//! actions, seconds for dynamic downloads).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod apps;
pub mod checkpoint;
pub mod config_cache;
pub mod cost_model;
pub mod domain_server;
pub mod durability;
pub mod event_service;
pub mod faults;
pub mod federation;
pub mod overhead;
pub mod pipeline;
pub mod profiler;
pub mod recovery;
pub mod repository;
pub mod retry_queue;
pub mod scenario;
pub mod shrink;
pub mod streaming;
pub mod transport;

pub use checkpoint::{Checkpoint, HandoffPhase, HandoffPlan};
pub use config_cache::{CompositionCache, CompositionCacheStats};
pub use cost_model::{CostModel, LinkKind};
pub use domain_server::{DomainServer, PlacementStrategy, PlacementTotals, Session, SessionId};
pub use durability::DurabilityConfig;
pub use event_service::{EventService, RuntimeEvent};
pub use faults::{
    campaign_schedule, run_fault_campaign, run_fault_campaign_with, CampaignOutcome, EventLog,
    FaultCampaignConfig, InvariantViolation,
};
pub use federation::{
    run_federation_campaign, run_federation_campaign_lossy, run_federation_campaign_over,
    run_federation_campaign_with, FederationConfig, FederationMsg, FederationOutcome,
    FederationStats, ShardOutcome, ShardPartition,
};
pub use overhead::ConfigOverhead;
pub use pipeline::{
    run_fault_campaign_batched, run_fault_campaign_batched_with, PipelineConfig, PipelineStats,
};
pub use profiler::{PowHistogram, Profiler, StageTimes};
pub use recovery::{Degradation, RecoveryMode, RecoveryReport};
pub use repository::ComponentRepository;
pub use retry_queue::{ParkedSession, RetryPolicy, RetryQueue};
pub use shrink::{shrink_schedule, ShrinkOutcome};
pub use transport::{
    BurstWindow, ChannelTransport, DirectedFault, Envelope, Fate, LossConfig, LossStats,
    LossyTransport, MsgKind, Transport,
};
