//! Per-event configuration overhead accounting (Figure 4).

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::Add;

/// The four overhead categories Figure 4 stacks per event: service
/// composition, service distribution, dynamic downloading, and
/// initialization or state handoff.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct ConfigOverhead {
    /// Service composition time (ms).
    pub composition_ms: f64,
    /// Service distribution time (ms).
    pub distribution_ms: f64,
    /// Dynamic downloading time (ms); zero when components are
    /// pre-installed.
    pub downloading_ms: f64,
    /// Initialization (fresh start) or state handoff (reconfiguration)
    /// time (ms).
    pub init_or_handoff_ms: f64,
}

impl ConfigOverhead {
    /// Total configuration overhead (ms).
    pub fn total_ms(&self) -> f64 {
        self.composition_ms + self.distribution_ms + self.downloading_ms + self.init_or_handoff_ms
    }

    /// The largest single category, as `(name, ms)`.
    pub fn dominant(&self) -> (&'static str, f64) {
        let parts = [
            ("composition", self.composition_ms),
            ("distribution", self.distribution_ms),
            ("downloading", self.downloading_ms),
            ("init/handoff", self.init_or_handoff_ms),
        ];
        parts
            .into_iter()
            .max_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal))
            .expect("four fixed parts")
    }
}

impl Add for ConfigOverhead {
    type Output = ConfigOverhead;

    fn add(self, rhs: ConfigOverhead) -> ConfigOverhead {
        ConfigOverhead {
            composition_ms: self.composition_ms + rhs.composition_ms,
            distribution_ms: self.distribution_ms + rhs.distribution_ms,
            downloading_ms: self.downloading_ms + rhs.downloading_ms,
            init_or_handoff_ms: self.init_or_handoff_ms + rhs.init_or_handoff_ms,
        }
    }
}

impl fmt::Display for ConfigOverhead {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "composition {:.0}ms + distribution {:.0}ms + downloading {:.0}ms + init/handoff {:.0}ms = {:.0}ms",
            self.composition_ms,
            self.distribution_ms,
            self.downloading_ms,
            self.init_or_handoff_ms,
            self.total_ms()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn total_and_dominant() {
        let o = ConfigOverhead {
            composition_ms: 100.0,
            distribution_ms: 50.0,
            downloading_ms: 1200.0,
            init_or_handoff_ms: 300.0,
        };
        assert_eq!(o.total_ms(), 1650.0);
        assert_eq!(o.dominant(), ("downloading", 1200.0));
    }

    #[test]
    fn add_accumulates() {
        let a = ConfigOverhead {
            composition_ms: 1.0,
            distribution_ms: 2.0,
            downloading_ms: 3.0,
            init_or_handoff_ms: 4.0,
        };
        let sum = a + a;
        assert_eq!(sum.total_ms(), 20.0);
    }

    #[test]
    fn display_mentions_every_category() {
        let s = ConfigOverhead::default().to_string();
        for word in ["composition", "distribution", "downloading", "init/handoff"] {
            assert!(s.contains(word));
        }
    }
}
