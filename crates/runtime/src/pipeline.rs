//! Hand-rolled batched pipeline runtime: overlapping the
//! discover → compose → place → download admission pipeline across
//! sessions without an external async executor.
//!
//! # The runtime
//!
//! The serial DES loop in [`crate::faults`] commits one event at a time:
//! each arrival runs its whole configuration pipeline inline, so the
//! composition cache and the parallel solver sit behind a strictly
//! sequential admission path. This module batches that loop. Events are
//! *admitted* from the DES queue in batches (see the horizon rule
//! below); each arrival in the batch becomes a small session state
//! machine:
//!
//! ```text
//!           ┌──────────── speculative, &self, any worker ───────────┐
//! Queued ──▶ Discovered ──▶ Composed ──▶ Placed ──┐
//!                                                 ▼
//!                 (deterministic commit order: virtual time, then
//!                  DES sequence number = session/arrival id)
//!                                                 │
//!                             Committed: download ▶ charge ▶ admit
//! ```
//!
//! The speculative stages (discover, compose, place) only need `&self`
//! on the [`DomainServer`], so independent sessions' stages run
//! interleaved on the existing worker pool
//! ([`ubiqos_parallel::par_map_threads`]). The *commit* stage — the only
//! stage that mutates device capacity, downloads code, advances virtual
//! time, or writes the log — replays events one at a time in exactly
//! the order the serial loop would have popped them (virtual time, ties
//! broken by the DES queue's monotone sequence numbers, which encode
//! arrival/session id order). Placements contending for the same device
//! capacity are therefore serialized through the same deterministic
//! commit order as the serial runtime, and admission decisions and
//! resource accounting stay **byte-identical** to it.
//!
//! # Freshness (why adopted speculation is exact, not approximate)
//!
//! A speculated outcome is adopted only while it is *fresh*: no event
//! that mutates configuration inputs (a capacity charge or refund, a
//! fault, a detector suspicion or reinstatement, a retry-queue
//! admission) has committed since it was computed. The [`SpecTable`]
//! is invalidated wholesale on every such mutation, so at adoption
//! time `speculate_configure` + `admit_speculated` is exactly
//! [`DomainServer::start_session`] decomposed — same configuration,
//! same overheads, same error, same `stale_views` accounting. A miss
//! (first arrival after an invalidation) simply speculates inline at
//! commit time, which *is* the serial path.
//!
//! # The batch horizon rule
//!
//! The only events the campaign loop schedules *during* execution are
//! lease checks: a heartbeat at `t` schedules an anti-entropy sweep at
//! `t + grace`. Everything else (arrivals, departures, faults,
//! heartbeats) is scheduled up front. So a batch may safely pull every
//! queued event up to the smallest `t + grace` over the heartbeats it
//! has already pulled — nothing the batch will commit can schedule an
//! event *before* that horizon, and an in-loop lease check scheduled
//! *at* the horizon always carries a later sequence number than any
//! already-queued event at the same instant (setup schedules precede
//! all in-loop schedules), so pulling horizon-time events into the
//! batch preserves the serial pop order exactly. Under perfect
//! detection no in-loop schedules exist at all and batches are bounded
//! only by [`PipelineConfig::batch_size`].
//!
//! # Relation to the federated runtime
//!
//! [`crate::federation`] scales the *other* axis: instead of
//! overlapping stages of one domain's admission loop, it shards the
//! domain itself across servers and serializes *cross-shard* effects
//! through the same `(virtual time, sequence number)` total order this
//! module uses for commits. The two runtimes also share the
//! [`crate::profiler::StageTimes`] queue-wait accounting — here the
//! histogram samples are wall-clock waits between batch admission and
//! commit; there they are virtual message-delivery delays recorded into
//! per-shard slots (`shard_queue_wait_us`). Both preserve the same
//! byte-identity contract against the serial loop at their degenerate
//! setting (`batch_size: 1` / one shard).

use crate::domain_server::DomainServer;
use crate::faults::{
    app_template, campaign_schedule, run_fault_campaign_impl, splitmix64, CampaignEvent,
    CampaignOutcome, FaultCampaignConfig, InvariantViolation,
};
use crate::overhead::ConfigOverhead;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};
use ubiqos::{Configuration, ConfigureError};
use ubiqos_graph::{AbstractServiceGraph, DeviceId};
use ubiqos_model::QosVector;
use ubiqos_parallel::par_map_threads;
use ubiqos_sim::{Request, TimedFault};

/// Knobs of the batched pipeline runtime.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PipelineConfig {
    /// Maximum events admitted per batch (≥ 1; `1` degenerates to the
    /// serial loop plus bookkeeping).
    pub batch_size: usize,
    /// Worker threads for the speculative stage fan-out. Explicit —
    /// rather than read from `UBIQOS_THREADS` — so one process can
    /// sweep thread counts without mutating its environment.
    pub threads: usize,
}

impl Default for PipelineConfig {
    fn default() -> Self {
        PipelineConfig {
            batch_size: 64,
            threads: ubiqos_parallel::thread_count(),
        }
    }
}

/// Wall-clock-free counters describing how much pipeline work the
/// batched runtime overlapped (and how often mutations forced it to
/// start over). Serialized into `BENCH_scale.json`.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct PipelineStats {
    /// Batches admitted from the DES queue.
    pub batches: u64,
    /// Speculative configurations computed at batch admission, on the
    /// worker pool, before their commit slot.
    pub primed: u64,
    /// Speculations that had to run inline at commit time (table miss
    /// after a mid-batch mutation) — the serial path.
    pub inline_speculated: u64,
    /// Arrivals that adopted a still-fresh table entry at commit.
    pub adopted: u64,
    /// Wholesale table invalidations triggered by mutating events.
    pub invalidations: u64,
}

/// A speculated pipeline outcome: the configuration and its priced
/// overheads, or the exact error the serial admission path would raise.
pub(crate) type Speculated = Result<(Configuration, ConfigOverhead), ConfigureError>;

/// The batched runtime's speculation table: one entry per distinct
/// `(application template, client device)` pair, each entry a session
/// pipeline that has already run its speculative stages and is waiting
/// for a commit slot (or holding the failure later same-key arrivals
/// will reuse).
#[derive(Default)]
pub(crate) struct SpecTable {
    entries: BTreeMap<(usize, usize), Speculated>,
    pub(crate) stats: PipelineStats,
}

impl SpecTable {
    /// Drops every entry. Called after each committed event that
    /// mutates configuration inputs; entries computed before the
    /// mutation can no longer be adopted.
    pub(crate) fn invalidate(&mut self) {
        if !self.entries.is_empty() {
            self.stats.invalidations += 1;
            self.entries.clear();
        }
    }

    /// Runs the speculative stages for every distinct arrival key in
    /// the freshly admitted batch (skipping keys still cached from
    /// earlier batches), fanned out on `pl.threads` workers. Client
    /// devices are derived from the batch-start `down` set — exactly
    /// the state every key's first commit will observe unless a
    /// mutation invalidates the table first, in which case the stale
    /// entry is dropped before it could be adopted.
    pub(crate) fn prime<'e>(
        &mut self,
        server: &DomainServer,
        pl: &PipelineConfig,
        cfg: &FaultCampaignConfig,
        trace: &[Request],
        down: &BTreeSet<usize>,
        events: impl Iterator<Item = &'e CampaignEvent>,
    ) {
        self.stats.batches += 1;
        let up: Vec<usize> = (0..cfg.devices).filter(|d| !down.contains(d)).collect();
        let mut missing: Vec<(usize, usize)> = Vec::new();
        for ev in events {
            let CampaignEvent::Arrival(i) = *ev else {
                continue;
            };
            let client = up[(splitmix64(cfg.seed ^ i as u64) % up.len() as u64) as usize];
            let key = (trace[i].graph_index, client);
            if !self.entries.contains_key(&key) && !missing.contains(&key) {
                missing.push(key);
            }
        }
        if missing.is_empty() {
            return;
        }
        self.stats.primed += missing.len() as u64;
        // Configured threads are capped at the machine's parallelism:
        // spawning eight workers on one core is pure overhead, and the
        // worker count is wall-clock-only — commit order (and therefore
        // every observable output) never depends on it.
        let workers = pl
            .threads
            .min(std::thread::available_parallelism().map_or(1, |n| n.get()));
        let results = par_map_threads(workers, &missing, |_, &(graph_index, client)| {
            let (_, graph) = app_template(graph_index);
            server.speculate_configure(
                &graph,
                &QosVector::new(),
                DeviceId::from_index(client),
                None,
            )
        });
        for (key, result) in missing.into_iter().zip(results) {
            self.entries.insert(key, result);
        }
    }

    /// Hands the commit stage its speculated outcome: a fresh table
    /// entry when one survives, otherwise an inline (serial-path)
    /// speculation. Failure outcomes are retained — they stay exact
    /// until the next mutation, so a long denial run costs one
    /// configuration instead of one per arrival.
    pub(crate) fn take_or_speculate(
        &mut self,
        server: &DomainServer,
        key: (usize, usize),
        graph: &AbstractServiceGraph,
    ) -> Speculated {
        if let Some(hit) = self.entries.get(&key) {
            self.stats.adopted += 1;
            if hit.is_err() {
                // Failure entries stay put for the next same-key arrival
                // (a long denial run costs one configuration, not one
                // per arrival); success entries are consumed below.
                return hit.clone();
            }
            return self.entries.remove(&key).expect("entry just found");
        }
        self.stats.inline_speculated += 1;
        let speculated =
            server.speculate_configure(graph, &QosVector::new(), DeviceId::from_index(key.1), None);
        if speculated.is_err() {
            self.entries.insert(key, speculated.clone());
        }
        speculated
    }
}

/// Runs one fault-injection campaign on the batched pipeline runtime.
///
/// The observable outcome — event log, digest, and every
/// [`ubiqos::FaultReport`] counter — is byte-identical to
/// [`crate::faults::run_fault_campaign`] on the same config at every
/// `(batch_size, threads)` setting; only wall-clock time and the
/// [`CampaignOutcome::pipeline`] / stage-histogram metadata differ.
/// `tests/pipeline_equivalence.rs` pins this property across batch
/// sizes and thread counts, faults and detector suspicion included.
///
/// # Errors
///
/// Returns the first [`InvariantViolation`], like the serial runtime.
///
/// # Panics
///
/// See [`crate::faults::run_fault_campaign`].
pub fn run_fault_campaign_batched(
    cfg: &FaultCampaignConfig,
    pipeline: &PipelineConfig,
) -> Result<CampaignOutcome, InvariantViolation> {
    run_fault_campaign_impl(cfg, &campaign_schedule(cfg), Some(pipeline))
}

/// [`run_fault_campaign_batched`] against an explicit fault schedule —
/// the batched counterpart of
/// [`crate::faults::run_fault_campaign_with`].
///
/// # Errors
///
/// Returns the first [`InvariantViolation`].
///
/// # Panics
///
/// See [`crate::faults::run_fault_campaign`].
pub fn run_fault_campaign_batched_with(
    cfg: &FaultCampaignConfig,
    schedule: &[TimedFault],
    pipeline: &PipelineConfig,
) -> Result<CampaignOutcome, InvariantViolation> {
    run_fault_campaign_impl(cfg, schedule, Some(pipeline))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::faults::run_fault_campaign;

    #[test]
    fn batched_default_campaign_matches_pinned_serial_digest() {
        let cfg = FaultCampaignConfig::default();
        let serial = run_fault_campaign(&cfg).expect("serial holds");
        for batch_size in [1, 4, 64] {
            let batched = run_fault_campaign_batched(
                &cfg,
                &PipelineConfig {
                    batch_size,
                    threads: 2,
                },
            )
            .expect("batched holds");
            assert_eq!(serial.log.render(), batched.log.render());
            assert_eq!(serial.report, batched.report);
            // The serial digest itself is pinned in
            // tests/fault_injection.rs; equality transfers the pin.
            assert_eq!(batched.report.log_digest, 0x2385_725a_4716_6d1b);
        }
    }

    #[test]
    fn batched_imperfect_detection_matches_serial() {
        let cfg = FaultCampaignConfig {
            detection_grace_h: 1.0,
            heartbeat_period_h: 0.25,
            partitions: 2,
            partition_max: 2,
            heartbeat_loss: 0.3,
            scope_max: 2,
            ..FaultCampaignConfig::default()
        };
        let serial = run_fault_campaign(&cfg).expect("serial holds");
        let batched = run_fault_campaign_batched(
            &cfg,
            &PipelineConfig {
                batch_size: 32,
                threads: 2,
            },
        )
        .expect("batched holds");
        assert_eq!(serial.log.render(), batched.log.render());
        assert_eq!(serial.report, batched.report);
        assert!(serial.report.suspicions > 0, "detector actually fired");
    }

    #[test]
    fn batched_runtime_reports_overlap_stats() {
        let cfg = FaultCampaignConfig::default();
        let batched = run_fault_campaign_batched(
            &cfg,
            &PipelineConfig {
                batch_size: 64,
                threads: 2,
            },
        )
        .expect("batched holds");
        let stats = batched.pipeline.expect("batched runs carry stats");
        assert!(stats.batches > 0);
        assert_eq!(
            stats.adopted + stats.inline_speculated,
            u64::from(batched.report.arrivals),
            "every arrival either adopts a speculation or speculates inline: {stats:?}"
        );
        assert!(
            batched.stages.batch_sizes.total() == stats.batches,
            "one batch-size sample per batch"
        );
        assert!(batched.stages.queue_wait_us.total() > 0);
        let serial = run_fault_campaign(&cfg).expect("serial holds");
        assert!(serial.pipeline.is_none(), "serial runs carry no stats");
        assert_eq!(serial.stages.batch_sizes.total(), 0);
        assert_eq!(serial.stages.queue_wait_us.total(), 0);
    }
}
