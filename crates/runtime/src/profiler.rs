//! The online resource-profiling service (Section 3.1, assumption:
//! "profiling or monitoring services are available to automatically
//! measure the resource requirements for all application services";
//! cf. Abdelzaher's automated profiling and QualProbes).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use ubiqos_model::ResourceVector;

/// Measures component resource requirements with bounded multiplicative
/// noise, modeling an online profiling subsystem.
///
/// Profiles are deterministic per `(seed, sample index)` so experiments
/// are reproducible.
#[derive(Debug, Clone)]
pub struct Profiler {
    rng: StdRng,
    /// Maximum relative measurement error, e.g. 0.1 = ±10%.
    noise: f64,
}

impl Profiler {
    /// Creates a profiler with the given seed and relative noise bound.
    ///
    /// # Panics
    ///
    /// Panics when `noise` is negative or ≥ 1 (a measurement can never be
    /// negative).
    pub fn new(seed: u64, noise: f64) -> Self {
        assert!((0.0..1.0).contains(&noise), "noise must be in [0, 1)");
        Profiler {
            rng: StdRng::seed_from_u64(seed),
            noise,
        }
    }

    /// A noise-free profiler (measurements equal ground truth).
    pub fn exact(seed: u64) -> Self {
        Profiler::new(seed, 0.0)
    }

    /// Measures a component's true requirement vector, returning the
    /// observed (noisy) vector.
    pub fn measure(&mut self, truth: &ResourceVector) -> ResourceVector {
        let observed: Vec<f64> = truth
            .amounts()
            .iter()
            .map(|&v| {
                let factor = if self.noise == 0.0 {
                    1.0
                } else {
                    1.0 + self.rng.gen_range(-self.noise..self.noise)
                };
                (v * factor).max(0.0)
            })
            .collect();
        ResourceVector::new(observed).expect("non-negative by construction")
    }
}

/// A power-of-two bucketed histogram of non-negative integer samples.
///
/// Bucket `0` counts exact zeros; bucket `i ≥ 1` counts samples in
/// `[2^(i-1), 2^i)`. The bucket vector grows lazily to the largest
/// sample seen, so an empty histogram serializes as `[]` and artifacts
/// stay compact. Used for the pipeline runtime's queue-wait (µs) and
/// batch-size distributions in `BENCH_scale.json`.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct PowHistogram {
    /// `counts[i]` = samples in bucket `i` (see type docs).
    pub counts: Vec<u64>,
}

impl PowHistogram {
    /// Records one sample.
    pub fn record(&mut self, value: u64) {
        let bucket = (64 - value.leading_zeros()) as usize;
        if self.counts.len() <= bucket {
            self.counts.resize(bucket + 1, 0);
        }
        self.counts[bucket] += 1;
    }

    /// Total samples recorded.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Inclusive upper bound of bucket `i` (`0` for the zero bucket).
    pub fn bucket_upper(i: usize) -> u64 {
        if i == 0 {
            0
        } else {
            (1u64 << i) - 1
        }
    }

    /// Folds another histogram into this one, bucket-wise.
    pub fn merge(&mut self, other: &PowHistogram) {
        if self.counts.len() < other.counts.len() {
            self.counts.resize(other.counts.len(), 0);
        }
        for (dst, &src) in self.counts.iter_mut().zip(&other.counts) {
            *dst += src;
        }
    }

    /// The smallest bucket upper bound covering at least `q` (in
    /// `[0, 1]`) of the samples — a coarse quantile for rendering.
    pub fn quantile_upper(&self, q: f64) -> u64 {
        let total = self.total();
        if total == 0 {
            return 0;
        }
        let need = (q.clamp(0.0, 1.0) * total as f64).ceil() as u64;
        let mut seen = 0;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= need {
                return Self::bucket_upper(i);
            }
        }
        Self::bucket_upper(self.counts.len().saturating_sub(1))
    }
}

/// Wall-clock totals per configuration-pipeline stage, accumulated by
/// the domain server across every `configure` call.
///
/// These are *real* (wall-clock) milliseconds for `BENCH_configure.json`
/// and performance work — unlike the [`crate::cost_model::CostModel`]'s
/// virtual overheads, they never feed deterministic logs, digests, or
/// the simulated clock, so profiling cannot perturb reproducibility.
///
/// The same struct is the shared stage-accounting type of
/// `BENCH_scale.json`: the pipeline runtime folds its queue-wait and
/// batch-size distributions into the two histograms (both stay empty
/// under the serial runtime).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct StageTimes {
    /// Time inside `ServiceRegistry::discover_all` (memo hits included).
    pub discover_ms: f64,
    /// Composition-tier time minus discovery (OC checks, transcoder
    /// insertion, cache bookkeeping).
    pub compose_ms: f64,
    /// Distribution-tier time (problem construction + solver).
    pub place_ms: f64,
    /// Component download bookkeeping time.
    pub download_ms: f64,
    /// `configure` invocations measured.
    pub configures: u64,
    /// Wall-clock µs each event spent between batch admission (pop from
    /// the DES queue) and its deterministic commit — the pipeline
    /// runtime's queue-wait distribution. Empty under the serial loop.
    pub queue_wait_us: PowHistogram,
    /// Events per admitted batch. Empty under the serial loop.
    pub batch_sizes: PowHistogram,
    /// Queue waits split by the admission queue (shard) that absorbed
    /// them. Slot `s` is shard `s`'s own wait distribution; the merged
    /// view above remains the union. A single-server runtime records
    /// everything into slot 0, so unsharded artifacts stay unchanged
    /// apart from the extra field.
    pub shard_queue_wait_us: Vec<PowHistogram>,
    /// Per-payload retransmission counts of the federation's reliable
    /// transport sublayer, split by sending shard: when a payload is
    /// fully acknowledged, the number of retransmissions it needed
    /// (`0` on a perfect link) is recorded into the sender's slot.
    /// Empty everywhere outside the federated runtime.
    #[serde(default)]
    pub shard_retransmits: Vec<PowHistogram>,
}

/// Grows `slots` to cover `shard` and returns that slot — the shared
/// growth step behind every shard-indexed histogram vector.
fn ensure_shard_slot(slots: &mut Vec<PowHistogram>, shard: usize) -> &mut PowHistogram {
    if slots.len() <= shard {
        slots.resize_with(shard + 1, PowHistogram::default);
    }
    &mut slots[shard]
}

impl StageTimes {
    /// The summed configuration-pipeline time (all four stages).
    pub fn total_ms(&self) -> f64 {
        self.discover_ms + self.compose_ms + self.place_ms + self.download_ms
    }

    /// `discover + compose + place` — the pipeline span a composition
    /// cache (or batched speculation) can shorten; downloads excluded.
    pub fn pipeline_ms(&self) -> f64 {
        self.discover_ms + self.compose_ms + self.place_ms
    }

    /// Records one queue wait attributed to shard `shard`, growing the
    /// per-shard slot vector as needed. Keeps the merged histogram and
    /// the shard slot in sync.
    pub fn record_shard_queue_wait(&mut self, shard: usize, wait_us: u64) {
        self.queue_wait_us.record(wait_us);
        ensure_shard_slot(&mut self.shard_queue_wait_us, shard).record(wait_us);
    }

    /// Records one fully-acknowledged payload's retransmission count
    /// into sending shard `shard`'s slot.
    pub fn record_shard_retransmit(&mut self, shard: usize, retransmits: u64) {
        ensure_shard_slot(&mut self.shard_retransmits, shard).record(retransmits);
    }

    /// Folds another server's stage profile into this one, attributing
    /// its queue waits to shard `shard` — how a federation aggregates N
    /// per-shard servers into one campaign-wide profile.
    pub fn absorb_shard(&mut self, shard: usize, other: &StageTimes) {
        self.discover_ms += other.discover_ms;
        self.compose_ms += other.compose_ms;
        self.place_ms += other.place_ms;
        self.download_ms += other.download_ms;
        self.configures += other.configures;
        self.queue_wait_us.merge(&other.queue_wait_us);
        self.batch_sizes.merge(&other.batch_sizes);
        if other.shard_queue_wait_us.is_empty() {
            // A single-queue profile: every wait it saw belongs to the
            // shard it ran as.
            ensure_shard_slot(&mut self.shard_queue_wait_us, shard).merge(&other.queue_wait_us);
        } else {
            // Already shard-aware: slot indices are global, fold verbatim.
            for (s, h) in other.shard_queue_wait_us.iter().enumerate() {
                ensure_shard_slot(&mut self.shard_queue_wait_us, s).merge(h);
            }
        }
        for (s, h) in other.shard_retransmits.iter().enumerate() {
            ensure_shard_slot(&mut self.shard_retransmits, s).merge(h);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stage_times_sum() {
        let t = StageTimes {
            discover_ms: 1.0,
            compose_ms: 2.0,
            place_ms: 3.0,
            download_ms: 4.0,
            configures: 2,
            ..StageTimes::default()
        };
        assert!((t.total_ms() - 10.0).abs() < 1e-12);
        assert!((t.pipeline_ms() - 6.0).abs() < 1e-12);
    }

    #[test]
    fn pow_histogram_buckets_by_bit_width() {
        let mut h = PowHistogram::default();
        for v in [0, 0, 1, 2, 3, 4, 7, 8, 1024] {
            h.record(v);
        }
        // zeros -> bucket 0; 1 -> bucket 1; {2,3} -> bucket 2;
        // {4,7} -> bucket 3; 8 -> bucket 4; 1024 -> bucket 11.
        assert_eq!(h.counts[0], 2);
        assert_eq!(h.counts[1], 1);
        assert_eq!(h.counts[2], 2);
        assert_eq!(h.counts[3], 2);
        assert_eq!(h.counts[4], 1);
        assert_eq!(h.counts[11], 1);
        assert_eq!(h.total(), 9);
        assert_eq!(PowHistogram::bucket_upper(0), 0);
        assert_eq!(PowHistogram::bucket_upper(3), 7);
        assert_eq!(h.quantile_upper(1.0), 2047);
        assert!(h.quantile_upper(0.5) <= 7);
        assert_eq!(PowHistogram::default().quantile_upper(0.5), 0);
    }

    #[test]
    fn shard_slots_grow_on_demand_and_absorb() {
        let mut t = StageTimes::default();
        t.record_shard_queue_wait(2, 5);
        t.record_shard_retransmit(1, 3);
        assert_eq!(t.shard_queue_wait_us.len(), 3);
        assert_eq!(t.shard_queue_wait_us[2].total(), 1);
        assert_eq!(t.queue_wait_us.total(), 1);
        assert_eq!(t.shard_retransmits.len(), 2);
        assert_eq!(t.shard_retransmits[1].total(), 1);
        let mut sum = StageTimes::default();
        sum.absorb_shard(0, &t);
        assert_eq!(sum.shard_queue_wait_us[2].total(), 1);
        assert_eq!(sum.shard_retransmits[1].total(), 1);
    }

    #[test]
    fn exact_profiler_is_identity() {
        let mut p = Profiler::exact(1);
        let truth = ResourceVector::mem_cpu(16.0, 25.0);
        assert_eq!(p.measure(&truth), truth);
    }

    #[test]
    fn noise_is_bounded() {
        let mut p = Profiler::new(2, 0.1);
        let truth = ResourceVector::mem_cpu(100.0, 50.0);
        for _ in 0..100 {
            let m = p.measure(&truth);
            assert!(m[0] >= 90.0 - 1e-9 && m[0] <= 110.0 + 1e-9, "mem {m:?}");
            assert!(m[1] >= 45.0 - 1e-9 && m[1] <= 55.0 + 1e-9, "cpu {m:?}");
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let truth = ResourceVector::mem_cpu(10.0, 10.0);
        let a = Profiler::new(7, 0.2).measure(&truth);
        let b = Profiler::new(7, 0.2).measure(&truth);
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "noise must be in")]
    fn rejects_out_of_range_noise() {
        let _ = Profiler::new(0, 1.5);
    }
}
