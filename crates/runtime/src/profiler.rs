//! The online resource-profiling service (Section 3.1, assumption:
//! "profiling or monitoring services are available to automatically
//! measure the resource requirements for all application services";
//! cf. Abdelzaher's automated profiling and QualProbes).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use ubiqos_model::ResourceVector;

/// Measures component resource requirements with bounded multiplicative
/// noise, modeling an online profiling subsystem.
///
/// Profiles are deterministic per `(seed, sample index)` so experiments
/// are reproducible.
#[derive(Debug, Clone)]
pub struct Profiler {
    rng: StdRng,
    /// Maximum relative measurement error, e.g. 0.1 = ±10%.
    noise: f64,
}

impl Profiler {
    /// Creates a profiler with the given seed and relative noise bound.
    ///
    /// # Panics
    ///
    /// Panics when `noise` is negative or ≥ 1 (a measurement can never be
    /// negative).
    pub fn new(seed: u64, noise: f64) -> Self {
        assert!((0.0..1.0).contains(&noise), "noise must be in [0, 1)");
        Profiler {
            rng: StdRng::seed_from_u64(seed),
            noise,
        }
    }

    /// A noise-free profiler (measurements equal ground truth).
    pub fn exact(seed: u64) -> Self {
        Profiler::new(seed, 0.0)
    }

    /// Measures a component's true requirement vector, returning the
    /// observed (noisy) vector.
    pub fn measure(&mut self, truth: &ResourceVector) -> ResourceVector {
        let observed: Vec<f64> = truth
            .amounts()
            .iter()
            .map(|&v| {
                let factor = if self.noise == 0.0 {
                    1.0
                } else {
                    1.0 + self.rng.gen_range(-self.noise..self.noise)
                };
                (v * factor).max(0.0)
            })
            .collect();
        ResourceVector::new(observed).expect("non-negative by construction")
    }
}

/// Wall-clock totals per configuration-pipeline stage, accumulated by
/// the domain server across every `configure` call.
///
/// These are *real* (wall-clock) milliseconds for `BENCH_configure.json`
/// and performance work — unlike the [`crate::cost_model::CostModel`]'s
/// virtual overheads, they never feed deterministic logs, digests, or
/// the simulated clock, so profiling cannot perturb reproducibility.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct StageTimes {
    /// Time inside `ServiceRegistry::discover_all` (memo hits included).
    pub discover_ms: f64,
    /// Composition-tier time minus discovery (OC checks, transcoder
    /// insertion, cache bookkeeping).
    pub compose_ms: f64,
    /// Distribution-tier time (problem construction + solver).
    pub place_ms: f64,
    /// Component download bookkeeping time.
    pub download_ms: f64,
    /// `configure` invocations measured.
    pub configures: u64,
}

impl StageTimes {
    /// The summed configuration-pipeline time (all four stages).
    pub fn total_ms(&self) -> f64 {
        self.discover_ms + self.compose_ms + self.place_ms + self.download_ms
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stage_times_sum() {
        let t = StageTimes {
            discover_ms: 1.0,
            compose_ms: 2.0,
            place_ms: 3.0,
            download_ms: 4.0,
            configures: 2,
        };
        assert!((t.total_ms() - 10.0).abs() < 1e-12);
    }

    #[test]
    fn exact_profiler_is_identity() {
        let mut p = Profiler::exact(1);
        let truth = ResourceVector::mem_cpu(16.0, 25.0);
        assert_eq!(p.measure(&truth), truth);
    }

    #[test]
    fn noise_is_bounded() {
        let mut p = Profiler::new(2, 0.1);
        let truth = ResourceVector::mem_cpu(100.0, 50.0);
        for _ in 0..100 {
            let m = p.measure(&truth);
            assert!(m[0] >= 90.0 - 1e-9 && m[0] <= 110.0 + 1e-9, "mem {m:?}");
            assert!(m[1] >= 45.0 - 1e-9 && m[1] <= 55.0 + 1e-9, "cpu {m:?}");
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let truth = ResourceVector::mem_cpu(10.0, 10.0);
        let a = Profiler::new(7, 0.2).measure(&truth);
        let b = Profiler::new(7, 0.2).measure(&truth);
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "noise must be in")]
    fn rejects_out_of_range_noise() {
        let _ = Profiler::new(0, 1.5);
    }
}
