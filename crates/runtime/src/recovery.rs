//! Outcome types for the staged degrade → park → retry → drop recovery
//! pipeline.
//!
//! PR 2's recovery was binary: after a fault, every live session was
//! re-placed from scratch and any session that no longer fit was dropped
//! on the spot. This module carries the vocabulary of the staged pipeline
//! that replaces it:
//!
//! * sessions untouched by the fault are **kept** as-is (incremental
//!   re-placement: O(affected), not O(sessions));
//! * affected sessions are re-placed, walking the
//!   [`DegradationLadder`](ubiqos_composition::DegradationLadder) from
//!   full quality downwards until a level fits (**degraded** instead of
//!   dropped);
//! * sessions no level can place are **parked** in the
//!   [`RetryQueue`](crate::retry_queue::RetryQueue) with capped
//!   exponential backoff, releasing their resources while they wait;
//! * parked sessions whose retry succeeds are **re-admitted**; only
//!   sessions that exhaust their retry budget are **dropped**, each with
//!   the [`ConfigureError`] witnessing genuine unplaceability.

use crate::domain_server::SessionId;
use ubiqos::ConfigureError;

/// A quality-level change applied to one session during recovery.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Degradation {
    /// The ladder factor the session ran at before the pass.
    pub from: f64,
    /// The ladder factor it runs at now.
    pub to: f64,
}

/// How a recovery pass selects the sessions to re-place.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RecoveryMode {
    /// Derive the invalid set from the fault's resource delta: only
    /// sessions touching a changed-and-overcommitted device or link are
    /// re-placed. O(affected) work per fault.
    #[default]
    Incremental,
    /// Scan every device and link for overcommitment and re-place every
    /// session touching one. O(sessions) work per fault — the reference
    /// the incremental mode is cross-checked against (the two must select
    /// identical sets, because only resources the fault changed can have
    /// become overcommitted).
    Full,
}

/// The outcome of one recovery pass (or one retry-queue drain).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct RecoveryReport {
    /// Sessions re-placed at full quality (ladder factor 1.0).
    pub recovered: Vec<SessionId>,
    /// Sessions re-placed at a reduced quality level, with the factor
    /// transition. `to < from` is a downgrade; `to > from` means a
    /// previously degraded session climbed back up the ladder.
    pub degraded: Vec<(SessionId, Degradation)>,
    /// Sessions no ladder level could place, moved to the retry queue
    /// (their resources are released while they wait).
    pub parked: Vec<SessionId>,
    /// Previously parked sessions re-admitted by a successful retry.
    pub readmitted: Vec<SessionId>,
    /// Sessions dropped after exhausting the retry budget.
    pub dropped: Vec<SessionId>,
    /// For each dropped session, the configuration error witnessing that
    /// it was genuinely unplaceable at drop time (same order as
    /// [`RecoveryReport::dropped`]).
    pub drop_errors: Vec<(SessionId, ConfigureError)>,
    /// Live sessions at the start of the pass — the work a full
    /// O(sessions) re-placement would have done.
    pub considered: usize,
    /// Sessions the pass actually re-examined (touched a changed or
    /// overcommitted resource) — the O(affected) work actually done.
    pub affected: usize,
}

impl RecoveryReport {
    /// Whether the pass changed nothing (no re-placements, parks,
    /// re-admissions, or drops).
    pub fn is_empty(&self) -> bool {
        self.recovered.is_empty()
            && self.degraded.is_empty()
            && self.parked.is_empty()
            && self.readmitted.is_empty()
            && self.dropped.is_empty()
    }

    /// Successful re-placements in this pass (full-quality plus
    /// degraded).
    pub fn replacements(&self) -> usize {
        self.recovered.len() + self.degraded.len()
    }

    /// Folds another report into this one (e.g. the retry-queue drain
    /// that ends a recovery pass). `considered`/`affected` keep this
    /// report's values — they describe the pass, not the drain.
    pub fn absorb(&mut self, other: RecoveryReport) {
        self.recovered.extend(other.recovered);
        self.degraded.extend(other.degraded);
        self.parked.extend(other.parked);
        self.readmitted.extend(other.readmitted);
        self.dropped.extend(other.dropped);
        self.drop_errors.extend(other.drop_errors);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_report_is_empty() {
        let r = RecoveryReport::default();
        assert!(r.is_empty());
        assert_eq!(r.replacements(), 0);
    }

    #[test]
    #[allow(clippy::type_complexity)]
    fn any_fate_makes_the_report_non_empty() {
        let id = SessionId::from_raw(3);
        let fates: Vec<Box<dyn Fn(&mut RecoveryReport)>> = vec![
            Box::new(move |r| r.recovered.push(id)),
            Box::new(move |r| r.degraded.push((id, Degradation { from: 1.0, to: 0.5 }))),
            Box::new(move |r| r.parked.push(id)),
            Box::new(move |r| r.readmitted.push(id)),
            Box::new(move |r| r.dropped.push(id)),
        ];
        for f in fates {
            let mut r = RecoveryReport::default();
            f(&mut r);
            assert!(!r.is_empty());
        }
    }

    #[test]
    fn replacements_count_full_and_degraded() {
        let id = SessionId::from_raw(0);
        let mut r = RecoveryReport::default();
        r.recovered.push(id);
        r.degraded.push((
            id,
            Degradation {
                from: 1.0,
                to: 0.75,
            },
        ));
        assert_eq!(r.replacements(), 2);
    }
}
