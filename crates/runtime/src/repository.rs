//! The component repository — dynamic downloading of service code.
//!
//! "In the video conferencing application, we assume that all required
//! service components need to be downloaded on demand from the component
//! repository … the dynamic downloading overhead, which occupies the
//! largest proportion of the total overhead, can often be avoided if the
//! required components are already on the target devices."

use crate::cost_model::{CostModel, LinkKind};
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;

/// Tracks which component bundles are installed on which devices and
/// prices the downloads for the ones that are not.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ComponentRepository {
    /// `(device index, instance id)` pairs already installed.
    installed: BTreeSet<(usize, String)>,
}

impl ComponentRepository {
    /// An empty repository: nothing pre-installed anywhere.
    pub fn new() -> Self {
        Self::default()
    }

    /// Marks an instance as pre-installed on a device.
    pub fn preinstall(&mut self, device: usize, instance_id: impl Into<String>) {
        self.installed.insert((device, instance_id.into()));
    }

    /// Whether an instance is installed on a device.
    pub fn is_installed(&self, device: usize, instance_id: &str) -> bool {
        self.installed.contains(&(device, instance_id.to_owned()))
    }

    /// Ensures `instance_id` (a bundle of `size_mb`) is available on
    /// `device`, returning the download time in ms (0 when already
    /// installed). The instance is installed afterwards, so repeated
    /// configurations pay nothing — exactly the paper's "can often be
    /// avoided" observation.
    pub fn ensure_installed(
        &mut self,
        device: usize,
        instance_id: &str,
        size_mb: f64,
        link: LinkKind,
        costs: &CostModel,
    ) -> f64 {
        if self.is_installed(device, instance_id) {
            return 0.0;
        }
        self.installed.insert((device, instance_id.to_owned()));
        costs.download_ms(size_mb, link)
    }

    /// Number of installed `(device, instance)` pairs.
    pub fn installed_count(&self) -> usize {
        self.installed.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ensure_downloads_once() {
        let mut repo = ComponentRepository::new();
        let costs = CostModel::default();
        let first = repo.ensure_installed(0, "player", 2.0, LinkKind::Ethernet, &costs);
        assert!(first > 0.0);
        let second = repo.ensure_installed(0, "player", 2.0, LinkKind::Ethernet, &costs);
        assert_eq!(second, 0.0, "already installed: no second download");
        // Same instance on a different device downloads again.
        let other = repo.ensure_installed(1, "player", 2.0, LinkKind::Ethernet, &costs);
        assert!(other > 0.0);
        assert_eq!(repo.installed_count(), 2);
    }

    #[test]
    fn preinstall_avoids_download() {
        let mut repo = ComponentRepository::new();
        let costs = CostModel::default();
        repo.preinstall(2, "server");
        assert!(repo.is_installed(2, "server"));
        assert_eq!(
            repo.ensure_installed(2, "server", 50.0, LinkKind::Wireless, &costs),
            0.0
        );
    }

    #[test]
    fn wireless_download_costs_more() {
        let mut a = ComponentRepository::new();
        let mut b = ComponentRepository::new();
        let costs = CostModel::default();
        let wired = a.ensure_installed(0, "x", 4.0, LinkKind::Ethernet, &costs);
        let wireless = b.ensure_installed(0, "x", 4.0, LinkKind::Wireless, &costs);
        assert!(wireless > wired);
    }
}
