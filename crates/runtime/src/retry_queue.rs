//! The parked-session retry queue: capped exponential backoff on the
//! simulation's virtual clock.
//!
//! When no [`DegradationLadder`](ubiqos_composition::DegradationLadder)
//! level can place a session, the session is *parked* here instead of
//! dropped: its resources are released, and the domain server retries it
//! deterministically whenever virtual time passes its `next_retry_ms`.
//! Each failed retry doubles the backoff (capped), and only when the
//! attempt budget is exhausted is the session dropped — with the last
//! [`ConfigureError`](ubiqos::ConfigureError) as the witness that it was
//! genuinely unplaceable.
//!
//! Everything is keyed and iterated in session-id order over a
//! [`BTreeMap`], and all times are virtual milliseconds driven by
//! [`DomainServer::play`](crate::DomainServer::play) — no wall clocks, so
//! campaigns stay byte-for-byte reproducible.

use crate::domain_server::Session;
use std::collections::BTreeMap;
use ubiqos::ConfigureError;

/// Backoff and budget policy for parked-session retries.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetryPolicy {
    /// Backoff before the first retry, in virtual milliseconds.
    pub base_backoff_ms: f64,
    /// Ceiling the doubling backoff saturates at.
    pub max_backoff_ms: f64,
    /// Failed retries allowed before the session is dropped. `0` disables
    /// parking entirely: ladder exhaustion drops immediately (the strict
    /// PR 2 behaviour).
    pub max_attempts: u32,
}

impl Default for RetryPolicy {
    /// Two virtual minutes base, one virtual hour cap, eight attempts.
    fn default() -> Self {
        RetryPolicy {
            base_backoff_ms: 120_000.0,
            max_backoff_ms: 3_600_000.0,
            max_attempts: 8,
        }
    }
}

impl RetryPolicy {
    /// The policy that never parks: drop on ladder exhaustion.
    pub fn strict() -> Self {
        RetryPolicy {
            max_attempts: 0,
            ..RetryPolicy::default()
        }
    }

    /// The backoff after `attempts` failed retries: `base * 2^attempts`,
    /// saturating at the cap.
    pub fn backoff_ms(&self, attempts: u32) -> f64 {
        let factor = 2.0_f64.powi(attempts.min(63) as i32);
        (self.base_backoff_ms * factor).min(self.max_backoff_ms)
    }
}

/// One session waiting in the retry queue.
#[derive(Debug, Clone)]
pub struct ParkedSession {
    /// The session, exactly as it was when parked (configuration stale,
    /// resources refunded).
    pub session: Session,
    /// Failed retries so far.
    pub attempts: u32,
    /// Virtual time the next retry becomes due.
    pub next_retry_ms: f64,
    /// The error from the most recent placement failure (every ladder
    /// level failed) — the drop witness if the budget runs out.
    pub last_error: ConfigureError,
}

/// Deterministic queue of parked sessions, keyed by raw session id.
#[derive(Debug, Clone, Default)]
pub struct RetryQueue {
    parked: BTreeMap<u64, ParkedSession>,
}

impl RetryQueue {
    /// An empty queue.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of parked sessions.
    pub fn len(&self) -> usize {
        self.parked.len()
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.parked.is_empty()
    }

    /// Parks a session (first park: zero attempts used).
    pub fn park(
        &mut self,
        id: u64,
        session: Session,
        error: ConfigureError,
        now_ms: f64,
        policy: &RetryPolicy,
    ) {
        self.parked.insert(
            id,
            ParkedSession {
                session,
                attempts: 0,
                next_retry_ms: now_ms + policy.backoff_ms(0),
                last_error: error,
            },
        );
    }

    /// Removes a parked session by id (e.g. its user departed).
    pub fn remove(&mut self, id: u64) -> Option<ParkedSession> {
        self.parked.remove(&id)
    }

    /// Re-inserts a session taken out for a retry attempt.
    pub fn reinsert(&mut self, id: u64, parked: ParkedSession) {
        self.parked.insert(id, parked);
    }

    /// Ids whose retries are due at `now_ms`, in id order.
    pub fn due(&self, now_ms: f64) -> Vec<u64> {
        self.parked
            .iter()
            .filter(|(_, p)| p.next_retry_ms <= now_ms)
            .map(|(&id, _)| id)
            .collect()
    }

    /// Iterates over every parked session in id order.
    pub fn iter(&self) -> impl Iterator<Item = (u64, &ParkedSession)> {
        self.parked.iter().map(|(&id, p)| (id, p))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_doubles_and_saturates() {
        let p = RetryPolicy::default();
        assert_eq!(p.backoff_ms(0), 120_000.0);
        assert_eq!(p.backoff_ms(1), 240_000.0);
        assert_eq!(p.backoff_ms(2), 480_000.0);
        assert_eq!(p.backoff_ms(30), p.max_backoff_ms);
        assert_eq!(p.backoff_ms(u32::MAX), p.max_backoff_ms);
    }

    #[test]
    fn strict_policy_has_no_budget() {
        assert_eq!(RetryPolicy::strict().max_attempts, 0);
    }
}
