//! The parked-session retry queue: capped exponential backoff on the
//! simulation's virtual clock.
//!
//! When no [`DegradationLadder`](ubiqos_composition::DegradationLadder)
//! level can place a session, the session is *parked* here instead of
//! dropped: its resources are released, and the domain server retries it
//! deterministically whenever virtual time passes its `next_retry_ms`.
//! Each failed retry doubles the backoff (capped), and only when the
//! attempt budget is exhausted is the session dropped — with the last
//! [`ConfigureError`](ubiqos::ConfigureError) as the witness that it was
//! genuinely unplaceable.
//!
//! Retries are attempted in a deterministic *priority* order rather than
//! raw id order: longest-parked first (fairness — nobody starves behind
//! a newer session), then best pre-fault QoS satisfaction (the sessions
//! that were delivering the most value come back first), then smallest
//! resource footprint (easiest to fit into scarce residual capacity),
//! with the session id as the final tiebreak. All inputs to the ordering
//! are snapshotted at park time, and all times are virtual milliseconds
//! driven by [`DomainServer::play`](crate::DomainServer::play) — no wall
//! clocks, so campaigns stay byte-for-byte reproducible.

use crate::domain_server::Session;
use std::collections::BTreeMap;
use ubiqos::ConfigureError;

/// Backoff and budget policy for parked-session retries.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetryPolicy {
    /// Backoff before the first retry, in virtual milliseconds.
    pub base_backoff_ms: f64,
    /// Ceiling the doubling backoff saturates at.
    pub max_backoff_ms: f64,
    /// Failed retries allowed before the session is dropped. `0` disables
    /// parking entirely: ladder exhaustion drops immediately (the strict
    /// PR 2 behaviour).
    pub max_attempts: u32,
}

impl Default for RetryPolicy {
    /// Two virtual minutes base, one virtual hour cap, eight attempts.
    fn default() -> Self {
        RetryPolicy {
            base_backoff_ms: 120_000.0,
            max_backoff_ms: 3_600_000.0,
            max_attempts: 8,
        }
    }
}

impl RetryPolicy {
    /// The policy that never parks: drop on ladder exhaustion.
    pub fn strict() -> Self {
        RetryPolicy {
            max_attempts: 0,
            ..RetryPolicy::default()
        }
    }

    /// The backoff after `attempts` failed retries: `base * 2^attempts`,
    /// saturating at the cap.
    pub fn backoff_ms(&self, attempts: u32) -> f64 {
        let factor = 2.0_f64.powi(attempts.min(63) as i32);
        (self.base_backoff_ms * factor).min(self.max_backoff_ms)
    }
}

/// One session waiting in the retry queue.
#[derive(Debug, Clone)]
pub struct ParkedSession {
    /// The session, exactly as it was when parked (configuration stale,
    /// resources refunded).
    pub session: Session,
    /// Failed retries so far.
    pub attempts: u32,
    /// Virtual time the session was first parked (priority key: older
    /// parks retry first).
    pub parked_at_ms: f64,
    /// The session's QoS satisfaction when parked (priority key: better
    /// sessions retry first).
    pub satisfaction: f64,
    /// Total resource demand of the session's last configuration
    /// (priority key: lighter sessions retry first).
    pub footprint: f64,
    /// Virtual time the next retry becomes due.
    pub next_retry_ms: f64,
    /// The error from the most recent placement failure (every ladder
    /// level failed) — the drop witness if the budget runs out.
    pub last_error: ConfigureError,
}

/// Deterministic queue of parked sessions, keyed by raw session id.
#[derive(Debug, Clone, Default)]
pub struct RetryQueue {
    parked: BTreeMap<u64, ParkedSession>,
}

impl RetryQueue {
    /// An empty queue.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of parked sessions.
    pub fn len(&self) -> usize {
        self.parked.len()
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.parked.is_empty()
    }

    /// Whether session `id` is currently parked — the hook federation
    /// handoff tests use to assert a suspected-destination move landed
    /// in the retry queue rather than being duplicated or leaked.
    pub fn contains(&self, id: u64) -> bool {
        self.parked.contains_key(&id)
    }

    /// Parks a session (first park: zero attempts used). The priority
    /// keys — park time, QoS satisfaction, resource footprint — are
    /// snapshotted here so later retries rank deterministically.
    pub fn park(
        &mut self,
        id: u64,
        session: Session,
        error: ConfigureError,
        now_ms: f64,
        policy: &RetryPolicy,
    ) {
        let satisfaction = session.qos_satisfaction();
        let footprint = session
            .configuration
            .app
            .graph
            .components()
            .map(|(_, c)| c.resources().amounts().iter().sum::<f64>())
            .sum();
        self.parked.insert(
            id,
            ParkedSession {
                session,
                attempts: 0,
                parked_at_ms: now_ms,
                satisfaction,
                footprint,
                next_retry_ms: now_ms + policy.backoff_ms(0),
                last_error: error,
            },
        );
    }

    /// Removes a parked session by id (e.g. its user departed).
    pub fn remove(&mut self, id: u64) -> Option<ParkedSession> {
        self.parked.remove(&id)
    }

    /// Re-inserts a session taken out for a retry attempt.
    pub fn reinsert(&mut self, id: u64, parked: ParkedSession) {
        self.parked.insert(id, parked);
    }

    /// Ids whose retries are due at `now_ms`, in priority order.
    pub fn due(&self, now_ms: f64) -> Vec<u64> {
        self.ranked(|p| p.next_retry_ms <= now_ms)
    }

    /// Every parked id in priority order, backoff ignored — the order an
    /// *eager* retry pass (triggered by a recovery event rather than the
    /// backoff poll) attempts re-admission in.
    pub fn all_in_priority_order(&self) -> Vec<u64> {
        self.ranked(|_| true)
    }

    /// Ids matching `keep`, sorted by (park time asc, satisfaction desc,
    /// footprint asc, id asc). `f64::total_cmp` keeps the sort total and
    /// deterministic.
    fn ranked(&self, keep: impl Fn(&ParkedSession) -> bool) -> Vec<u64> {
        let mut ids: Vec<u64> = self
            .parked
            .iter()
            .filter(|(_, p)| keep(p))
            .map(|(&id, _)| id)
            .collect();
        ids.sort_by(|a, b| {
            let pa = &self.parked[a];
            let pb = &self.parked[b];
            pa.parked_at_ms
                .total_cmp(&pb.parked_at_ms)
                .then(pb.satisfaction.total_cmp(&pa.satisfaction))
                .then(pa.footprint.total_cmp(&pb.footprint))
                .then(a.cmp(b))
        });
        ids
    }

    /// Iterates over every parked session in id order.
    pub fn iter(&self) -> impl Iterator<Item = (u64, &ParkedSession)> {
        self.parked.iter().map(|(&id, p)| (id, p))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ubiqos::Configuration;
    use ubiqos_composition::{ComposedApplication, OcReport};
    use ubiqos_graph::{Cut, DeviceId, ServiceComponent, ServiceGraph};
    use ubiqos_model::{QosVector, ResourceVector};

    /// A minimal session whose only distinguishing feature is its
    /// component resource footprint.
    fn session_with_footprint(mem: f64) -> Session {
        let mut graph = ServiceGraph::new();
        graph.add_component(
            ServiceComponent::builder("c")
                .resources(ResourceVector::mem_cpu(mem, 0.0))
                .build(),
        );
        let cut = Cut::from_assignment(&graph, vec![0], 1).unwrap();
        Session {
            name: "t".into(),
            abstract_graph: ubiqos_graph::AbstractServiceGraph::new(),
            user_qos: QosVector::new(),
            client_device: DeviceId::from_index(0),
            domain: None,
            configuration: Configuration {
                app: ComposedApplication {
                    graph,
                    report: OcReport::default(),
                    instances: Vec::new(),
                },
                cut,
                cost: 0.0,
            },
            position_s: 0.0,
            degrade_factor: 1.0,
            overhead_log: Vec::new(),
        }
    }

    #[test]
    fn retry_order_is_wait_then_satisfaction_then_footprint() {
        let policy = RetryPolicy::default();
        let err = || {
            ConfigureError::Composition(ubiqos_composition::CompositionError::MissingService {
                service_type: "x".into(),
                depth: 0,
            })
        };
        let mut q = RetryQueue::new();
        // Session 5: parked late.
        q.park(5, session_with_footprint(1.0), err(), 1000.0, &policy);
        // Sessions 7 and 3: parked together at t=0; 7 is lighter.
        q.park(7, session_with_footprint(2.0), err(), 0.0, &policy);
        q.park(3, session_with_footprint(8.0), err(), 0.0, &policy);
        // Session 9: parked at t=0 too, but with a *worse* satisfaction
        // snapshot than the perfect 1.0 of the empty-QoS sessions.
        q.park(9, session_with_footprint(0.5), err(), 0.0, &policy);
        if let Some(mut p) = q.remove(9) {
            p.satisfaction = 0.3;
            q.reinsert(9, p);
        }

        // Oldest first; equal ages ranked by satisfaction desc, then
        // footprint asc; the newest last regardless of weight.
        assert_eq!(q.all_in_priority_order(), vec![7, 3, 9, 5]);
        // `due` applies the same ranking to the backoff-filtered set.
        assert_eq!(q.due(policy.backoff_ms(0)), vec![7, 3, 9]);
        assert_eq!(
            q.due(1000.0 + policy.backoff_ms(0)),
            vec![7, 3, 9, 5],
            "everything due ranks identically"
        );
    }

    #[test]
    fn backoff_doubles_and_saturates() {
        let p = RetryPolicy::default();
        assert_eq!(p.backoff_ms(0), 120_000.0);
        assert_eq!(p.backoff_ms(1), 240_000.0);
        assert_eq!(p.backoff_ms(2), 480_000.0);
        assert_eq!(p.backoff_ms(30), p.max_backoff_ms);
        assert_eq!(p.backoff_ms(u32::MAX), p.max_backoff_ms);
    }

    #[test]
    fn strict_policy_has_no_budget() {
        assert_eq!(RetryPolicy::strict().max_attempts, 0);
    }
}
