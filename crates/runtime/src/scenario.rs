//! The scripted four-event prototype experiment behind Figures 3 and 4.
//!
//! | Event | Content |
//! |-------|---------|
//! | 1 | Start mobile audio-on-demand; user at desktop2; CD-quality request |
//! | 2 | Switch desktop → PDA over the wireless link; music continues from the interruption point (an MPEG2WAV transcoder appears) |
//! | 3 | Switch back from the PDA to desktop3 |
//! | 4 | Start video conferencing on the workstations; video 25 fps + audio 6 chunk/s; every component downloaded on demand |
//!
//! Events 1-3 assume the audio components are pre-installed ("no dynamic
//! downloading overhead involved"); event 4 downloads everything from the
//! component repository.

use crate::apps;
use crate::domain_server::DomainServer;
use crate::overhead::ConfigOverhead;
use crate::streaming::DeliveredQos;
use serde::{Deserialize, Serialize};
use ubiqos::ConfigureError;
use ubiqos_graph::DeviceId;

/// The report for one scenario event (one bar of Figure 4 plus one row of
/// Figure 3).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EventReport {
    /// Event label 1-4, matching the paper's figures.
    pub label: u8,
    /// What happened.
    pub description: String,
    /// Where each component landed: `(component name, device name)`.
    pub placement: Vec<(String, String)>,
    /// Delivered QoS at every sink (Figure 3's "Measured QoS").
    pub measured_qos: Vec<DeliveredQos>,
    /// The configuration overhead breakdown (Figure 4).
    pub overhead: ConfigOverhead,
}

impl EventReport {
    /// Renders the report as one block of text.
    pub fn render(&self) -> String {
        let mut out = format!("event {}: {}\n", self.label, self.description);
        out.push_str("  placement: ");
        for (i, (c, d)) in self.placement.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str(&format!("{c} -> {d}"));
        }
        out.push('\n');
        for q in &self.measured_qos {
            out.push_str(&format!("  measured: {} @ {:.0} fps\n", q.sink, q.fps));
        }
        out.push_str(&format!("  overhead: {}\n", self.overhead));
        out
    }
}

/// Runs the full four-event prototype scenario, returning one report per
/// event.
///
/// # Errors
///
/// Propagates [`ConfigureError`] if any configuration step fails — with
/// the shipped environments and registries, none does.
pub fn run_prototype_scenario() -> Result<Vec<EventReport>, ConfigureError> {
    let mut reports = Vec::with_capacity(4);

    // --- Audio-on-demand domain (events 1-3). --------------------------
    let (env, links, props) = apps::audio_environment();
    let device_names: Vec<String> = env.devices().iter().map(|d| d.name().to_owned()).collect();
    let mut server = DomainServer::new(env, links, props);
    apps::register_audio_services(server.registry_mut());
    // "We assume that the required service components are already
    // installed on the target devices in advance."
    for d in 0..4 {
        for inst in ["audio-server@desktop1", "mpeg-player", "wav-player"] {
            server.repository_mut().preinstall(d, inst);
        }
    }

    // Event 1: start on desktop2.
    let session = server.start_session(
        "mobile audio-on-demand",
        apps::audio_on_demand_app(),
        apps::audio_user_qos(),
        DeviceId::from_index(1),
    )?;
    reports.push(report_from(
        &server,
        session,
        1,
        "start mobile audio-on-demand on desktop2; user QoS: CD quality music",
        &device_names,
    ));

    // Event 2: switch to the PDA over the wireless link.
    server.play(60.0);
    server.switch_device(session, DeviceId::from_index(2))?;
    reports.push(report_from(
        &server,
        session,
        2,
        "switch from desktop to PDA (wireless); music continues from the interruption point",
        &device_names,
    ));

    // Event 3: switch back to desktop3.
    server.play(60.0);
    server.switch_device(session, DeviceId::from_index(3))?;
    reports.push(report_from(
        &server,
        session,
        3,
        "switch back from PDA to desktop3",
        &device_names,
    ));

    // --- Video-conferencing domain (event 4). ---------------------------
    let (env, links, props) = apps::conference_environment();
    let ws_names: Vec<String> = env.devices().iter().map(|d| d.name().to_owned()).collect();
    let mut conf = DomainServer::new(env, links, props);
    apps::register_conference_services(conf.registry_mut());
    // Nothing pre-installed: "all required service components need to be
    // downloaded on demand from the component repository".
    let session4 = conf.start_session(
        "video conferencing",
        apps::video_conference_app(),
        apps::conference_user_qos(),
        DeviceId::from_index(2),
    )?;
    reports.push(report_from(
        &conf,
        session4,
        4,
        "start video conferencing on the workstations; user QoS: video 25fps, audio 6fps",
        &ws_names,
    ));

    Ok(reports)
}

fn report_from(
    server: &DomainServer,
    session: crate::domain_server::SessionId,
    label: u8,
    description: &str,
    device_names: &[String],
) -> EventReport {
    let s = server.session(session).expect("session is live");
    let placement = s
        .configuration
        .app
        .graph
        .components()
        .map(|(id, c)| {
            let device = s
                .configuration
                .cut
                .part_of(id)
                .and_then(|d| device_names.get(d).cloned())
                .unwrap_or_else(|| "?".into());
            (c.name().to_owned(), device)
        })
        .collect();
    EventReport {
        label,
        description: description.to_owned(),
        placement,
        measured_qos: s.measured_qos(),
        overhead: s.overhead_log.last().expect("at least one action").1,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scenario_produces_four_events() {
        let reports = run_prototype_scenario().unwrap();
        assert_eq!(reports.len(), 4);
        for (i, r) in reports.iter().enumerate() {
            assert_eq!(r.label as usize, i + 1);
            assert!(!r.placement.is_empty());
        }
    }

    #[test]
    fn figure3_qos_shape() {
        let reports = run_prototype_scenario().unwrap();
        // Events 1-3: the audio stream plays at the requested 40 fps.
        for r in &reports[0..3] {
            assert_eq!(r.measured_qos.len(), 1, "one audio sink");
            assert_eq!(r.measured_qos[0].fps, 40.0, "event {}", r.label);
        }
        // Event 4: video 25 fps and audio 6 chunk/s.
        let mut conf: Vec<_> = reports[3].measured_qos.clone();
        conf.sort_by(|a, b| a.sink.cmp(&b.sink));
        assert_eq!(conf.len(), 2, "two conference sinks");
        assert_eq!(conf[0].sink, "conference-audio-player");
        assert_eq!(conf[0].fps, 6.0);
        assert_eq!(conf[1].sink, "video-player");
        assert_eq!(conf[1].fps, 25.0);
    }

    #[test]
    fn event2_inserts_the_transcoder_on_a_desktop() {
        let reports = run_prototype_scenario().unwrap();
        let e2 = &reports[1];
        let transcoder = e2
            .placement
            .iter()
            .find(|(c, _)| c.contains("MPEG2WAV"))
            .expect("event 2 inserts the MPEG2WAV transcoder");
        assert_ne!(
            transcoder.1, "jornada",
            "the PDA cannot host the transcoder"
        );
        // The player itself is on the PDA.
        let player = e2
            .placement
            .iter()
            .find(|(c, _)| c == "audio-player")
            .unwrap();
        assert_eq!(player.1, "jornada");
        // Events 1 and 3 have no transcoder.
        for r in [&reports[0], &reports[2]] {
            assert!(
                !r.placement.iter().any(|(c, _)| c.contains("transcoder")),
                "event {} needs no transcoder",
                r.label
            );
        }
    }

    #[test]
    fn figure4_overhead_shape() {
        let reports = run_prototype_scenario().unwrap();
        // Events 1-3: no downloading (pre-installed).
        for r in &reports[0..3] {
            assert_eq!(r.overhead.downloading_ms, 0.0, "event {}", r.label);
            assert!(r.overhead.composition_ms > 0.0);
            assert!(r.overhead.distribution_ms > 0.0);
            assert!(r.overhead.init_or_handoff_ms > 0.0);
        }
        // PC -> PDA handoff (event 2, wireless target) is longer than
        // PDA -> PC (event 3, wired target).
        assert!(
            reports[1].overhead.init_or_handoff_ms > reports[2].overhead.init_or_handoff_ms,
            "wireless handoff must cost more"
        );
        // Event 4: downloading dominates and the total stays in the
        // figure's ~2 s range.
        let e4 = &reports[3].overhead;
        assert!(e4.downloading_ms > 0.0);
        assert_eq!(e4.dominant().0, "downloading");
        assert!(e4.total_ms() < 2500.0, "total {}", e4.total_ms());
        assert!(e4.total_ms() > reports[0].overhead.total_ms());
    }

    #[test]
    fn sessions_fully_satisfy_the_user_requests() {
        // Both prototype applications deliver exactly what the user asked
        // for at every event — the paper's "soft QoS guarantees".
        let (env, links, props) = crate::apps::audio_environment();
        let mut server = crate::domain_server::DomainServer::new(env, links, props);
        crate::apps::register_audio_services(server.registry_mut());
        for d in 0..4 {
            for inst in ["audio-server@desktop1", "mpeg-player", "wav-player"] {
                server.repository_mut().preinstall(d, inst);
            }
        }
        let session = server
            .start_session(
                "audio",
                crate::apps::audio_on_demand_app(),
                crate::apps::audio_user_qos(),
                ubiqos_graph::DeviceId::from_index(1),
            )
            .unwrap();
        assert_eq!(server.session(session).unwrap().qos_satisfaction(), 1.0);
        server
            .switch_device(session, ubiqos_graph::DeviceId::from_index(2))
            .unwrap();
        assert_eq!(
            server.session(session).unwrap().qos_satisfaction(),
            1.0,
            "the PDA leg still delivers the requested 40 fps"
        );
    }

    #[test]
    fn reports_render() {
        let reports = run_prototype_scenario().unwrap();
        for r in &reports {
            let s = r.render();
            assert!(s.contains(&format!("event {}", r.label)));
            assert!(s.contains("overhead"));
        }
    }
}
