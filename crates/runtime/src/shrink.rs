//! Schedule shrinking: reduce a fault schedule that violates an
//! invariant to a (locally) minimal reproducer.
//!
//! When a fault campaign trips an invariant, the offending schedule can
//! be hundreds of events long — most of them irrelevant. This module
//! shrinks it the way property-testing frameworks shrink failing inputs,
//! but specialised to *timed schedules* replayed against a deterministic
//! harness:
//!
//! 1. **Prefix minimisation** — binary-search the shortest violating
//!    prefix (the violation is detected at the last event applied, so
//!    everything after it is noise by construction).
//! 2. **Subsequence minimisation** — greedily delete single events,
//!    keeping each deletion only if the violation survives, repeated to a
//!    fixpoint.
//!
//! The result is 1-minimal: removing any single remaining event makes
//! the violation disappear. Every probe replays the *whole* candidate
//! schedule through the caller's predicate, so determinism of the
//! harness is what makes shrinking sound.

use ubiqos_sim::TimedFault;

/// A shrunk reproducer: the minimal schedule and the violation it still
/// triggers.
#[derive(Debug, Clone)]
pub struct ShrinkOutcome {
    /// The 1-minimal violating schedule (still time-sorted — shrinking
    /// only deletes events, never reorders them).
    pub schedule: Vec<TimedFault>,
    /// The violation message the minimal schedule triggers.
    pub violation: String,
    /// How many candidate schedules were replayed while shrinking.
    pub probes: usize,
}

/// Shrinks `schedule` against `violates` (which returns `Some(message)`
/// when a candidate schedule still triggers the violation, `None` when
/// it runs clean).
///
/// Returns `None` when the full schedule does not violate at all —
/// there is nothing to shrink. Otherwise the returned schedule is a
/// subsequence of the input, 1-minimal under `violates`.
pub fn shrink_schedule<F>(schedule: &[TimedFault], mut violates: F) -> Option<ShrinkOutcome>
where
    F: FnMut(&[TimedFault]) -> Option<String>,
{
    let mut probes = 1usize;
    let mut message = violates(schedule)?;
    let mut current: Vec<TimedFault> = schedule.to_vec();

    // Phase 1: shortest violating prefix, by binary search. The
    // predicate is monotone over prefixes for abort-at-first-violation
    // harnesses; if it is not, the search still lands on *a* violating
    // prefix because `hi` only ever moves to lengths that violate.
    let mut lo = 1usize;
    let mut hi = current.len();
    while lo < hi {
        let mid = lo + (hi - lo) / 2;
        probes += 1;
        match violates(&current[..mid]) {
            Some(m) => {
                message = m;
                hi = mid;
            }
            None => lo = mid + 1,
        }
    }
    current.truncate(hi);

    // Phase 2: greedy single-event deletion to a fixpoint. Scan from the
    // back so index bookkeeping survives removals.
    loop {
        let mut removed_any = false;
        let mut i = current.len();
        while i > 0 {
            i -= 1;
            let mut candidate = current.clone();
            candidate.remove(i);
            probes += 1;
            if let Some(m) = violates(&candidate) {
                message = m;
                current = candidate;
                removed_any = true;
            }
        }
        if !removed_any {
            break;
        }
    }

    Some(ShrinkOutcome {
        schedule: current,
        violation: message,
        probes,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ubiqos_sim::FaultKind;

    fn fault(at_h: f64, device: usize) -> TimedFault {
        TimedFault {
            at_h,
            kind: FaultKind::Crash { device },
        }
    }

    /// A synthetic violation: the schedule contains a crash of device 3
    /// after a crash of device 1 (any number of events in between).
    fn crash_1_then_3(schedule: &[TimedFault]) -> Option<String> {
        let mut seen_1 = false;
        for f in schedule {
            if let FaultKind::Crash { device } = f.kind {
                if device == 1 {
                    seen_1 = true;
                } else if device == 3 && seen_1 {
                    return Some("crash of dev3 after dev1".to_owned());
                }
            }
        }
        None
    }

    #[test]
    fn shrinks_to_the_minimal_pair() {
        let schedule: Vec<TimedFault> = vec![
            fault(0.5, 0),
            fault(1.0, 2),
            fault(1.5, 1),
            fault(2.0, 4),
            fault(2.5, 0),
            fault(3.0, 3),
            fault(3.5, 2),
        ];
        let outcome = shrink_schedule(&schedule, crash_1_then_3).expect("full schedule violates");
        assert_eq!(outcome.schedule, vec![fault(1.5, 1), fault(3.0, 3)]);
        assert_eq!(outcome.violation, "crash of dev3 after dev1");
        assert!(outcome.probes >= 3, "prefix + deletion probes counted");
    }

    #[test]
    fn clean_schedules_are_not_shrunk() {
        let schedule = vec![fault(1.0, 0), fault(2.0, 2)];
        assert!(shrink_schedule(&schedule, crash_1_then_3).is_none());
    }

    #[test]
    fn result_is_one_minimal() {
        let schedule: Vec<TimedFault> = (0..20)
            .map(|i| fault(i as f64, [0, 1, 2, 3, 4][i % 5]))
            .collect();
        let outcome = shrink_schedule(&schedule, crash_1_then_3).expect("violates");
        for i in 0..outcome.schedule.len() {
            let mut candidate = outcome.schedule.clone();
            candidate.remove(i);
            assert!(
                crash_1_then_3(&candidate).is_none(),
                "removing event {i} should break the violation"
            );
        }
    }
}
