//! Schedule shrinking: reduce a fault schedule that violates an
//! invariant to a (locally) minimal reproducer.
//!
//! When a fault campaign trips an invariant, the offending schedule can
//! be hundreds of events long — most of them irrelevant. This module
//! shrinks it the way property-testing frameworks shrink failing inputs,
//! but specialised to *timed schedules* replayed against a deterministic
//! harness:
//!
//! 1. **Prefix minimisation** — binary-search the shortest violating
//!    prefix (the violation is detected at the last event applied, so
//!    everything after it is noise by construction).
//! 2. **Subsequence minimisation** — greedily delete single events,
//!    keeping each deletion only if the violation survives, repeated to a
//!    fixpoint.
//!
//! Deletion is **pair-aware** for the detector events: removing a
//! [`FaultKind::Partition`] also removes its matching later
//! [`FaultKind::Heal`] (same device group), so a shrunk schedule never
//! contains a heal of a partition that was deleted out from under it. A
//! heal may be deleted *alone* — an unhealed partition is a valid (if
//! hostile) schedule — and [`FaultKind::JamHeartbeats`] is
//! self-contained, shrinking like any other event. Prefix truncation
//! can only drop heals after their partitions, so it never unmatches
//! one either.
//!
//! The result is 1-minimal under these deletion steps: removing any
//! remaining event (with its pair partner, where applicable) makes the
//! violation disappear. Every probe replays the *whole* candidate
//! schedule through the caller's predicate, so determinism of the
//! harness is what makes shrinking sound.

use ubiqos_sim::{FaultKind, TimedFault};

/// A shrunk reproducer: the minimal schedule and the violation it still
/// triggers.
#[derive(Debug, Clone)]
pub struct ShrinkOutcome {
    /// The 1-minimal violating schedule (still time-sorted — shrinking
    /// only deletes events, never reorders them).
    pub schedule: Vec<TimedFault>,
    /// The violation message the minimal schedule triggers.
    pub violation: String,
    /// How many candidate schedules were replayed while shrinking.
    pub probes: usize,
}

/// Shrinks `schedule` against `violates` (which returns `Some(message)`
/// when a candidate schedule still triggers the violation, `None` when
/// it runs clean).
///
/// Returns `None` when the full schedule does not violate at all —
/// there is nothing to shrink. Otherwise the returned schedule is a
/// subsequence of the input, 1-minimal under `violates`.
pub fn shrink_schedule<F>(schedule: &[TimedFault], mut violates: F) -> Option<ShrinkOutcome>
where
    F: FnMut(&[TimedFault]) -> Option<String>,
{
    let mut probes = 1usize;
    let mut message = violates(schedule)?;
    let mut current: Vec<TimedFault> = schedule.to_vec();

    // Phase 1: shortest violating prefix, by binary search. The
    // predicate is monotone over prefixes for abort-at-first-violation
    // harnesses; if it is not, the search still lands on *a* violating
    // prefix because `hi` only ever moves to lengths that violate.
    let mut lo = 1usize;
    let mut hi = current.len();
    while lo < hi {
        let mid = lo + (hi - lo) / 2;
        probes += 1;
        match violates(&current[..mid]) {
            Some(m) => {
                message = m;
                hi = mid;
            }
            None => lo = mid + 1,
        }
    }
    current.truncate(hi);

    // Phase 2: greedy deletion to a fixpoint — one event at a time,
    // except that a partition takes its matching heal along. Scan from
    // the back so index bookkeeping survives removals.
    loop {
        let mut removed_any = false;
        let mut i = current.len();
        while i > 0 {
            i -= 1;
            let mut candidate = current.clone();
            // Remove back-to-front so the earlier index stays valid.
            for &j in removal_group(&current, i).iter().rev() {
                candidate.remove(j);
            }
            probes += 1;
            if let Some(m) = violates(&candidate) {
                message = m;
                current = candidate;
                removed_any = true;
            }
        }
        if !removed_any {
            break;
        }
    }

    Some(ShrinkOutcome {
        schedule: current,
        violation: message,
        probes,
    })
}

/// The indices (ascending) that one deletion step at `i` removes:
/// normally just `[i]`, but a partition also takes the first later heal
/// of the same device group, and a shard crash takes the first later
/// restart of the same shard — keeping every candidate free of
/// unmatched heals/restarts. A heal or restart may be deleted alone
/// (an unhealed partition or an unrestarted shard is a valid, if
/// hostile, schedule).
fn removal_group(schedule: &[TimedFault], i: usize) -> Vec<usize> {
    let mut group = vec![i];
    match schedule[i].kind {
        FaultKind::Partition { first, count } => {
            let heal = schedule.iter().enumerate().skip(i + 1).find(|(_, f)| {
                matches!(f.kind, FaultKind::Heal { first: hf, count: hc } if hf == first && hc == count)
            });
            if let Some((j, _)) = heal {
                group.push(j);
            }
        }
        FaultKind::ShardCrash { shard } => {
            let restart = schedule.iter().enumerate().skip(i + 1).find(
                |(_, f)| matches!(f.kind, FaultKind::ShardRestart { shard: rs } if rs == shard),
            );
            if let Some((j, _)) = restart {
                group.push(j);
            }
        }
        _ => {}
    }
    group
}

#[cfg(test)]
mod tests {
    use super::*;
    use ubiqos_sim::FaultKind;

    fn fault(at_h: f64, device: usize) -> TimedFault {
        TimedFault {
            at_h,
            kind: FaultKind::Crash { device },
        }
    }

    /// A synthetic violation: the schedule contains a crash of device 3
    /// after a crash of device 1 (any number of events in between).
    fn crash_1_then_3(schedule: &[TimedFault]) -> Option<String> {
        let mut seen_1 = false;
        for f in schedule {
            if let FaultKind::Crash { device } = f.kind {
                if device == 1 {
                    seen_1 = true;
                } else if device == 3 && seen_1 {
                    return Some("crash of dev3 after dev1".to_owned());
                }
            }
        }
        None
    }

    #[test]
    fn shrinks_to_the_minimal_pair() {
        let schedule: Vec<TimedFault> = vec![
            fault(0.5, 0),
            fault(1.0, 2),
            fault(1.5, 1),
            fault(2.0, 4),
            fault(2.5, 0),
            fault(3.0, 3),
            fault(3.5, 2),
        ];
        let outcome = shrink_schedule(&schedule, crash_1_then_3).expect("full schedule violates");
        assert_eq!(outcome.schedule, vec![fault(1.5, 1), fault(3.0, 3)]);
        assert_eq!(outcome.violation, "crash of dev3 after dev1");
        assert!(outcome.probes >= 3, "prefix + deletion probes counted");
    }

    #[test]
    fn clean_schedules_are_not_shrunk() {
        let schedule = vec![fault(1.0, 0), fault(2.0, 2)];
        assert!(shrink_schedule(&schedule, crash_1_then_3).is_none());
    }

    fn partition(at_h: f64, first: usize, count: usize) -> TimedFault {
        TimedFault {
            at_h,
            kind: FaultKind::Partition { first, count },
        }
    }

    fn heal(at_h: f64, first: usize, count: usize) -> TimedFault {
        TimedFault {
            at_h,
            kind: FaultKind::Heal { first, count },
        }
    }

    /// True when every heal in `schedule` is preceded by a matching
    /// partition it closes (multiset pairing, scanned in time order).
    fn heals_are_matched(schedule: &[TimedFault]) -> bool {
        let mut open: Vec<(usize, usize)> = Vec::new();
        for f in schedule {
            match f.kind {
                FaultKind::Partition { first, count } => open.push((first, count)),
                FaultKind::Heal { first, count } => {
                    match open.iter().position(|&p| p == (first, count)) {
                        Some(i) => {
                            open.remove(i);
                        }
                        None => return false,
                    }
                }
                _ => {}
            }
        }
        true
    }

    #[test]
    fn partitions_take_their_heals_along() {
        // The violation only needs the two crashes; the partition/heal
        // pairs and the jam are noise that must shrink away without ever
        // leaving a heal unmatched.
        let schedule = vec![
            partition(0.2, 1, 2),
            fault(0.5, 0),
            fault(1.0, 1),
            partition(1.2, 0, 1),
            heal(1.6, 1, 2),
            TimedFault {
                at_h: 1.8,
                kind: FaultKind::JamHeartbeats {
                    device: 2,
                    until_h: 2.5,
                },
            },
            fault(2.0, 3),
            heal(2.4, 0, 1),
        ];
        let outcome = shrink_schedule(&schedule, |candidate| {
            assert!(
                heals_are_matched(candidate),
                "probe contained an unmatched heal: {candidate:?}"
            );
            crash_1_then_3(candidate)
        })
        .expect("full schedule violates");
        assert_eq!(outcome.schedule, vec![fault(1.0, 1), fault(2.0, 3)]);
        assert!(heals_are_matched(&outcome.schedule));
    }

    #[test]
    fn heals_may_be_removed_alone() {
        // A predicate that needs the partition but not its heal: the
        // shrinker should strip the heal and keep the bare (unhealed)
        // partition, which is a valid schedule.
        let schedule = vec![partition(0.5, 1, 2), fault(1.0, 4), heal(2.0, 1, 2)];
        let needs_partition = |candidate: &[TimedFault]| {
            candidate
                .iter()
                .any(|f| matches!(f.kind, FaultKind::Partition { first: 1, count: 2 }))
                .then(|| "partition of dev1+2 present".to_owned())
        };
        let outcome = shrink_schedule(&schedule, needs_partition).expect("violates");
        assert_eq!(outcome.schedule, vec![partition(0.5, 1, 2)]);
    }

    fn shard_crash(at_h: f64, shard: usize) -> TimedFault {
        TimedFault {
            at_h,
            kind: FaultKind::ShardCrash { shard },
        }
    }

    fn shard_restart(at_h: f64, shard: usize) -> TimedFault {
        TimedFault {
            at_h,
            kind: FaultKind::ShardRestart { shard },
        }
    }

    /// True when every restart in `schedule` closes a crash of the same
    /// shard that is still open (multiset pairing, scanned in time
    /// order).
    fn restarts_are_matched(schedule: &[TimedFault]) -> bool {
        let mut open: Vec<usize> = Vec::new();
        for f in schedule {
            match f.kind {
                FaultKind::ShardCrash { shard } => open.push(shard),
                FaultKind::ShardRestart { shard } => match open.iter().position(|&s| s == shard) {
                    Some(i) => {
                        open.remove(i);
                    }
                    None => return false,
                },
                _ => {}
            }
        }
        true
    }

    #[test]
    fn shard_crashes_take_their_restarts_along() {
        // The violation only needs the two device crashes; the shard
        // crash/restart pairs are noise that must shrink away without
        // ever leaving a restart unmatched.
        let schedule = vec![
            shard_crash(0.2, 1),
            fault(0.5, 0),
            fault(1.0, 1),
            shard_crash(1.2, 0),
            shard_restart(1.6, 1),
            fault(2.0, 3),
            shard_restart(2.4, 0),
        ];
        let outcome = shrink_schedule(&schedule, |candidate| {
            assert!(
                restarts_are_matched(candidate),
                "probe contained an unmatched restart: {candidate:?}"
            );
            crash_1_then_3(candidate)
        })
        .expect("full schedule violates");
        assert_eq!(outcome.schedule, vec![fault(1.0, 1), fault(2.0, 3)]);
        assert!(restarts_are_matched(&outcome.schedule));
    }

    #[test]
    fn restarts_may_be_removed_alone() {
        // A predicate that needs the crash but not its restart: the
        // shrinker strips the restart and keeps the bare (unrestarted)
        // crash, which is a valid schedule.
        let schedule = vec![shard_crash(0.5, 2), fault(1.0, 4), shard_restart(2.0, 2)];
        let needs_crash = |candidate: &[TimedFault]| {
            candidate
                .iter()
                .any(|f| matches!(f.kind, FaultKind::ShardCrash { shard: 2 }))
                .then(|| "crash of shard2 present".to_owned())
        };
        let outcome = shrink_schedule(&schedule, needs_crash).expect("violates");
        assert_eq!(outcome.schedule, vec![shard_crash(0.5, 2)]);
    }

    #[test]
    fn result_is_one_minimal() {
        let schedule: Vec<TimedFault> = (0..20)
            .map(|i| fault(i as f64, [0, 1, 2, 3, 4][i % 5]))
            .collect();
        let outcome = shrink_schedule(&schedule, crash_1_then_3).expect("violates");
        for i in 0..outcome.schedule.len() {
            let mut candidate = outcome.schedule.clone();
            candidate.remove(i);
            assert!(
                crash_1_then_3(&candidate).is_none(),
                "removing event {i} should break the violation"
            );
        }
    }
}
