//! Delivered-QoS computation for a deployed configuration (Figure 3's
//! "Measured QoS" column).
//!
//! The paper reports the frame rate each sink actually receives. In a
//! placement that fits (Definition 3.4), the stream runs at its
//! negotiated rate — the rate the OC algorithm settled on at the sink's
//! upstream edge; an unfit placement would stall at the tightest
//! bottleneck. This module reads the negotiated rates off the composed
//! graph.

use serde::{Deserialize, Serialize};
use ubiqos_graph::{ComponentRole, ServiceGraph};
use ubiqos_model::{Preference, QosDimension, QosValue};

/// One sink's delivered QoS.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DeliveredQos {
    /// The sink component's name (e.g. `"audio-player"`).
    pub sink: String,
    /// Frames (or audio chunks) per second actually delivered.
    pub fps: f64,
}

/// Computes the delivered frame rate at every sink of a composed graph.
///
/// The delivered rate at a sink is the rate its immediate upstream
/// component is configured to emit (after OC negotiation) on the rate
/// dimension *the sink itself constrains* — [`QosDimension::FrameRate`]
/// for video-style sinks, [`QosDimension::SampleRate`] for audio-chunk
/// sinks (a multiplexed stream carries both). Sinks with no upstream
/// (degenerate single-component graphs) report their own configured
/// output; sinks with no negotiated rate report 0.
pub fn delivered_qos(graph: &ServiceGraph) -> Vec<DeliveredQos> {
    let mut out = Vec::new();
    for (id, c) in graph.components() {
        let is_sink = c.role() == ComponentRole::Sink || graph.successors(id).is_empty();
        if !is_sink || graph.component_count() > 1 && graph.predecessors(id).is_empty() {
            continue;
        }
        // The rate dimension this sink cares about.
        let dim = if c.qos_in().get(&QosDimension::SampleRate).is_some()
            && c.qos_in().get(&QosDimension::FrameRate).is_none()
        {
            QosDimension::SampleRate
        } else {
            QosDimension::FrameRate
        };
        let rate_value = graph
            .predecessors(id)
            .iter()
            .filter_map(|&p| {
                graph
                    .component(p)
                    .expect("edge endpoints exist")
                    .qos_out()
                    .get(&dim)
                    .cloned()
            })
            .next()
            .or_else(|| c.qos_out().get(&dim).cloned());
        let fps = rate_value
            .and_then(|v| v.pick(Preference::Highest))
            .and_then(|v| match v {
                QosValue::Exact(x) => Some(x),
                _ => None,
            })
            .unwrap_or(0.0);
        out.push(DeliveredQos {
            sink: c.name().to_owned(),
            fps,
        });
    }
    out
}

/// The full QoS vector each sink receives: its immediate upstream
/// component's configured output (or its own, for single-component
/// graphs). Used for satisfaction scoring against the user's request.
pub fn sink_delivered_vectors(graph: &ServiceGraph) -> Vec<(String, ubiqos_model::QosVector)> {
    let mut out = Vec::new();
    for (id, c) in graph.components() {
        let is_sink = c.role() == ComponentRole::Sink || graph.successors(id).is_empty();
        if !is_sink || graph.component_count() > 1 && graph.predecessors(id).is_empty() {
            continue;
        }
        let vector = graph
            .predecessors(id)
            .first()
            .map(|&p| {
                graph
                    .component(p)
                    .expect("edge endpoints exist")
                    .qos_out()
                    .clone()
            })
            .unwrap_or_else(|| c.qos_out().clone());
        out.push((c.name().to_owned(), vector));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use ubiqos_graph::ServiceComponent;
    use ubiqos_model::QosVector;

    fn src(fps: f64) -> ServiceComponent {
        ServiceComponent::builder("server")
            .role(ComponentRole::Source)
            .qos_out(QosVector::new().with(QosDimension::FrameRate, QosValue::exact(fps)))
            .build()
    }

    fn sink(name: &str) -> ServiceComponent {
        ServiceComponent::builder(name)
            .role(ComponentRole::Sink)
            .build()
    }

    #[test]
    fn sink_reports_upstream_rate() {
        let mut g = ServiceGraph::new();
        let a = g.add_component(src(40.0));
        let b = g.add_component(sink("audio-player"));
        g.add_edge(a, b, 1.0).unwrap();
        let q = delivered_qos(&g);
        assert_eq!(q.len(), 1);
        assert_eq!(q[0].sink, "audio-player");
        assert_eq!(q[0].fps, 40.0);
    }

    #[test]
    fn multiple_sinks_each_report() {
        let mut g = ServiceGraph::new();
        let lip = g.add_component(
            ServiceComponent::builder("lipsync")
                .qos_out(QosVector::new().with(QosDimension::FrameRate, QosValue::exact(25.0)))
                .build(),
        );
        let v = g.add_component(sink("video-player"));
        let a2 = g.add_component(
            ServiceComponent::builder("audio-src")
                .qos_out(QosVector::new().with(QosDimension::FrameRate, QosValue::exact(6.0)))
                .build(),
        );
        let ap = g.add_component(sink("audio-player"));
        g.add_edge(lip, v, 2.0).unwrap();
        g.add_edge(a2, ap, 0.1).unwrap();
        let mut q = delivered_qos(&g);
        q.sort_by(|x, y| x.sink.cmp(&y.sink));
        assert_eq!(q.len(), 2);
        assert_eq!(q[0].sink, "audio-player");
        assert_eq!(q[0].fps, 6.0);
        assert_eq!(q[1].sink, "video-player");
        assert_eq!(q[1].fps, 25.0);
    }

    #[test]
    fn single_component_graph_reports_own_rate() {
        let mut g = ServiceGraph::new();
        g.add_component(src(30.0));
        let q = delivered_qos(&g);
        assert_eq!(q.len(), 1);
        assert_eq!(q[0].fps, 30.0);
    }

    #[test]
    fn sink_without_rate_reports_zero() {
        let mut g = ServiceGraph::new();
        let a = g.add_component(ServiceComponent::builder("x").build());
        let b = g.add_component(sink("mute"));
        g.add_edge(a, b, 1.0).unwrap();
        let q = delivered_qos(&g);
        assert_eq!(q[0].fps, 0.0);
    }
}
