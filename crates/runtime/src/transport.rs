//! The federation's message fabric: the [`Transport`] seam, the
//! in-process [`ChannelTransport`], and the seeded transport fault
//! injector [`LossyTransport`].
//!
//! A transport moves [`Envelope`]s between shards. The engine's
//! reliable-delivery sublayer (`federation.rs`) sits *above* this seam:
//! it sequences payloads per (src, dst) link, acknowledges, and
//! retransmits, so a transport is free to drop, duplicate, delay, and
//! reorder copies — the federation still converges to the digests of a
//! perfect run. [`LossyTransport`] exercises exactly that freedom from
//! a splitmix64 schedule: every copy's fate is a pure function of
//! `(seed, link, link seq, attempt)`, so campaigns replay bit-for-bit.
//!
//! Two kinds of unreliability are deliberately split across layers:
//!
//! * **shard partitions** stay an engine-level construct — they defer
//!   an envelope's *intended* delivery time (`deliver_at_h`) and drive
//!   suspicion, exactly as in PR 7;
//! * **transport loss** lives here — it perturbs when (and whether) a
//!   physical *copy* arrives (`arrive_at_h`), which the reliability
//!   sublayer hides from the application layer entirely.
//!
//! [`BurstWindow`]s bridge the two: a lossy schedule aligned with the
//! engine's partition windows also eats every copy crossing the
//! partitioned shard's links, so retransmissions genuinely stall until
//! the heal instead of sneaking through a half-open link.

use crate::faults::splitmix64;
use crate::federation::FederationMsg;
use std::cell::RefCell;
use std::rc::Rc;
use std::sync::mpsc;

/// One in-flight message copy: payload plus the routing, ordering, and
/// reliability envelope the transport delivers it under.
#[derive(Debug, Clone, PartialEq)]
pub struct Envelope {
    /// Global send sequence — same-instant deliveries replay in send
    /// order, keeping the cross-shard event order total. (Standalone
    /// acks draw from a separate net-layer counter.)
    pub seq: u64,
    /// Sending shard.
    pub from: usize,
    /// Receiving shard.
    pub to: usize,
    /// Virtual hour the message was sent.
    pub sent_at_h: f64,
    /// Virtual hour the *application* layer delivers the message —
    /// `sent_at_h` unless a shard partition defers it to the heal.
    pub deliver_at_h: f64,
    /// Per-(from, to)-link monotone payload sequence, assigned by the
    /// reliable sublayer. For standalone acks: a per-link ack counter
    /// (acks are unsequenced; the field only diversifies their fate).
    pub link_seq: u64,
    /// Which transmission of the payload this copy is (`0` = first).
    pub attempt: u32,
    /// Cumulative acknowledgement piggybacked for the reverse link:
    /// the sender has released every payload with
    /// `link_seq < ack_upto` on the (to, from) link.
    pub ack_upto: u64,
    /// Virtual hour this copy was handed to the transport (equals
    /// `sent_at_h` for attempt 0, the retransmission timer's fire time
    /// otherwise). Burst-loss windows test against this instant.
    pub tx_at_h: f64,
    /// Virtual hour this copy physically arrives. Stamped `tx_at_h` by
    /// the sender; a lossy transport may add jitter. The reliability
    /// sublayer processes the copy no earlier than this.
    pub arrive_at_h: f64,
    /// The payload.
    pub msg: FederationMsg,
}

/// Message fabric between shards. The engine is transport-agnostic:
/// anything that can queue an [`Envelope`] per destination shard and
/// hand queued envelopes back works (sockets later; channels now).
pub trait Transport {
    /// Queues `env` for its destination shard (or drops/duplicates/
    /// perturbs it, if the transport is faulty).
    fn send(&mut self, env: Envelope);
    /// Removes and returns everything queued for `shard`, in
    /// transmission order.
    fn drain(&mut self, shard: usize) -> Vec<Envelope>;
}

/// The in-process transport: one `std::sync::mpsc` channel per shard.
/// Perfect — every copy arrives exactly when transmitted.
pub struct ChannelTransport {
    senders: Vec<mpsc::Sender<Envelope>>,
    receivers: Vec<mpsc::Receiver<Envelope>>,
}

impl ChannelTransport {
    /// A fabric connecting `shards` shards.
    pub fn new(shards: usize) -> Self {
        let mut senders = Vec::with_capacity(shards);
        let mut receivers = Vec::with_capacity(shards);
        for _ in 0..shards {
            let (tx, rx) = mpsc::channel();
            senders.push(tx);
            receivers.push(rx);
        }
        ChannelTransport { senders, receivers }
    }
}

impl Transport for ChannelTransport {
    fn send(&mut self, env: Envelope) {
        self.senders[env.to]
            .send(env)
            .expect("own receiver outlives the fabric");
    }

    fn drain(&mut self, shard: usize) -> Vec<Envelope> {
        self.receivers[shard].try_iter().collect()
    }
}

/// A window of total loss on every link touching `shard` — the
/// transport-level face of an engine-level shard partition.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BurstWindow {
    /// Every copy to or from this shard is dropped inside the window.
    pub shard: usize,
    /// Window start (hours, inclusive).
    pub from_h: f64,
    /// Window end (hours, exclusive).
    pub to_h: f64,
}

/// The message kinds a [`DirectedFault`] can target.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MsgKind {
    /// [`FederationMsg::DiscoverRemote`].
    Discover,
    /// [`FederationMsg::DiscoverFound`].
    Found,
    /// [`FederationMsg::Reserve`].
    Reserve,
    /// [`FederationMsg::ReserveOk`].
    ReserveOk,
    /// [`FederationMsg::ReserveErr`].
    ReserveErr,
    /// [`FederationMsg::Commit`].
    Commit,
    /// [`FederationMsg::Abort`].
    Abort,
    /// [`FederationMsg::Ack`].
    Ack,
}

impl MsgKind {
    /// The kind of a payload.
    pub fn of(msg: &FederationMsg) -> MsgKind {
        match msg {
            FederationMsg::DiscoverRemote { .. } => MsgKind::Discover,
            FederationMsg::DiscoverFound { .. } => MsgKind::Found,
            FederationMsg::Reserve { .. } => MsgKind::Reserve,
            FederationMsg::ReserveOk { .. } => MsgKind::ReserveOk,
            FederationMsg::ReserveErr { .. } => MsgKind::ReserveErr,
            FederationMsg::Commit { .. } => MsgKind::Commit,
            FederationMsg::Abort { .. } => MsgKind::Abort,
            FederationMsg::Ack => MsgKind::Ack,
        }
    }
}

/// What a [`DirectedFault`] does to its targeted copy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Fate {
    /// The copy never arrives (first transmission only; the
    /// retransmission path recovers it).
    Drop,
    /// The copy arrives twice.
    Duplicate,
    /// The copy arrives late by this many hours.
    DelayH(f64),
}

/// One aimed transport fault: the `nth` first-transmission copy of a
/// given message kind (counted across the whole run, 0-based) suffers
/// `fate` — how the directed regression tests stage a *specific* nasty
/// interleaving instead of fishing for a seed.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DirectedFault {
    /// Which payload kind to target.
    pub kind: MsgKind,
    /// Which first-transmission copy of that kind (0-based).
    pub nth: u64,
    /// What happens to it.
    pub fate: Fate,
}

/// Seeded transport-fault schedule for [`LossyTransport`]. All
/// probabilities are per *copy* (retransmissions re-roll), derived by
/// splitmix64 from `(seed, link, link seq, attempt)` — pure, so replays
/// are identical.
#[derive(Debug, Clone, PartialEq)]
pub struct LossConfig {
    /// Master seed of the fault stream.
    pub seed: u64,
    /// Probability a copy is dropped.
    pub loss: f64,
    /// Probability a copy is duplicated (the twin gets its own jitter).
    pub dup: f64,
    /// Probability a copy is delayed (which is what reorders a link:
    /// a delayed copy lets its successors overtake it).
    pub reorder: f64,
    /// Upper bound on the injected delay (hours); the actual delay is
    /// a seeded fraction of this.
    pub max_delay_h: f64,
    /// Total-loss windows, typically aligned with the engine's
    /// [`ShardPartition`](crate::federation::ShardPartition) schedule
    /// via [`LossConfig::align_bursts`].
    pub bursts: Vec<BurstWindow>,
    /// Aimed faults for directed tests, applied to first transmissions
    /// instead of the seeded roll.
    pub directed: Vec<DirectedFault>,
}

impl LossConfig {
    /// A perfect (pass-through) schedule — [`LossyTransport`] with this
    /// config is byte-identical to its inner transport.
    pub fn perfect() -> Self {
        LossConfig {
            seed: 0,
            loss: 0.0,
            dup: 0.0,
            reorder: 0.0,
            max_delay_h: 0.0,
            bursts: Vec::new(),
            directed: Vec::new(),
        }
    }

    /// A full-featured lossy schedule: drop rate `loss`, plus moderate
    /// duplication and reordering jitter.
    pub fn lossy(seed: u64, loss: f64) -> Self {
        LossConfig {
            seed,
            loss,
            dup: 0.05,
            reorder: 0.1,
            max_delay_h: 0.01,
            bursts: Vec::new(),
            directed: Vec::new(),
        }
    }

    /// Aligns burst-loss windows with an engine-level shard-partition
    /// schedule: while a shard is partitioned, every copy touching it
    /// is also physically lost.
    pub fn align_bursts(mut self, partitions: &[crate::federation::ShardPartition]) -> Self {
        self.bursts = partitions
            .iter()
            .map(|p| BurstWindow {
                shard: p.shard,
                from_h: p.from_h,
                to_h: p.to_h,
            })
            .collect();
        self
    }

    /// Whether this schedule can never perturb a copy.
    pub fn is_perfect(&self) -> bool {
        self.loss == 0.0
            && self.dup == 0.0
            && self.reorder == 0.0
            && self.bursts.is_empty()
            && self.directed.is_empty()
    }

    /// Structural validation: probabilities in range, and loss bounded
    /// away from 1 so retransmission converges.
    ///
    /// # Panics
    ///
    /// Panics on an invalid schedule.
    pub fn validate(&self) {
        for (name, p) in [
            ("loss", self.loss),
            ("dup", self.dup),
            ("reorder", self.reorder),
        ] {
            assert!((0.0..=1.0).contains(&p), "{name} must be a probability");
        }
        assert!(
            self.loss < 1.0,
            "steady-state loss must stay below 1 for retransmission to converge"
        );
        assert!(self.max_delay_h >= 0.0, "delay bound must be non-negative");
        for w in &self.bursts {
            assert!(w.from_h < w.to_h, "burst window must be a forward interval");
        }
    }
}

/// What a [`LossyTransport`] injected, for benches and assertions.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LossStats {
    /// Copies silently dropped (seeded rolls + bursts + directed).
    pub drops: u64,
    /// Of those, copies eaten by a burst window.
    pub burst_drops: u64,
    /// Extra copies injected by duplication.
    pub dups: u64,
    /// Copies that arrived late (jitter added).
    pub delays: u64,
    /// Copies forwarded (original or duplicate) to the inner transport.
    pub forwarded: u64,
}

/// A seeded fault-injection decorator over any [`Transport`]: drops,
/// duplicates, delays (and thereby reorders) copies per (src, dst)
/// link. With a [`LossConfig::perfect`] schedule it forwards every copy
/// untouched — the CI-pinned byte-identity path.
pub struct LossyTransport {
    inner: Box<dyn Transport>,
    cfg: LossConfig,
    stats: Rc<RefCell<LossStats>>,
    /// First-transmission copies seen per [`MsgKind`], for directed
    /// fault targeting.
    kind_counts: [u64; 8],
}

impl LossyTransport {
    /// Decorates `inner` with the seeded schedule `cfg`.
    ///
    /// # Panics
    ///
    /// Panics on an invalid schedule (see [`LossConfig::validate`]).
    pub fn new(inner: Box<dyn Transport>, cfg: LossConfig) -> Self {
        cfg.validate();
        LossyTransport {
            inner,
            cfg,
            stats: Rc::new(RefCell::new(LossStats::default())),
            kind_counts: [0; 8],
        }
    }

    /// A shared handle onto the injection counters, readable after the
    /// boxed transport has been consumed by the engine.
    pub fn stats_handle(&self) -> Rc<RefCell<LossStats>> {
        Rc::clone(&self.stats)
    }

    /// A fresh uniform-[0,1) stream for one copy, keyed by link,
    /// sequence, attempt, and kind — splitmix64, the same generator the
    /// equivalence tests hand-roll.
    fn stream(&self, env: &Envelope) -> u64 {
        let kind_tag = MsgKind::of(&env.msg) as u64;
        self.cfg.seed
            ^ (env.from as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15)
            ^ (env.to as u64).wrapping_mul(0xbf58_476d_1ce4_e5b9)
            ^ env.link_seq.wrapping_mul(0x94d0_49bb_1331_11eb)
            ^ (u64::from(env.attempt) << 40)
            ^ (kind_tag << 56)
    }

    fn in_burst(&self, env: &Envelope) -> bool {
        self.cfg.bursts.iter().any(|w| {
            (w.shard == env.from || w.shard == env.to)
                && env.tx_at_h >= w.from_h
                && env.tx_at_h < w.to_h
        })
    }

    /// The directed fate aimed at this copy, if any (first
    /// transmissions only; also advances the per-kind counter).
    fn directed_fate(&mut self, env: &Envelope) -> Option<Fate> {
        if env.attempt != 0 || self.cfg.directed.is_empty() {
            return None;
        }
        let kind = MsgKind::of(&env.msg);
        let nth = self.kind_counts[kind as usize];
        self.kind_counts[kind as usize] += 1;
        self.cfg
            .directed
            .iter()
            .find(|d| d.kind == kind && d.nth == nth)
            .map(|d| d.fate)
    }

    fn forward(&mut self, env: Envelope) {
        self.stats.borrow_mut().forwarded += 1;
        self.inner.send(env);
    }
}

/// One uniform draw in `[0, 1)` from a splitmix64 stream state.
fn uniform(state: &mut u64) -> f64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    (splitmix64(*state) >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

impl Transport for LossyTransport {
    fn send(&mut self, mut env: Envelope) {
        if self.cfg.is_perfect() {
            self.forward(env);
            return;
        }
        if let Some(fate) = self.directed_fate(&env) {
            match fate {
                Fate::Drop => self.stats.borrow_mut().drops += 1,
                Fate::Duplicate => {
                    self.stats.borrow_mut().dups += 1;
                    self.forward(env.clone());
                    self.forward(env);
                }
                Fate::DelayH(d) => {
                    self.stats.borrow_mut().delays += 1;
                    env.arrive_at_h += d;
                    self.forward(env);
                }
            }
            return;
        }
        if self.in_burst(&env) {
            let mut st = self.stats.borrow_mut();
            st.drops += 1;
            st.burst_drops += 1;
            return;
        }
        let mut state = self.stream(&env);
        if uniform(&mut state) < self.cfg.loss {
            self.stats.borrow_mut().drops += 1;
            return;
        }
        let duplicate = uniform(&mut state) < self.cfg.dup;
        // The original copy, possibly jittered.
        if uniform(&mut state) < self.cfg.reorder {
            self.stats.borrow_mut().delays += 1;
            env.arrive_at_h += uniform(&mut state) * self.cfg.max_delay_h;
        }
        if duplicate {
            let mut twin = env.clone();
            // The twin gets independent jitter so the pair can arrive
            // out of order with each other too.
            twin.arrive_at_h = twin.tx_at_h + uniform(&mut state) * self.cfg.max_delay_h;
            self.stats.borrow_mut().dups += 1;
            self.forward(twin);
        }
        self.forward(env);
    }

    fn drain(&mut self, shard: usize) -> Vec<Envelope> {
        self.inner.drain(shard)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn env(seq: u64, link_seq: u64, attempt: u32) -> Envelope {
        Envelope {
            seq,
            from: 0,
            to: 1,
            sent_at_h: 1.0,
            deliver_at_h: 1.0,
            link_seq,
            attempt,
            ack_upto: 0,
            tx_at_h: 1.0,
            arrive_at_h: 1.0,
            msg: FederationMsg::ReserveOk { hid: seq },
        }
    }

    #[test]
    fn channel_transport_preserves_send_order() {
        let mut t = ChannelTransport::new(2);
        for seq in 0..3 {
            t.send(env(seq, seq, 0));
        }
        assert!(t.drain(0).is_empty(), "nothing queued for shard 0");
        let got: Vec<u64> = t.drain(1).into_iter().map(|e| e.seq).collect();
        assert_eq!(got, vec![0, 1, 2]);
        assert!(t.drain(1).is_empty(), "drain empties the queue");
    }

    #[test]
    fn perfect_schedule_is_pass_through() {
        let cfg = LossConfig::perfect();
        assert!(cfg.is_perfect());
        let mut t = LossyTransport::new(Box::new(ChannelTransport::new(2)), cfg);
        let handle = t.stats_handle();
        for seq in 0..10 {
            t.send(env(seq, seq, 0));
        }
        let got: Vec<u64> = t.drain(1).into_iter().map(|e| e.seq).collect();
        assert_eq!(got, (0..10).collect::<Vec<_>>());
        let st = *handle.borrow();
        assert_eq!(st.forwarded, 10);
        assert_eq!((st.drops, st.dups, st.delays), (0, 0, 0));
    }

    #[test]
    fn lossy_schedule_is_deterministic_and_actually_lossy() {
        let run = || {
            let mut t = LossyTransport::new(
                Box::new(ChannelTransport::new(2)),
                LossConfig::lossy(7, 0.3),
            );
            let handle = t.stats_handle();
            for seq in 0..200 {
                t.send(env(seq, seq, 0));
            }
            let got: Vec<(u64, u64)> = t
                .drain(1)
                .into_iter()
                .map(|e| (e.seq, e.arrive_at_h.to_bits()))
                .collect();
            let stats = *handle.borrow();
            (got, stats)
        };
        let (a, stats) = run();
        let (b, stats_b) = run();
        assert_eq!(a, b, "identical seed replays identical fates");
        assert_eq!(stats, stats_b);
        assert!(stats.drops > 20, "loss 0.3 drops plenty: {stats:?}");
        assert!(stats.dups > 0 && stats.delays > 0, "{stats:?}");
        assert_eq!(
            stats.forwarded + stats.drops - stats.dups,
            200,
            "every copy accounted: {stats:?}"
        );
    }

    #[test]
    fn retransmissions_reroll_their_fate() {
        let cfg = LossConfig {
            dup: 0.0,
            reorder: 0.0,
            ..LossConfig::lossy(3, 0.5)
        };
        let mut t = LossyTransport::new(Box::new(ChannelTransport::new(2)), cfg);
        // Find a first transmission that is dropped, then check some
        // retransmission attempt of the same payload gets through.
        let mut delivered_attempt = None;
        for attempt in 0..64 {
            t.send(env(0, 0, attempt));
            if !t.drain(1).is_empty() {
                delivered_attempt = Some(attempt);
                break;
            }
        }
        assert!(
            delivered_attempt.is_some(),
            "loss 0.5 cannot eat 64 independent attempts"
        );
    }

    #[test]
    fn burst_windows_eat_everything_on_the_link() {
        let mut cfg = LossConfig::perfect();
        cfg.bursts = vec![BurstWindow {
            shard: 1,
            from_h: 0.5,
            to_h: 2.0,
        }];
        let mut t = LossyTransport::new(Box::new(ChannelTransport::new(3)), cfg);
        let handle = t.stats_handle();
        t.send(env(0, 0, 0)); // tx at 1.0, touches shard 1 -> eaten
        let mut outside = env(1, 1, 0);
        outside.tx_at_h = 2.5;
        t.send(outside); // after the window -> delivered
        let mut other_link = env(2, 0, 0);
        other_link.to = 2;
        t.send(other_link); // shard 0 -> 2, window irrelevant
        assert!(t.drain(1).len() == 1 && t.drain(2).len() == 1);
        assert_eq!(handle.borrow().burst_drops, 1);
    }

    #[test]
    fn directed_faults_aim_at_the_nth_copy_of_a_kind() {
        let mut cfg = LossConfig::perfect();
        cfg.directed = vec![
            DirectedFault {
                kind: MsgKind::ReserveOk,
                nth: 1,
                fate: Fate::Drop,
            },
            DirectedFault {
                kind: MsgKind::ReserveOk,
                nth: 2,
                fate: Fate::Duplicate,
            },
        ];
        let mut t = LossyTransport::new(Box::new(ChannelTransport::new(2)), cfg);
        for seq in 0..4 {
            t.send(env(seq, seq, 0));
        }
        let got: Vec<u64> = t.drain(1).into_iter().map(|e| e.seq).collect();
        assert_eq!(got, vec![0, 2, 2, 3], "copy 1 dropped, copy 2 doubled");
        // Retransmissions of a directed-dropped copy pass through.
        t.send(env(1, 1, 1));
        assert_eq!(t.drain(1).len(), 1);
    }

    #[test]
    #[should_panic(expected = "below 1")]
    fn total_steady_state_loss_is_rejected() {
        let _ = LossyTransport::new(
            Box::new(ChannelTransport::new(2)),
            LossConfig {
                loss: 1.0,
                ..LossConfig::lossy(0, 0.0)
            },
        );
    }
}
