//! Property-style tests of the domain server's resource accounting under
//! random operation sequences: the residual environment must always equal
//! capacity minus the live sessions' charges, and every device/link must
//! stay non-negative.

use proptest::prelude::*;
use ubiqos::prelude::*;
use ubiqos_runtime::{DomainServer, LinkKind, SessionId};

fn smart_space() -> DomainServer {
    let env = Environment::builder()
        .device(Device::new("d0", ResourceVector::mem_cpu(200.0, 240.0)))
        .device(Device::new("d1", ResourceVector::mem_cpu(120.0, 160.0)))
        .device(Device::new("d2", ResourceVector::mem_cpu(64.0, 80.0)))
        .default_bandwidth_mbps(30.0)
        .build();
    let props = DeviceProperties {
        screen_pixels: 1_920_000.0,
        compute_factor: 4.0,
    };
    let mut server = DomainServer::new(env, vec![LinkKind::Ethernet; 3], vec![props; 3]);
    server.registry_mut().register(ServiceDescriptor::new(
        "source",
        "source",
        ServiceComponent::builder("source")
            .role(ComponentRole::Source)
            .qos_out(
                QosVector::new()
                    .with(QosDimension::Format, QosValue::token("WAV"))
                    .with(QosDimension::FrameRate, QosValue::exact(30.0)),
            )
            .capability(QosDimension::FrameRate, QosValue::range(1.0, 30.0))
            .resources(ResourceVector::mem_cpu(24.0, 30.0))
            .build(),
    ));
    server.registry_mut().register(ServiceDescriptor::new(
        "sink",
        "sink",
        ServiceComponent::builder("sink")
            .role(ComponentRole::Sink)
            .qos_in(
                QosVector::new()
                    .with(QosDimension::Format, QosValue::token("WAV"))
                    .with(QosDimension::FrameRate, QosValue::range(5.0, 30.0)),
            )
            .resources(ResourceVector::mem_cpu(10.0, 14.0))
            .build(),
    ));
    server
}

fn app() -> AbstractServiceGraph {
    let mut g = AbstractServiceGraph::new();
    let s = g.add_spec(AbstractComponentSpec::new("source"));
    let p = g.add_spec(AbstractComponentSpec::new("sink").with_pin(PinHint::ClientDevice));
    g.add_edge(s, p, 1.0).unwrap();
    g
}

/// Residual availability never goes negative and never exceeds capacity.
fn assert_invariants(server: &DomainServer) {
    for (residual, cap) in server
        .env()
        .devices()
        .iter()
        .zip(server.capacity().devices())
    {
        for (&r, &c) in residual
            .availability()
            .amounts()
            .iter()
            .zip(cap.availability().amounts())
        {
            assert!(r >= -1e-9, "negative residual {r}");
            assert!(r <= c + 1e-9, "residual {r} above capacity {c}");
        }
    }
    for (i, j, b) in server.env().bandwidth().pairs() {
        let cap = server.capacity().bandwidth().get(i, j);
        assert!(b >= -1e-9);
        assert!(b <= cap + 1e-9, "link {i}-{j}: residual {b} above {cap}");
    }
}

#[derive(Debug, Clone)]
enum Op {
    Start(u8),
    Stop(u8),
    Switch(u8, u8),
    Play(u8),
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0u8..3).prop_map(Op::Start),
        (0u8..16).prop_map(Op::Stop),
        (0u8..16, 0u8..3).prop_map(|(s, d)| Op::Switch(s, d)),
        (1u8..60).prop_map(Op::Play),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn accounting_survives_random_operation_sequences(ops in proptest::collection::vec(arb_op(), 1..40)) {
        let mut server = smart_space();
        let mut live: Vec<SessionId> = Vec::new();
        for op in ops {
            match op {
                Op::Start(device) => {
                    if let Ok(id) = server.start_session(
                        "app",
                        app(),
                        QosVector::new(),
                        DeviceId::from_index(device as usize),
                    ) {
                        live.push(id);
                    }
                }
                Op::Stop(pick) => {
                    if !live.is_empty() {
                        let id = live.remove(pick as usize % live.len());
                        prop_assert!(server.stop_session(id).is_some());
                    }
                }
                Op::Switch(pick, device) => {
                    if !live.is_empty() {
                        let id = live[pick as usize % live.len()];
                        // May fail under contention; either way invariants hold.
                        let _ = server.switch_device(id, DeviceId::from_index(device as usize));
                    }
                }
                Op::Play(seconds) => server.play(seconds as f64),
            }
            assert_invariants(&server);
            prop_assert_eq!(server.session_count(), live.len());
        }
        // Stopping everything restores the idle environment exactly.
        for id in live {
            server.stop_session(id);
        }
        for (residual, cap) in server.env().devices().iter().zip(server.capacity().devices()) {
            for (&r, &c) in residual
                .availability()
                .amounts()
                .iter()
                .zip(cap.availability().amounts())
            {
                prop_assert!((r - c).abs() < 1e-6, "drained state leaks: {r} vs {c}");
            }
        }
    }

    #[test]
    fn crashes_and_fluctuations_never_corrupt_accounting(
        crash_at in 0u8..3,
        restore in prop::bool::ANY,
        starts in 1usize..4,
    ) {
        let mut server = smart_space();
        for i in 0..starts {
            let _ = server.start_session(
                format!("app-{i}"),
                app(),
                QosVector::new(),
                DeviceId::from_index(i % 3),
            );
        }
        assert_invariants(&server);
        let before = server.session_count();
        let report = server.handle_crash(DeviceId::from_index(crash_at as usize));
        // Staged pipeline, default policy: nothing is dropped outright —
        // unplaceable sessions park, the rest stay live (kept, re-placed,
        // or degraded). Fates must account for every session.
        prop_assert!(report.dropped.is_empty());
        prop_assert_eq!(before, server.session_count() + server.parked_count());
        prop_assert_eq!(report.parked.len(), server.parked_count());
        assert_invariants(&server);
        if restore {
            server.fluctuate(
                DeviceId::from_index(crash_at as usize),
                ResourceVector::mem_cpu(200.0, 240.0),
            );
            assert_invariants(&server);
            // The restored space accepts new work.
            prop_assert!(server
                .start_session("later", app(), QosVector::new(), DeviceId::from_index(0))
                .is_ok());
        }
    }

    /// Each departure refunds *exactly* what its arrival charged: with
    /// no faults in between, stopping sessions LIFO walks the residual
    /// environment back through the identical snapshots, and the
    /// departure's refund equals the arrival's charge device-by-device
    /// and link-by-link.
    #[test]
    fn departures_refund_exactly_what_arrivals_charged(
        clients in proptest::collection::vec(0u8..3, 1..6),
    ) {
        let mut server = smart_space();
        let mut snapshots = vec![server.env().clone()];
        let mut live: Vec<SessionId> = Vec::new();
        for (i, &device) in clients.iter().enumerate() {
            if let Ok(id) = server.start_session(
                format!("app-{i}"),
                app(),
                QosVector::new(),
                DeviceId::from_index(device as usize),
            ) {
                live.push(id);
                snapshots.push(server.env().clone());
            }
        }
        // LIFO teardown: every stop must restore the previous snapshot
        // bit-for-bit (the refund is the exact inverse of the charge).
        while let Some(id) = live.pop() {
            let after_arrival = snapshots.pop().expect("one snapshot per admission");
            prop_assert_eq!(server.env(), &after_arrival, "pre-stop state drifted");
            prop_assert!(server.stop_session(id).is_some());
            prop_assert_eq!(
                server.env(),
                snapshots.last().expect("initial snapshot remains"),
                "refund is not the exact inverse of the charge"
            );
        }
        prop_assert_eq!(server.env(), &snapshots[0], "idle environment restored");
        prop_assert_eq!(server.env(), server.capacity());
    }
}
