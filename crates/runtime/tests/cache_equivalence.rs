//! Satellite property for the configuration cache: under *any*
//! interleaving of registry churn (register / unregister) and device
//! faults (crash / recover), a cache-enabled domain server previews
//! configurations byte-identical to a cache-disabled one.
//!
//! Two servers are driven through the identical operation sequence; the
//! only difference is the composition cache (and discovery memo). After
//! every operation both servers preview both application templates from
//! every up client device, and the results — composed graph, placement,
//! cost, or the exact error — must match. Debug builds additionally
//! cross-check every cache hit against a fresh recomposition inside
//! [`DomainServer`] itself.

use proptest::prelude::*;
use ubiqos_discovery::ServiceDescriptor;
use ubiqos_graph::{ComponentRole, DeviceId, ServiceComponent};
use ubiqos_model::{QosDimension, QosValue, QosVector, ResourceVector};
use ubiqos_runtime::faults::{app_template, build_space};
use ubiqos_runtime::DomainServer;

const DEVICES: usize = 4;

/// One registry/fault operation, applied identically to both servers.
#[derive(Debug, Clone, Copy)]
enum Op {
    /// Register an extra unpinned `wav-source` instance (slot 0-3).
    Register(usize),
    /// Unregister that slot's instance if present (no-op otherwise —
    /// identical on both servers either way).
    Unregister(usize),
    /// Crash a device (skipped while already down).
    Crash(usize),
    /// Recover a device (skipped while up).
    Recover(usize),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0..4usize).prop_map(Op::Register),
        (0..4usize).prop_map(Op::Unregister),
        (1..DEVICES).prop_map(Op::Crash),
        (1..DEVICES).prop_map(Op::Recover),
    ]
}

/// An extra discoverable source whose registration churns the epoch of
/// the `wav-source` type the WAV template depends on.
fn extra_source(slot: usize) -> ServiceDescriptor {
    ServiceDescriptor::new(
        format!("wav-source@extra{slot}"),
        "wav-source",
        ServiceComponent::builder("wav-source")
            .role(ComponentRole::Source)
            .qos_out(
                QosVector::new()
                    .with(QosDimension::Format, QosValue::token("WAV"))
                    .with(QosDimension::FrameRate, QosValue::exact(30.0)),
            )
            .capability(QosDimension::FrameRate, QosValue::range(1.0, 30.0))
            .resources(ResourceVector::mem_cpu(20.0, 26.0))
            .build(),
    )
}

/// Previews both templates from every up client on both servers and
/// asserts byte-identical outcomes.
fn assert_previews_match(cached: &DomainServer, fresh: &DomainServer, down: &[bool], label: &str) {
    for template in 0..2 {
        let (name, graph) = app_template(template);
        for (client, &client_down) in down.iter().enumerate().take(DEVICES).skip(1) {
            if client_down {
                continue;
            }
            let a = cached.preview(
                &graph,
                &QosVector::new(),
                DeviceId::from_index(client),
                None,
            );
            let b = fresh.preview(
                &graph,
                &QosVector::new(),
                DeviceId::from_index(client),
                None,
            );
            assert_eq!(
                a, b,
                "cached and fresh previews diverged for {name} from dev{client} after {label}"
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn any_interleaving_yields_identical_cached_and_fresh_previews(
        ops in proptest::collection::vec(op_strategy(), 1..12)
    ) {
        let mut cached = build_space(DEVICES);
        let mut fresh = build_space(DEVICES);
        fresh.set_config_cache(false);
        let mut down = [false; DEVICES];

        // Seed the cache before any churn so later hits must survive
        // epoch revalidation, not just start cold.
        assert_previews_match(&cached, &fresh, &down, "warm-up");

        for (step, &op) in ops.iter().enumerate() {
            let label = format!("step {step} {op:?}");
            match op {
                Op::Register(slot) => {
                    // Re-registering an id replaces it — identical on
                    // both servers, so no need to skip.
                    cached.registry_mut().register(extra_source(slot));
                    fresh.registry_mut().register(extra_source(slot));
                }
                Op::Unregister(slot) => {
                    let id = format!("wav-source@extra{slot}");
                    let a = cached.registry_mut().unregister(&id);
                    let b = fresh.registry_mut().unregister(&id);
                    prop_assert_eq!(a.is_some(), b.is_some());
                }
                Op::Crash(d) => {
                    if !down[d] {
                        cached.handle_crash(DeviceId::from_index(d));
                        fresh.handle_crash(DeviceId::from_index(d));
                        down[d] = true;
                    }
                }
                Op::Recover(d) => {
                    if down[d] {
                        cached.recover_device(DeviceId::from_index(d));
                        fresh.recover_device(DeviceId::from_index(d));
                        down[d] = false;
                    }
                }
            }
            assert_previews_match(&cached, &fresh, &down, &label);
        }

        let stats = cached.config_cache_stats();
        prop_assert!(
            stats.hits + stats.misses > 0,
            "the cached server must actually exercise its cache: {stats:?}"
        );
        let fresh_stats = fresh.config_cache_stats();
        prop_assert_eq!(fresh_stats.hits, 0, "a disabled cache never hits");
        prop_assert_eq!(fresh_stats.misses, 0, "nor counts misses");
    }
}
