//! Integration tests for session continuity: checkpoint/handoff across
//! portal switches and user moves, and re-placement after device crash
//! and recovery. These drive the same [`DomainServer`] paths the
//! fault-injection harness exercises, but through hand-written scenarios
//! with exact expectations.

use ubiqos::prelude::*;
use ubiqos_runtime::faults::{app_template, build_space};
use ubiqos_runtime::{DomainServer, HandoffPhase, LinkKind};

fn space() -> DomainServer {
    build_space(4)
}

#[test]
fn switch_chain_resumes_at_every_interruption_point() {
    let mut server = space();
    let (_, app) = app_template(0);
    let id = server
        .start_session("audio", app, QosVector::new(), DeviceId::from_index(1))
        .expect("fresh space admits the audio app");

    server.play(12.5);
    let plan = server
        .switch_device(id, DeviceId::from_index(2))
        .expect("switch to an idle device");
    assert_eq!(plan.resume_position_s(), 12.5, "first interruption point");
    assert_eq!(plan.checkpoint.position_s, 12.5);

    server.play(7.5);
    let plan = server
        .switch_device(id, DeviceId::from_index(0))
        .expect("switch back");
    assert_eq!(
        plan.resume_position_s(),
        20.0,
        "position accumulated across handoffs"
    );

    let s = server.session(id).expect("session stayed live");
    assert_eq!(s.client_device, DeviceId::from_index(0));
    assert_eq!(s.position_s, 20.0, "media position survives both switches");
    // start + two switches, each priced.
    assert_eq!(s.overhead_log.len(), 3);
    assert!(s.overhead_log[1].1.init_or_handoff_ms > 0.0);
}

#[test]
fn handoff_to_wireless_costs_more_than_wired() {
    // build_space links: even devices Ethernet, odd Wireless.
    let mut server = space();
    let (_, app) = app_template(0);
    let id = server
        .start_session("audio", app, QosVector::new(), DeviceId::from_index(0))
        .expect("admitted");
    server.play(5.0);
    let to_wireless = server
        .switch_device(id, DeviceId::from_index(1))
        .expect("switch to wireless portal");
    server.play(5.0);
    let to_wired = server
        .switch_device(id, DeviceId::from_index(2))
        .expect("switch to wired portal");
    assert_eq!(to_wireless.target_link, LinkKind::Wireless);
    assert_eq!(to_wired.target_link, LinkKind::Ethernet);
    assert!(
        to_wireless.handoff_ms > to_wired.handoff_ms,
        "PDA-style wireless handoff is the expensive direction: {} vs {}",
        to_wireless.handoff_ms,
        to_wired.handoff_ms
    );
    // Every handoff runs all four phases with positive cost.
    for phase in HandoffPhase::all() {
        assert!(to_wireless.phase_ms(phase) > 0.0, "{phase:?} is free");
    }
}

#[test]
fn failed_switch_preserves_position_and_configuration() {
    let mut server = space();
    let (_, app) = app_template(1);
    let id = server
        .start_session("video", app, QosVector::new(), DeviceId::from_index(0))
        .expect("admitted");
    server.play(30.0);
    let before = server.session(id).expect("live").configuration.clone();
    // Starve the space so the re-placement cannot fit: zero the target
    // device's capacity, then try to switch the client onto it (the sink
    // is pinned to the client device, so this must fail).
    server.fluctuate(DeviceId::from_index(3), ResourceVector::mem_cpu(0.0, 0.0));
    let err = server.switch_device(id, DeviceId::from_index(3));
    assert!(
        err.is_err(),
        "switching onto a zeroed device cannot succeed"
    );
    let s = server
        .session(id)
        .expect("session survived the failed switch");
    assert_eq!(s.position_s, 30.0, "no progress lost");
    assert_eq!(
        s.configuration.cut, before.cut,
        "old placement stays live after a failed switch"
    );
}

#[test]
fn crash_of_hosting_device_replaces_sessions_on_survivors() {
    let mut server = space();
    let (_, app) = app_template(0);
    // Client on device 1; the unpinned source lands wherever is cheapest.
    let id = server
        .start_session("audio", app, QosVector::new(), DeviceId::from_index(1))
        .expect("admitted");
    let hosted_on: Vec<usize> = {
        let s = server.session(id).expect("live");
        let cut = &s.configuration.cut;
        (0..cut.parts())
            .filter(|&d| {
                !cut.part_resource_sum(&s.configuration.app.graph, d)
                    .expect("consistent dims")
                    .is_zero()
            })
            .collect()
    };
    // Crash a non-client device the session uses, if any; otherwise
    // crash an idle one — either way the session must survive (the
    // client device is still up and the space has slack).
    let victim = hosted_on.iter().copied().find(|&d| d != 1).unwrap_or(3);
    let report = server.handle_crash(DeviceId::from_index(victim));
    assert_eq!(report.recovered, vec![id], "session re-placed, not dropped");
    assert!(report.dropped.is_empty());
    assert!(report.drop_errors.is_empty());
    let s = server.session(id).expect("still live");
    let on_victim = s
        .configuration
        .cut
        .part_resource_sum(&s.configuration.app.graph, victim)
        .expect("consistent dims");
    assert!(
        on_victim.is_zero(),
        "nothing may remain on the crashed device"
    );
    assert!(
        s.overhead_log.last().expect("logged").0.contains("crash"),
        "the re-placement is priced and labeled"
    );
}

#[test]
fn crash_of_client_device_parks_with_witness() {
    let mut server = space();
    let (_, app) = app_template(0);
    let id = server
        .start_session("audio", app, QosVector::new(), DeviceId::from_index(2))
        .expect("admitted");
    // The sink is pinned to the client device; crashing it makes the
    // session unplaceable at every ladder rung — the staged pipeline
    // parks it (resources released) instead of dropping, keeping the
    // error that witnesses why placement failed.
    let report = server.handle_crash(DeviceId::from_index(2));
    assert_eq!(report.parked, vec![id]);
    assert!(report.dropped.is_empty() && report.drop_errors.is_empty());
    assert_eq!(server.session_count(), 0);
    assert_eq!(server.parked_count(), 1);
    let (parked_id, parked) = server
        .parked_sessions()
        .next()
        .expect("the session is in the retry queue");
    assert_eq!(parked_id, id);
    assert!(
        matches!(parked.last_error, ConfigureError::Distribution(_)),
        "placement, not composition, is what failed: {}",
        parked.last_error
    );
}

#[test]
fn parked_session_exhausts_retry_budget_and_drops_with_witness() {
    let mut server = space();
    server.set_retry_policy(ubiqos_runtime::RetryPolicy {
        base_backoff_ms: 1_000.0,
        max_backoff_ms: 4_000.0,
        max_attempts: 3,
    });
    let (_, app) = app_template(0);
    let id = server
        .start_session("audio", app, QosVector::new(), DeviceId::from_index(2))
        .expect("admitted");
    server.handle_crash(DeviceId::from_index(2));
    assert_eq!(server.parked_count(), 1);
    // The device never comes back; each due retry fails and re-parks
    // with doubled backoff until the budget runs out.
    let mut dropped = Vec::new();
    for _ in 0..16 {
        server.play(5.0);
        let rec = server.process_retries();
        assert!(
            rec.readmitted.is_empty(),
            "nowhere to go while dev2 is down"
        );
        dropped.extend(rec.drop_errors);
    }
    assert_eq!(server.parked_count(), 0, "budget exhausted");
    assert_eq!(dropped.len(), 1);
    let (witness_id, err) = &dropped[0];
    assert_eq!(*witness_id, id);
    assert!(
        matches!(err, ConfigureError::Distribution(_)),
        "the final drop still carries the placement error: {err}"
    );
}

#[test]
fn recovery_restores_pristine_capacity_and_readmits() {
    let mut server = space();
    let pristine = server.pristine().clone();
    let (_, app) = app_template(0);
    let id = server
        .start_session(
            "audio",
            app.clone(),
            QosVector::new(),
            DeviceId::from_index(2),
        )
        .expect("admitted");
    server.handle_crash(DeviceId::from_index(2));
    assert_eq!(server.session_count(), 0, "client crash parked the session");
    assert!(server.session(id).is_none());
    // While device 2 is down, a client there cannot be served.
    assert!(!server.can_place(&app, &QosVector::new(), DeviceId::from_index(2), None));

    let report = server.recover_device(DeviceId::from_index(2));
    assert!(report.dropped.is_empty(), "recovery never drops");
    assert_eq!(server.capacity(), &pristine, "capacity back to pristine");
    // The recovery event triggered an eager retry pass: the parked
    // original is already back, charged against the restored capacity.
    assert_eq!(report.readmitted, vec![id]);
    assert_eq!(server.session_count(), 1);
    assert_eq!(server.parked_count(), 0);
    assert!(
        server.can_place(&app, &QosVector::new(), DeviceId::from_index(2), None),
        "the recovered portal serves clients again"
    );
    let id2 = server
        .start_session("audio2", app, QosVector::new(), DeviceId::from_index(2))
        .expect("recovered space admits");
    assert_ne!(id2, id, "session ids are never reused");
    assert_eq!(server.session_count(), 2);
}

#[test]
fn returned_capacity_climbs_degraded_sessions_back_up() {
    let mut server = space();
    let (_, app) = app_template(0);
    let id = server
        .start_session("audio", app, QosVector::new(), DeviceId::from_index(1))
        .expect("admitted");
    // Shrink the client device below the pinned sink's full-quality
    // demand (10, 14); the 0.75 rung's (7.5, 10.5) still fits, so the
    // session degrades instead of parking.
    let report = server.fluctuate(DeviceId::from_index(1), ResourceVector::mem_cpu(9.0, 12.0));
    assert_eq!(report.degraded.len(), 1, "{report:?}");
    let (did, d) = report.degraded[0];
    assert_eq!(did, id);
    assert_eq!(d.from, 1.0);
    assert_eq!(d.to, 0.75);
    assert_eq!(server.session(id).expect("live").degrade_factor, 0.75);
    // Capacity returns: the recovery pass re-examines degraded sessions
    // touching the changed device and climbs them back to full quality.
    let pristine_dev1 = server
        .pristine()
        .device(1)
        .expect("device exists")
        .availability()
        .clone();
    let report = server.fluctuate(DeviceId::from_index(1), pristine_dev1);
    assert_eq!(
        report.recovered,
        vec![id],
        "degraded session climbs back up: {report:?}"
    );
    assert!(report.dropped.is_empty());
    let s = server.session(id).expect("live");
    assert_eq!(s.degrade_factor, 1.0);
    assert!(
        s.overhead_log
            .last()
            .expect("logged")
            .0
            .contains("fluctuation"),
        "the re-placement is priced and labeled"
    );
    assert!(
        ubiqos_composition::diagnose(&s.configuration.app.graph).is_consistent(),
        "Eq. 1 holds after the recovery pass"
    );
}

#[test]
fn move_user_between_domains_keeps_position_and_domain_scope() {
    let mut server = space();
    let office = server.registry_mut().add_domain("office", None);
    let lounge = server.registry_mut().add_domain("lounge", None);
    // Scope a source to each room; sinks stay global. Clone the
    // *unpinned* space-wide source (build_space also registers per-device
    // hosted instances, which must not leak into the room copies).
    for (dom, instance) in [(office, "wav-source@office"), (lounge, "wav-source@lounge")] {
        let mut hit = server
            .registry()
            .discover_all(&DiscoveryQuery::new("wav-source"))
            .into_iter()
            .find(|h| h.descriptor.instance_id == "wav-source@space")
            .expect("the space-wide source is registered")
            .descriptor;
        hit.instance_id = instance.into();
        hit.domain = Some(dom);
        server.registry_mut().register(hit);
    }
    let (_, app) = app_template(0);
    let id = server
        .start_session_in_domain(
            "audio",
            app,
            QosVector::new(),
            DeviceId::from_index(0),
            Some(office),
        )
        .expect("admitted in the office");
    server.play(42.0);
    let plan = server
        .move_user(id, Some(lounge), DeviceId::from_index(2))
        .expect("the lounge has its own source");
    assert_eq!(
        plan.resume_position_s(),
        42.0,
        "handoff from the interruption point"
    );
    let s = server.session(id).expect("live");
    assert_eq!(s.domain, Some(lounge));
    assert_eq!(s.client_device, DeviceId::from_index(2));
    assert!(
        s.configuration
            .app
            .instances
            .iter()
            .any(|i| i.instance_id == "wav-source@lounge"),
        "recomposed onto the destination room's source"
    );
}
