//! Integration tests for the staged degrade → park → retry → drop
//! pipeline: link-override survival across device recovery, registry
//! churn for hosted instances, incremental-vs-full recovery equivalence,
//! exact resource refunds around park/readmit, and the Eq. 1 property
//! for degraded sessions.

use proptest::prelude::*;
use ubiqos::prelude::*;
use ubiqos_model::weaken_requirement;
use ubiqos_runtime::faults::{app_template, build_space};
use ubiqos_runtime::{DomainServer, RecoveryMode};

/// Satellite regression: a link degraded *independently* (network
/// weather, not a device fault) must keep its degraded capacity when an
/// endpoint device crashes and later recovers — recovery restores the
/// device, not the network.
#[test]
fn recover_device_preserves_independent_link_degradation() {
    let mut server = build_space(4);
    let pristine01 = server.pristine().bandwidth().get(0, 1);
    assert!(
        pristine01 > 20.0,
        "the 0-1 link starts above the test value"
    );
    server.degrade_link(DeviceId::from_index(0), DeviceId::from_index(1), 20.0);
    assert_eq!(server.capacity().bandwidth().get(0, 1), 20.0);

    server.handle_crash(DeviceId::from_index(0));
    assert_eq!(
        server.capacity().bandwidth().get(0, 1),
        0.0,
        "links of a crashed device carry nothing"
    );

    server.recover_device(DeviceId::from_index(0));
    assert_eq!(
        server.capacity().bandwidth().get(0, 1),
        20.0,
        "recovery must not clobber the independent link degradation"
    );
    // Untouched links of the recovered device do return to pristine.
    assert_eq!(
        server.capacity().bandwidth().get(0, 2),
        server.pristine().bandwidth().get(0, 2)
    );

    // Restoring the link to pristine clears the override entirely.
    server.degrade_link(DeviceId::from_index(0), DeviceId::from_index(1), pristine01);
    assert_eq!(server.capacity().bandwidth().get(0, 1), pristine01);
}

/// Satellite: registry churn. A crashed device's hosted instances must
/// vanish from discovery immediately and come back on recovery.
#[test]
fn crashed_hosts_instances_leave_discovery_until_recovery() {
    let mut server = build_space(3);
    let hosted_on_dev1 = |server: &DomainServer| {
        server
            .registry()
            .discover_all(&DiscoveryQuery::new("wav-source"))
            .iter()
            .filter(|h| h.descriptor.instance_id == "wav-source@dev1")
            .count()
    };
    assert_eq!(hosted_on_dev1(&server), 1, "hosted instance registered");

    server.handle_crash(DeviceId::from_index(1));
    assert_eq!(
        hosted_on_dev1(&server),
        0,
        "discovery must never return instances on down devices"
    );
    // The space-wide unpinned source still serves compositions.
    assert!(server
        .registry()
        .discover_all(&DiscoveryQuery::new("wav-source"))
        .iter()
        .any(|h| h.descriptor.instance_id == "wav-source@space"));

    server.recover_device(DeviceId::from_index(1));
    assert_eq!(hosted_on_dev1(&server), 1, "re-registered on recovery");
}

/// Tentpole cross-check, surfaced as an explicit test (debug builds also
/// assert it inside every pass): incremental recovery — scanning only
/// the fault's resource delta — selects exactly the sessions a full
/// O(sessions) scan selects, and both modes end in identical states.
#[test]
#[allow(clippy::type_complexity)]
fn incremental_and_full_recovery_are_equivalent() {
    let build = |mode: RecoveryMode| {
        let mut server = build_space(4);
        server.set_recovery_mode(mode);
        let mut ids = Vec::new();
        for i in 0..6 {
            let (name, graph) = app_template(i);
            let id = server
                .start_session(
                    format!("{name}-{i}"),
                    graph,
                    QosVector::new(),
                    DeviceId::from_index(1 + i % 3),
                )
                .expect("fresh space admits");
            ids.push(id);
        }
        (server, ids)
    };
    let (mut inc, ids) = build(RecoveryMode::Incremental);
    let (mut full, ids_full) = build(RecoveryMode::Full);
    assert_eq!(ids, ids_full);

    // Drive both servers through the same fault sequence, comparing the
    // recovery outcome after every step.
    let dev = DeviceId::from_index;
    let shrunk = ResourceVector::mem_cpu(48.0, 60.0);
    let steps: Vec<(
        &str,
        Box<dyn Fn(&mut DomainServer) -> ubiqos_runtime::RecoveryReport>,
    )> = vec![
        ("crash dev2", Box::new(move |s| s.handle_crash(dev(2)))),
        (
            "fluctuate dev1",
            Box::new(move |s| s.fluctuate(dev(1), shrunk.clone())),
        ),
        (
            "degrade link 0-1",
            Box::new(move |s| s.degrade_link(dev(0), dev(1), 10.0)),
        ),
        ("recover dev2", Box::new(move |s| s.recover_device(dev(2)))),
    ];
    for (label, step) in steps {
        let a = step(&mut inc);
        let b = step(&mut full);
        assert_eq!(a, b, "recovery reports diverged at `{label}`");
        assert_eq!(inc.env(), full.env(), "residuals diverged at `{label}`");
        assert_eq!(
            inc.capacity(),
            full.capacity(),
            "capacity diverged at `{label}`"
        );
        for &id in &ids {
            let pa = inc.session(id).map(|s| s.configuration.cut.clone());
            let pb = full.session(id).map(|s| s.configuration.cut.clone());
            assert_eq!(pa, pb, "placement of {id} diverged at `{label}`");
        }
        // The incremental mode never considers more than the full scan.
        assert!(a.affected <= a.considered);
    }
}

/// Satellite: parking refunds a session's resources *exactly*, and
/// re-admission + departure walks the environment back to the identical
/// idle state.
#[test]
fn park_and_readmit_refund_resources_exactly() {
    let mut server = build_space(3);
    let idle = server.env().clone();
    let (_, graph) = app_template(0);
    let id = server
        .start_session("audio", graph, QosVector::new(), DeviceId::from_index(1))
        .expect("admitted");
    assert_ne!(server.env(), &idle, "the session holds a charge");

    // Crash the client device: the session parks and every charge it
    // held must be refunded — residual equals (crash-adjusted) capacity.
    let report = server.handle_crash(DeviceId::from_index(1));
    assert_eq!(report.parked, vec![id]);
    assert_eq!(
        server.env(),
        server.capacity(),
        "a parked session holds exactly nothing"
    );

    // Recover (which eagerly re-admits), then stop: the environment
    // returns to the identical idle snapshot (refund is the exact
    // inverse of the readmit charge).
    let rec = server.recover_device(DeviceId::from_index(1));
    assert_eq!(rec.readmitted, vec![id]);
    assert_ne!(server.env(), &idle, "the readmitted session charges again");
    assert!(server.stop_session(id).is_some());
    assert_eq!(server.env(), &idle, "idle environment restored exactly");
}

/// Stopping a *parked* session (its scheduled departure arriving while
/// it waits in the retry queue) must not refund anything — it holds no
/// charge.
#[test]
fn stopping_a_parked_session_refunds_nothing() {
    let mut server = build_space(3);
    let (_, graph) = app_template(0);
    let id = server
        .start_session("audio", graph, QosVector::new(), DeviceId::from_index(1))
        .expect("admitted");
    server.handle_crash(DeviceId::from_index(1));
    assert_eq!(server.parked_count(), 1);
    let before = server.env().clone();
    assert!(
        server.stop_session(id).is_some(),
        "parked sessions can stop"
    );
    assert_eq!(server.parked_count(), 0);
    assert_eq!(
        server.env(),
        &before,
        "no charge existed, none was refunded"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Satellite property: whatever rung a fluctuation forces a session
    /// onto, the live configuration still satisfies Equation 1, and the
    /// QoS it delivers satisfies the user's requirement *weakened by the
    /// session's recorded factor* — degradation is honest about how far
    /// it went.
    #[test]
    fn degraded_sessions_still_satisfy_weakened_eq1(
        mem_frac in 0.02f64..1.0,
        cpu_frac in 0.02f64..1.0,
    ) {
        let mut server = build_space(3);
        let user_qos =
            QosVector::new().with(QosDimension::FrameRate, QosValue::range(5.0, 30.0));
        let (_, graph) = app_template(0);
        let id = server
            .start_session("audio", graph, user_qos.clone(), DeviceId::from_index(1))
            .expect("fresh space admits");

        let pristine = server
            .pristine()
            .device(1)
            .expect("device exists")
            .availability()
            .clone();
        let shrunk = pristine
            .scaled_by(&[mem_frac, cpu_frac])
            .expect("two dimensions");
        let report = server.fluctuate(DeviceId::from_index(1), shrunk);

        if let Some(s) = server.session(id) {
            let ladder = server.ladder().levels().to_vec();
            prop_assert!(
                ladder.iter().any(|&l| (l - s.degrade_factor).abs() < 1e-12),
                "factor {} is not a ladder rung", s.degrade_factor
            );
            prop_assert!(
                ubiqos_composition::diagnose(&s.configuration.app.graph).is_consistent(),
                "Eq. 1 must hold at every rung"
            );
            let weakened = weaken_requirement(&user_qos, s.degrade_factor);
            for (_, delivered) in
                ubiqos_runtime::streaming::sink_delivered_vectors(&s.configuration.app.graph)
            {
                let relevant: QosVector = weakened
                    .iter()
                    .filter(|(dim, _)| delivered.get(dim).is_some())
                    .map(|(d, v)| (d.clone(), v.clone()))
                    .collect();
                prop_assert!(
                    delivered.satisfies(&relevant),
                    "delivered {delivered:?} misses the weakened requirement {relevant:?} \
                     at factor {}", s.degrade_factor
                );
            }
        } else {
            // Unplaceable at every rung: the session must be parked (not
            // silently dropped), with its resources refunded.
            prop_assert_eq!(report.parked.clone(), vec![id], "{:?}", report);
            prop_assert_eq!(server.parked_count(), 1);
            prop_assert_eq!(server.env(), server.capacity());
        }
        // Either way nothing is ever dropped under the default policy.
        prop_assert!(report.dropped.is_empty());
    }
}
