//! Durability equivalence suite: the per-shard WAL + snapshot layer
//! must be invisible when no crash happens (crash-free runs are
//! byte-identical with durability on or off, at every shard count,
//! under perfect and imperfect detection), and every seeded
//! `ShardCrash`/`ShardRestart` schedule — including crashes dropped
//! mid-handoff and crashes composed with lossy transport and
//! partition-aligned burst loss — must rebuild its shards from
//! snapshot + WAL replay and drain to the crash-free run's exact
//! per-shard event-log digests.

use ubiqos_runtime::{
    run_federation_campaign, run_federation_campaign_lossy, run_federation_campaign_with,
    FaultCampaignConfig, FederationConfig, LossConfig, ShardPartition,
};
use ubiqos_sim::{merge_schedules, FaultKind, MobilityWaveConfig, ShardCrashPlan, TimedFault};

/// A 16-device campaign that exercises every federation mechanism:
/// device faults, mobility-driven cross-shard handoffs, forwarded
/// discovery, parks and retries.
fn cfg(shards: usize) -> FederationConfig {
    FederationConfig {
        base: FaultCampaignConfig {
            devices: 16,
            requests: 96,
            horizon_h: 10.0,
            faults: 12,
            ..FaultCampaignConfig::default()
        },
        shards,
        mobility: MobilityWaveConfig {
            moves: 16,
            waves: 3,
            horizon_h: 10.0,
            devices: 16,
            ..MobilityWaveConfig::default()
        },
        ..FederationConfig::default()
    }
}

fn imperfect(shards: usize) -> FederationConfig {
    let mut c = cfg(shards);
    c.base.detection_grace_h = 0.05;
    c.base.partitions = 1;
    c
}

fn crash_plan(crashes: usize, shards: usize) -> ShardCrashPlan {
    ShardCrashPlan {
        crashes,
        shards,
        horizon_h: 10.0,
        outage_h: 0.3,
        ..ShardCrashPlan::default()
    }
}

/// Acceptance gate: durability-on, crash-free runs are byte-identical
/// to the durability-off engine at 1/2/4/8 shards.
#[test]
fn crash_free_durability_is_byte_identical_at_1_2_4_8_shards() {
    for shards in [1usize, 2, 4, 8] {
        let on = cfg(shards);
        let mut off = cfg(shards);
        off.durability.enabled = false;
        let a = run_federation_campaign(&on).expect("durability-on run");
        let b = run_federation_campaign(&off).expect("durability-off run");
        assert_eq!(a.combined_digest, b.combined_digest, "{shards} shards");
        for (s, (x, y)) in a.shards.iter().zip(&b.shards).enumerate() {
            assert_eq!(
                x.log.render(),
                y.log.render(),
                "shard {s}/{shards} event log drifted under journaling"
            );
            assert_eq!(x.report, y.report, "shard {s}/{shards} report drifted");
        }
        assert!(a.stats.wal_records > 0);
        assert_eq!(b.stats.wal_records, 0);
    }
}

/// The same gate under imperfect detection (lease-driven suspicion,
/// heartbeats, anti-entropy sweeps — the WAL's trickiest records).
#[test]
fn crash_free_durability_is_byte_identical_under_imperfect_detection() {
    for shards in [1usize, 2, 4, 8] {
        let on = imperfect(shards);
        let mut off = imperfect(shards);
        off.durability.enabled = false;
        let a = run_federation_campaign(&on).expect("durability-on run");
        let b = run_federation_campaign(&off).expect("durability-off run");
        assert_eq!(a.combined_digest, b.combined_digest, "{shards} shards");
        for (x, y) in a.shards.iter().zip(&b.shards) {
            assert_eq!(x.log.render(), y.log.render());
            assert_eq!(x.report, y.report);
        }
    }
}

/// Seeded crash schedules converge to the crash-free digests across
/// shard counts — including the degenerate single-shard federation,
/// where the crashed server *is* the whole control plane.
#[test]
fn seeded_crashes_converge_at_every_shard_count() {
    for shards in [1usize, 2, 4] {
        let baseline = run_federation_campaign(&cfg(shards)).expect("crash-free run");
        let mut crashed_cfg = cfg(shards);
        crashed_cfg.crashes = crash_plan(3, shards);
        let crashed = run_federation_campaign(&crashed_cfg).expect("crashed run");
        assert!(
            crashed.stats.shard_crashes >= 1,
            "{shards} shards: the plan scheduled no crash"
        );
        assert_eq!(
            crashed.shard_digests(),
            baseline.shard_digests(),
            "{shards} shards: crashed run diverged from the crash-free digests"
        );
        assert!(crashed.fates_balance());
    }
}

/// Crash × loss-rate matrix: the WAL rebuild composes with the PR-8
/// reliable sublayer — seeded drop/dup/reorder on top of crash outage
/// windows still drains to the crash-free perfect digests.
#[test]
fn crashes_compose_with_lossy_transport() {
    let shards = 4;
    let baseline = run_federation_campaign(&cfg(shards)).expect("crash-free run");
    for crashes in [2usize, 4] {
        for loss in [0.05f64, 0.2] {
            let mut c = cfg(shards);
            c.crashes = crash_plan(crashes, shards);
            let schedule = c.schedule();
            let lc = LossConfig::lossy(0xd07_ab1e ^ loss.to_bits(), loss);
            let (crashed, loss_stats) =
                run_federation_campaign_lossy(&c, &schedule, lc).expect("crashed lossy run");
            assert!(loss_stats.drops > 0, "the injector actually dropped");
            assert!(crashed.stats.shard_crashes >= 1);
            assert_eq!(
                crashed.shard_digests(),
                baseline.shard_digests(),
                "{crashes} crashes at loss {loss} diverged"
            );
        }
    }
}

/// Crash composed with a shard partition and partition-aligned burst
/// loss: the suspected-shard machinery, the burst injector, and the
/// crash outage windows all overlap, and the run still converges to
/// its own crash-free baseline.
#[test]
fn crashes_compose_with_partition_aligned_bursts() {
    let shards = 4;
    let partition = ShardPartition {
        shard: 1,
        from_h: 3.0,
        to_h: 3.5,
    };
    let mut base = cfg(shards);
    base.shard_partitions = vec![partition];
    let baseline = run_federation_campaign(&base).expect("partitioned crash-free run");

    let mut c = cfg(shards);
    c.shard_partitions = vec![partition];
    c.crashes = crash_plan(3, shards);
    let schedule = c.schedule();
    let lc = LossConfig::lossy(0x0bad_ca5e, 0.1).align_bursts(&c.shard_partitions);
    let (crashed, _) =
        run_federation_campaign_lossy(&c, &schedule, lc).expect("crashed bursty run");
    assert!(crashed.stats.shard_crashes >= 1);
    assert_eq!(
        crashed.shard_digests(),
        baseline.shard_digests(),
        "crash + partition + aligned bursts diverged from the crash-free digests"
    );
}

/// A crash window opened in the middle of a two-phase handoff (between
/// a `move-user` pick and its commit decision) on both endpoints: the
/// recovered reservation ledger completes or expires the handoff
/// without double-charging, and the digests still converge.
#[test]
fn a_crash_mid_handoff_converges() {
    let shards = 2;
    let base = cfg(shards);
    let schedule = base.schedule();
    let baseline = run_federation_campaign_with(&base, &schedule).expect("crash-free run");
    assert!(
        baseline.stats.handoffs_initiated > 0,
        "the mobility overlay must actually cross shards"
    );
    // Drop a crash inside every move's reserve→decide window, on the
    // shard the commit lag is racing: both endpoints, alternating.
    let mut crash_faults: Vec<TimedFault> = Vec::new();
    for (k, f) in schedule
        .iter()
        .filter(|f| {
            matches!(
                f.kind,
                FaultKind::MoveUser { .. } | FaultKind::SwitchDevice { .. }
            )
        })
        .enumerate()
        .take(4)
    {
        let shard = k % shards;
        let at_h = f.at_h + base.commit_lag_h * 0.5;
        crash_faults.push(TimedFault {
            at_h,
            kind: FaultKind::ShardCrash { shard },
        });
        crash_faults.push(TimedFault {
            at_h: at_h + 0.05,
            kind: FaultKind::ShardRestart { shard },
        });
    }
    assert!(!crash_faults.is_empty(), "no moves in the schedule");
    let merged = merge_schedules(&schedule, &crash_faults);
    let crashed = run_federation_campaign_with(&base, &merged).expect("crash-mid-handoff run");
    assert_eq!(crashed.stats.shard_crashes, crash_faults.len() as u64 / 2);
    assert_eq!(
        crashed.shard_digests(),
        baseline.shard_digests(),
        "a crash inside the reserve→decide window broke the handoff ledger"
    );
    assert!(crashed.fates_balance());
}
