//! In-tree shim for the `criterion` crate.
//!
//! A deliberately small wall-clock harness with criterion's API shape:
//! benchmark groups, `bench_function` / `bench_with_input`, `iter` /
//! `iter_batched`, `criterion_group!` / `criterion_main!`. There is no
//! statistical analysis — each benchmark is warmed up once and timed
//! over a handful of runs, reporting min/mean/max.
//!
//! When the executable receives a `--test` argument (as `cargo test`
//! passes to `harness = false` bench targets), every benchmark body
//! runs exactly once so the test suite stays fast.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level benchmark driver, one per bench executable.
pub struct Criterion {
    test_mode: bool,
}

impl Criterion {
    /// Builds a driver from the process arguments (`--test` → run each
    /// benchmark once, without timing loops).
    pub fn from_args() -> Self {
        let test_mode = std::env::args().any(|a| a == "--test");
        Criterion { test_mode }
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            test_mode: self.test_mode,
            sample_size: 10,
            _criterion: self,
        }
    }

    /// Benchmarks outside any group.
    pub fn bench_function<F>(&mut self, id: impl Display, f: F)
    where
        F: FnMut(&mut Bencher),
    {
        let test_mode = self.test_mode;
        run_benchmark(&id.to_string(), test_mode, 10, f);
    }
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion::from_args()
    }
}

/// A named set of benchmarks sharing settings.
pub struct BenchmarkGroup<'a> {
    name: String,
    test_mode: bool,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed runs per benchmark (the shim caps the
    /// actual count to keep wall-clock time reasonable).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    /// Runs one benchmark in this group.
    pub fn bench_function<F>(&mut self, id: impl Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id);
        run_benchmark(&full, self.test_mode, self.sample_size, f);
        self
    }

    /// Runs one parameterized benchmark in this group.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id.0);
        run_benchmark(&full, self.test_mode, self.sample_size, |b| f(b, input));
        self
    }

    /// Ends the group (a no-op in the shim; kept for API parity).
    pub fn finish(self) {}
}

/// A benchmark's identifier, optionally derived from its parameter.
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// `name/parameter` identifier.
    pub fn new(name: impl Display, parameter: impl Display) -> Self {
        BenchmarkId(format!("{name}/{parameter}"))
    }

    /// Identifier that is just the parameter.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId(parameter.to_string())
    }
}

/// How much setup output to batch per timing run; the shim times one
/// setup+routine pair per run regardless.
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    /// Small routine input (the only variant this workspace uses).
    SmallInput,
    /// Large routine input.
    LargeInput,
}

/// Passed to each benchmark body to drive the timing loop.
pub struct Bencher {
    iters: usize,
    samples: Vec<Duration>,
}

impl Bencher {
    /// Times `routine`, `iters` times.
    pub fn iter<O, F>(&mut self, mut routine: F)
    where
        F: FnMut() -> O,
    {
        for _ in 0..self.iters {
            let start = Instant::now();
            let out = routine();
            self.samples.push(start.elapsed());
            drop(black_box(out));
        }
    }

    /// Times `routine` on fresh input from `setup`; setup time is not
    /// counted.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            let out = routine(input);
            self.samples.push(start.elapsed());
            drop(black_box(out));
        }
    }
}

fn run_benchmark<F>(name: &str, test_mode: bool, sample_size: usize, mut f: F)
where
    F: FnMut(&mut Bencher),
{
    // Cap timed runs: the shim reports indicative numbers, not a
    // statistically rigorous distribution.
    let iters = if test_mode {
        1
    } else {
        sample_size.clamp(1, 7)
    };
    if !test_mode {
        // One untimed warmup pass.
        let mut warm = Bencher {
            iters: 1,
            samples: Vec::new(),
        };
        f(&mut warm);
    }
    let mut bencher = Bencher {
        iters,
        samples: Vec::new(),
    };
    f(&mut bencher);
    report(name, test_mode, &bencher.samples);
}

fn report(name: &str, test_mode: bool, samples: &[Duration]) {
    if test_mode {
        println!("test {name} ... ok");
        return;
    }
    if samples.is_empty() {
        println!("{name:<50} (no samples)");
        return;
    }
    let min = samples.iter().min().expect("non-empty");
    let max = samples.iter().max().expect("non-empty");
    let mean = samples.iter().sum::<Duration>() / samples.len() as u32;
    println!(
        "{name:<50} [{} {} {}] ({} runs)",
        fmt_duration(*min),
        fmt_duration(mean),
        fmt_duration(*max),
        samples.len()
    );
}

fn fmt_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos < 1_000 {
        format!("{nanos} ns")
    } else if nanos < 1_000_000 {
        format!("{:.2} µs", nanos as f64 / 1e3)
    } else if nanos < 1_000_000_000 {
        format!("{:.2} ms", nanos as f64 / 1e6)
    } else {
        format!("{:.3} s", nanos as f64 / 1e9)
    }
}

/// Bundles benchmark functions into a callable group.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::from_args();
            $( $target(&mut criterion); )+
        }
    };
}

/// Generates `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn groups_run_bodies_and_count_samples() {
        let mut c = Criterion { test_mode: true };
        let mut runs = 0;
        {
            let mut group = c.benchmark_group("g");
            group.sample_size(30);
            group.bench_function("f", |b| b.iter(|| runs += 1));
            group.bench_with_input(BenchmarkId::from_parameter(4), &4, |b, &n| {
                b.iter_batched(|| n, |x| x * 2, BatchSize::SmallInput)
            });
            group.finish();
        }
        assert_eq!(runs, 1, "--test mode runs each body once");
    }

    #[test]
    fn durations_format_with_sane_units() {
        assert_eq!(fmt_duration(Duration::from_nanos(12)), "12 ns");
        assert!(fmt_duration(Duration::from_micros(1500)).ends_with("ms"));
        assert!(fmt_duration(Duration::from_secs(2)).ends_with("s"));
    }
}
