//! In-tree shim for the `crossbeam` crate.
//!
//! Only `crossbeam::channel::{unbounded, Sender, Receiver}` is used in
//! this workspace; `std::sync::mpsc` provides the identical semantics
//! needed here (unbounded MPSC, `send` failing once the receiver is
//! dropped), so the shim simply re-exports it under crossbeam's names.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Multi-producer channels (`crossbeam::channel` subset).
pub mod channel {
    pub use std::sync::mpsc::{Receiver, Sender};

    /// Creates an unbounded channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        std::sync::mpsc::channel()
    }
}

#[cfg(test)]
mod tests {
    use super::channel::unbounded;

    #[test]
    fn roundtrip_and_disconnect() {
        let (tx, rx) = unbounded();
        tx.send(5).unwrap();
        assert_eq!(rx.try_iter().count(), 1);
        drop(rx);
        assert!(tx.send(6).is_err());
    }
}
