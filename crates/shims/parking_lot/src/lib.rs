//! In-tree shim for the `parking_lot` crate.
//!
//! Provides `Mutex` with parking_lot's ergonomics — `lock()` returns the
//! guard directly instead of a poison `Result` — implemented over
//! `std::sync::Mutex` (a poisoned lock is recovered, matching
//! parking_lot's "no poisoning" semantics).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::sync::PoisonError;

/// A mutual-exclusion lock that never poisons.
#[derive(Debug, Default)]
pub struct Mutex<T>(std::sync::Mutex<T>);

/// RAII guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Creates a mutex guarding `value`.
    pub fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Acquires the lock, blocking the current thread.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::Mutex;

    #[test]
    fn lock_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn survives_a_panicked_holder() {
        let m = std::sync::Arc::new(Mutex::new(0));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison attempt");
        })
        .join();
        *m.lock() += 1; // parking_lot semantics: no poisoning
        assert_eq!(*m.lock(), 1);
    }
}
