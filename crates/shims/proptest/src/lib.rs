//! In-tree shim for the `proptest` crate.
//!
//! Sample-based property testing: each `#[test]` inside [`proptest!`]
//! runs its body against `cases` inputs drawn from the argument
//! strategies, seeded deterministically from the test's module path and
//! case index, so failures reproduce across runs. Shrinking is not
//! implemented — a failing case panics with the sampled inputs'
//! assertion message directly.
//!
//! Implemented surface (what this workspace's property tests use):
//! ranges over primitive numbers, tuples, [`Just`], `&str` patterns
//! (arbitrary printable strings), `prop_map` / `prop_flat_map` /
//! `prop_filter_map`, [`prop_oneof!`] (weighted and unweighted),
//! `collection::{vec, btree_set}`, `option::of`, `bool::ANY`,
//! `any::<bool>()`, `ProptestConfig::with_cases`, and the
//! `prop_assert!` / `prop_assert_eq!` macros.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::sync::Arc;

/// The RNG driving every strategy sample.
pub type TestRng = rand::rngs::StdRng;

/// Per-test-case configuration (`#![proptest_config(...)]`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of sampled cases each property runs against.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` samples per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// Deterministic RNG for one case of one property test.
pub fn rng_for_case(test_path: &str, case: u32) -> TestRng {
    use rand::SeedableRng;
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for byte in test_path.bytes() {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    TestRng::seed_from_u64(hash ^ (u64::from(case).wrapping_mul(0x9e37_79b9_7f4a_7c15)))
}

/// A generator of test inputs.
///
/// Unlike upstream proptest there is no value tree: a strategy is a
/// plain sampler, and rejection (`prop_filter_map`) simply resamples.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Transforms generated values.
    fn prop_map<T, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> T,
    {
        Map { inner: self, f }
    }

    /// Builds a dependent strategy from each generated value.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }

    /// Transforms values, resampling when the function returns `None`.
    fn prop_filter_map<T, F>(self, whence: &'static str, f: F) -> FilterMap<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> Option<T>,
    {
        FilterMap {
            inner: self,
            whence,
            f,
        }
    }
}

/// See [`Strategy::prop_map`].
#[derive(Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, T, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> T,
{
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        (self.f)(self.inner.sample(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
#[derive(Clone)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, S2, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;

    fn sample(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.sample(rng)).sample(rng)
    }
}

/// See [`Strategy::prop_filter_map`].
#[derive(Clone)]
pub struct FilterMap<S, F> {
    inner: S,
    whence: &'static str,
    f: F,
}

impl<S, T, F> Strategy for FilterMap<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> Option<T>,
{
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        for _ in 0..4096 {
            if let Some(v) = (self.f)(self.inner.sample(rng)) {
                return v;
            }
        }
        panic!(
            "proptest shim: filter `{}` rejected 4096 samples",
            self.whence
        );
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                use rand::Rng;
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                use rand::Rng;
                rng.gen_range(self.clone())
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

macro_rules! impl_tuple_strategy {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )*};
}
impl_tuple_strategy! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
    (A: 0, B: 1, C: 2, D: 3, E: 4)
}

/// `&str` patterns generate arbitrary printable strings. The only
/// pattern the workspace uses is `"\\PC*"` (any non-control text), so
/// the pattern itself is ignored beyond that intent: samples mix ASCII
/// printables with multi-byte characters and never contain controls.
impl Strategy for &str {
    type Value = String;

    fn sample(&self, rng: &mut TestRng) -> String {
        use rand::Rng;
        const POOL: &[char] = &[
            'a', 'b', 'z', 'A', 'Z', '0', '9', ' ', '{', '}', '[', ']', '-', '>', '@', '#', '=',
            '"', '\\', '.', ',', ';', ':', '_', '/', '*', 'é', 'π', '中', '😀',
        ];
        let len = rng.gen_range(0usize..64);
        (0..len)
            .map(|_| POOL[rng.gen_range(0..POOL.len())])
            .collect()
    }
}

/// A weighted choice between boxed alternatives ([`prop_oneof!`]).
pub struct Union<T> {
    arms: Vec<(u32, Arc<dyn Strategy<Value = T>>)>,
    total: u32,
}

impl<T> Clone for Union<T> {
    fn clone(&self) -> Self {
        Union {
            arms: self.arms.clone(),
            total: self.total,
        }
    }
}

impl<T> Union<T> {
    /// Builds a union from `(weight, strategy)` arms.
    pub fn weighted(arms: Vec<(u32, Arc<dyn Strategy<Value = T>>)>) -> Self {
        let total = arms.iter().map(|(w, _)| *w).sum();
        assert!(total > 0, "prop_oneof! needs at least one positive weight");
        Union { arms, total }
    }
}

/// Erases a strategy's type for use as a [`Union`] arm.
pub fn arc_strategy<S>(strategy: S) -> Arc<dyn Strategy<Value = S::Value>>
where
    S: Strategy + 'static,
{
    Arc::new(strategy)
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        use rand::Rng;
        let mut pick = rng.gen_range(0..self.total);
        for (weight, arm) in &self.arms {
            if pick < *weight {
                return arm.sample(rng);
            }
            pick -= weight;
        }
        unreachable!("weights sum to total");
    }
}

/// Collection strategies (`proptest::collection`).
pub mod collection {
    use super::{Strategy, TestRng};

    /// A size bound: an exact length or a half-open range.
    #[derive(Debug, Clone)]
    pub struct SizeRange(std::ops::Range<usize>);

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange(n..n + 1)
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            SizeRange(r)
        }
    }

    impl SizeRange {
        fn sample(&self, rng: &mut TestRng) -> usize {
            use rand::Rng;
            if self.0.is_empty() {
                self.0.start
            } else {
                rng.gen_range(self.0.clone())
            }
        }
    }

    /// A strategy for `Vec`s of `element` with a length in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// See [`vec`].
    #[derive(Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.size.sample(rng);
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }

    /// A strategy for `BTreeSet`s of `element` with a size in `size`.
    pub fn btree_set<S>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        BTreeSetStrategy {
            element,
            size: size.into(),
        }
    }

    /// See [`btree_set`].
    #[derive(Clone)]
    pub struct BTreeSetStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S> Strategy for BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        type Value = std::collections::BTreeSet<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            let target = self.size.sample(rng);
            let mut set = std::collections::BTreeSet::new();
            // Duplicates shrink the set; bound the retries so a small
            // element domain cannot loop forever.
            for _ in 0..target.saturating_mul(64).max(64) {
                if set.len() >= target {
                    break;
                }
                set.insert(self.element.sample(rng));
            }
            set
        }
    }
}

/// `Option` strategies (`proptest::option`).
pub mod option {
    use super::{Strategy, TestRng};

    /// `None` a quarter of the time, `Some(inner)` otherwise.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    /// See [`of`].
    #[derive(Clone)]
    pub struct OptionStrategy<S> {
        inner: S,
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Option<S::Value> {
            use rand::Rng;
            if rng.gen_bool(0.25) {
                None
            } else {
                Some(self.inner.sample(rng))
            }
        }
    }
}

/// `bool` strategies (`proptest::bool`).
pub mod bool {
    use super::{Strategy, TestRng};

    /// A strategy yielding both booleans uniformly.
    #[derive(Debug, Clone, Copy)]
    pub struct Any;

    /// The canonical boolean strategy (`prop::bool::ANY`).
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = std::primitive::bool;

        fn sample(&self, rng: &mut TestRng) -> std::primitive::bool {
            use rand::Rng;
            rng.gen::<std::primitive::bool>()
        }
    }
}

/// Types with a canonical strategy (`any::<T>()`).
pub trait Arbitrary: Sized {
    /// The canonical strategy for this type.
    type Strategy: Strategy<Value = Self>;

    /// Builds the canonical strategy.
    fn arbitrary() -> Self::Strategy;
}

impl Arbitrary for std::primitive::bool {
    type Strategy = bool::Any;

    fn arbitrary() -> bool::Any {
        bool::Any
    }
}

/// The canonical strategy for `T` (`any::<bool>()`).
pub fn any<T: Arbitrary>() -> T::Strategy {
    T::arbitrary()
}

/// The `prop::` module alias used by `prop::bool::ANY` etc.
pub mod prop {
    pub use super::{bool, collection, option};
}

/// Everything property tests usually import.
pub mod prelude {
    pub use super::{any, prop, Arbitrary, Just, ProptestConfig, Strategy};
    pub use crate::{prop_assert, prop_assert_eq, prop_oneof, proptest};
}

/// Defines property tests: `#[test]` functions whose arguments are
/// drawn from strategies (`arg in strategy`).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($config:expr) ) => {};
    ( ($config:expr)
      $(#[$meta:meta])*
      fn $name:ident ( $($pat:pat_param in $strat:expr),+ $(,)? ) $body:block
      $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::ProptestConfig = $config;
            for __case in 0..__config.cases {
                let mut __rng = $crate::rng_for_case(
                    concat!(module_path!(), "::", stringify!($name)),
                    __case,
                );
                let ($($pat,)+) = (
                    $( $crate::Strategy::sample(&($strat), &mut __rng), )+
                );
                // Upstream proptest runs bodies in a closure returning
                // `Result`, so tests may `return Ok(())` to skip a case.
                #[allow(clippy::redundant_closure_call)]
                let __outcome: ::std::result::Result<(), ::std::string::String> =
                    (move || {
                        $body
                        #[allow(unreachable_code)]
                        ::std::result::Result::Ok(())
                    })();
                if let ::std::result::Result::Err(__msg) = __outcome {
                    panic!("property failed on case {__case}: {__msg}");
                }
            }
        }
        $crate::__proptest_impl! { ($config) $($rest)* }
    };
}

/// Asserts a condition inside a property test.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            panic!("property assertion failed: {}", stringify!($cond));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            panic!($($fmt)+);
        }
    };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        if !(*__l == *__r) {
            panic!(
                "property assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                stringify!($left),
                stringify!($right),
                __l,
                __r
            );
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        if !(*__l == *__r) {
            panic!($($fmt)+);
        }
    }};
}

/// Chooses between strategies, optionally weighted (`w => strategy`).
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::Union::weighted(::std::vec![
            $( (($weight) as u32, $crate::arc_strategy($strat)) ),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::Union::weighted(::std::vec![
            $( (1u32, $crate::arc_strategy($strat)) ),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn ranges_stay_in_bounds_and_are_deterministic() {
        let mut rng_a = super::rng_for_case("t", 3);
        let mut rng_b = super::rng_for_case("t", 3);
        let strat = (0usize..5, 1.5f64..2.5);
        for _ in 0..200 {
            let (n, f) = Strategy::sample(&strat, &mut rng_a);
            assert!(n < 5 && (1.5..2.5).contains(&f));
            assert_eq!((n, f), Strategy::sample(&strat, &mut rng_b));
        }
    }

    #[test]
    fn combinators_compose() {
        let mut rng = super::rng_for_case("c", 0);
        let dag = (2usize..9).prop_flat_map(|n| {
            let edges = super::collection::vec(
                (0..n, 0..n).prop_filter_map("fwd", |(a, b)| (a < b).then_some((a, b))),
                0..6,
            );
            (Just(n), edges)
        });
        for _ in 0..50 {
            let (n, edges) = Strategy::sample(&dag, &mut rng);
            assert!((2..9).contains(&n));
            for (a, b) in edges {
                assert!(a < b && b < n);
            }
        }
    }

    #[test]
    fn oneof_honours_weights() {
        let mut rng = super::rng_for_case("w", 1);
        let strat = prop_oneof![9 => Just(1u8), 1 => Just(2u8)];
        let picks: Vec<u8> = (0..300)
            .map(|_| Strategy::sample(&strat, &mut rng))
            .collect();
        let twos = picks.iter().filter(|&&p| p == 2).count();
        assert!(twos > 0 && twos < 90, "~10% expected, saw {twos}/300");
        let cloned = strat.clone();
        let _ = Strategy::sample(&cloned, &mut rng);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        /// The macro itself: patterns, trailing comma, tuple patterns.
        #[test]
        fn macro_end_to_end(
            (n, flag) in (1usize..4, prop::bool::ANY),
            text in "\\PC*",
            opt in super::option::of(0u8..3),
        ) {
            prop_assert!((1..4).contains(&n));
            prop_assert!(!text.chars().any(char::is_control));
            if let Some(x) = opt {
                prop_assert!(x < 3, "x = {x}");
            }
            prop_assert_eq!(flag, flag);
        }
    }
}
