//! In-tree shim for the `rand` crate.
//!
//! The build environment has no network access, so this crate provides
//! the *subset* of the rand 0.8 API the workspace actually uses — a
//! seedable PRNG (`rngs::StdRng`), the [`Rng`] extension methods
//! `gen`, `gen_range`, and `gen_bool`, and [`SeedableRng::seed_from_u64`].
//!
//! The generator is xoshiro256** seeded through SplitMix64 — a
//! well-studied, fast, equidistributed combination (Blackman & Vigna).
//! It is **not** the ChaCha12 generator real `StdRng` wraps, so absolute
//! random sequences differ from upstream rand; everything in this
//! workspace only relies on determinism-per-seed and uniformity, both of
//! which hold.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Low-level generator interface: a source of uniform `u64`s.
pub trait RngCore {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Types that can be sampled uniformly from `Rng::gen`.
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// A half-open or inclusive range that can be sampled uniformly.
pub trait SampleRange<T> {
    /// Draws one value from the range.
    ///
    /// # Panics
    ///
    /// Panics when the range is empty, matching upstream rand.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as u128).wrapping_sub(lo as u128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + (rng.next_u64() % (span + 1)) as $t
            }
        }
    )*};
}
impl_sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_sample_range_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let u = <$t as Standard>::sample_standard(rng);
                self.start + (self.end - self.start) * u
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let u = <$t as Standard>::sample_standard(rng);
                lo + (hi - lo) * u
            }
        }
    )*};
}
impl_sample_range_float!(f32, f64);

/// User-facing random-sampling methods, auto-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value of any [`Standard`]-samplable type.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    /// Draws a value uniformly from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= p <= 1.0`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "p={p} not in [0, 1]");
        f64::sample_standard(self) < p
    }
}

impl<R: RngCore> Rng for R {}

/// Deterministically seedable generators.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed, expanding it through
    /// SplitMix64 exactly like upstream rand's `seed_from_u64`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Named generator types, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard PRNG: xoshiro256** seeded via SplitMix64.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let mut s = [0u64; 4];
            for slot in &mut s {
                *slot = splitmix64(&mut sm);
            }
            // xoshiro is degenerate on the all-zero state; SplitMix64
            // cannot produce four zeros from one seed, but guard anyway.
            if s == [0; 4] {
                s[0] = 0x9e37_79b9_7f4a_7c15;
            }
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(StdRng::seed_from_u64(42).gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x = rng.gen_range(3usize..17);
            assert!((3..17).contains(&x));
            let y = rng.gen_range(2.5f64..9.75);
            assert!((2.5..9.75).contains(&y));
            let z = rng.gen_range(10u64..=12);
            assert!((10..=12).contains(&z));
            let w = rng.gen_range(-1.5f64..1.5);
            assert!((-1.5..1.5).contains(&w));
        }
    }

    #[test]
    fn unit_interval_and_bool() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut trues = 0;
        for _ in 0..10_000 {
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
            if rng.gen_bool(0.25) {
                trues += 1;
            }
        }
        assert!((1_500..3_500).contains(&trues), "{trues} not ~2500");
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }

    #[test]
    fn rough_uniformity() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut buckets = [0usize; 8];
        for _ in 0..80_000 {
            buckets[rng.gen_range(0usize..8)] += 1;
        }
        for &b in &buckets {
            assert!((9_000..11_000).contains(&b), "bucket {b} far from 10k");
        }
    }
}
