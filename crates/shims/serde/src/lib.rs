//! In-tree shim for the `serde` crate.
//!
//! The build environment has no network access, so this crate provides a
//! compact, value-tree based re-implementation of the serde API surface
//! this workspace uses:
//!
//! * [`Serialize`] / [`Deserialize`] traits, centred on a JSON-shaped
//!   [`Value`] tree rather than serde's streaming data model;
//! * `#[derive(Serialize, Deserialize)]` (from the sibling
//!   `serde_derive` shim) for structs and enums, honouring
//!   `#[serde(with = "module")]` field attributes;
//! * [`Serializer`] / [`Deserializer`] traits so hand-written `with`
//!   modules keep serde's calling convention;
//! * implementations for the std types the workspace serializes
//!   (integers, floats, `String`, tuples, `Vec`, `Option`, `BTreeMap`,
//!   `BTreeSet`, `RangeInclusive`).
//!
//! Externally tagged enums, transparent newtypes, and missing-field
//! `Option` defaults all follow upstream serde's conventions, so the
//! JSON produced by the sibling `serde_json` shim looks exactly like
//! what the real stack would emit for these types.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

pub use serde_derive::{Deserialize, Serialize};

/// A JSON number: unsigned, signed, or floating point.
#[derive(Debug, Clone, Copy)]
pub enum Number {
    /// A non-negative integer.
    U(u64),
    /// A negative integer.
    I(i64),
    /// A floating-point number.
    F(f64),
}

impl Number {
    /// The number as `f64` (always possible).
    pub fn as_f64(&self) -> f64 {
        match *self {
            Number::U(u) => u as f64,
            Number::I(i) => i as f64,
            Number::F(f) => f,
        }
    }

    /// The number as `u64`, when exactly representable.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Number::U(u) => Some(u),
            Number::I(i) => u64::try_from(i).ok(),
            Number::F(f) if f >= 0.0 && f.fract() == 0.0 && f <= u64::MAX as f64 => Some(f as u64),
            Number::F(_) => None,
        }
    }

    /// The number as `i64`, when exactly representable.
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Number::U(u) => i64::try_from(u).ok(),
            Number::I(i) => Some(i),
            Number::F(f) if f.fract() == 0.0 && f >= i64::MIN as f64 && f <= i64::MAX as f64 => {
                Some(f as i64)
            }
            Number::F(_) => None,
        }
    }
}

impl PartialEq for Number {
    fn eq(&self, other: &Self) -> bool {
        match (self, other) {
            (Number::U(a), Number::U(b)) => a == b,
            (Number::I(a), Number::I(b)) => a == b,
            (Number::F(a), Number::F(b)) => a == b,
            _ => self.as_f64() == other.as_f64(),
        }
    }
}

/// A JSON-shaped value tree — the pivot format of this shim.
///
/// Objects preserve insertion order (serde_json's default map also
/// iterates in insertion order for small documents; nothing in the
/// workspace depends on key ordering).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// JSON number.
    Number(Number),
    /// JSON string.
    String(String),
    /// JSON array.
    Array(Vec<Value>),
    /// JSON object as ordered key/value pairs.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Looks up a key of an object.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as `f64` when it is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(n.as_f64()),
            _ => None,
        }
    }

    /// The value as `u64` when it is an exactly-representable number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(n) => n.as_u64(),
            _ => None,
        }
    }

    /// The value as `&str` when it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice when it is an array.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// Looks up a key of an object, inserting `Null` when absent
    /// (serde_json's `IndexMut` auto-vivification).
    pub fn entry_mut(&mut self, key: &str) -> &mut Value {
        let Value::Object(pairs) = self else {
            panic!("cannot index into {} with a string key", self.kind());
        };
        if let Some(i) = pairs.iter().position(|(k, _)| k == key) {
            return &mut pairs[i].1;
        }
        pairs.push((key.to_owned(), Value::Null));
        &mut pairs.last_mut().expect("just pushed").1
    }

    /// A short description of the value's kind, for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Number(_) => "number",
            Value::String(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }
}

/// `value["key"]` returns `Null` for missing keys and non-objects,
/// matching serde_json.
impl std::ops::Index<&str> for Value {
    type Output = Value;

    fn index(&self, key: &str) -> &Value {
        const NULL: Value = Value::Null;
        self.get(key).unwrap_or(&NULL)
    }
}

/// `value["key"] = x` overwrites or inserts the key; panics when the
/// value is not an object, matching serde_json.
impl std::ops::IndexMut<&str> for Value {
    fn index_mut(&mut self, key: &str) -> &mut Value {
        self.entry_mut(key)
    }
}

/// The error type shared by serialization and deserialization.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl Error {
    /// Builds an error from any displayable message.
    pub fn custom<T: fmt::Display>(msg: T) -> Self {
        Error(msg.to_string())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

/// Data formats that [`Serialize::serialize`] can drive.
///
/// The shim's data model is the [`Value`] tree, so a serializer is
/// simply a sink for one value.
pub trait Serializer: Sized {
    /// What the serializer produces on success.
    type Ok;
    /// The serializer's error type.
    type Error;

    /// Consumes one value tree.
    fn serialize_value(self, value: Value) -> Result<Self::Ok, Self::Error>;
}

/// Data formats that [`Deserialize::deserialize`] can read from.
pub trait Deserializer: Sized {
    /// The deserializer's error type.
    type Error: DeError;

    /// Produces the value tree to deserialize from.
    fn into_value(self) -> Result<Value, Self::Error>;
}

/// Deserializer error construction, mirroring `serde::de::Error`.
pub trait DeError: Sized {
    /// Builds an error from any displayable message.
    fn custom<T: fmt::Display>(msg: T) -> Self;
}

impl DeError for Error {
    fn custom<T: fmt::Display>(msg: T) -> Self {
        Error::custom(msg)
    }
}

/// Types that can be serialized into a [`Value`] tree.
pub trait Serialize {
    /// Converts `self` to a value tree.
    fn to_value(&self) -> Value;

    /// Drives any [`Serializer`] with the value tree of `self`.
    ///
    /// # Errors
    ///
    /// Propagates the serializer's error.
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_value(self.to_value())
    }
}

/// Types that can be reconstructed from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Rebuilds `Self` from a value tree.
    ///
    /// # Errors
    ///
    /// Returns a message describing the first mismatch between the value
    /// and `Self`'s shape.
    fn from_value(value: &Value) -> Result<Self, Error>;

    /// The replacement value when a struct field of this type is absent,
    /// mirroring serde's implicit `Option` default. `None` means the
    /// field is required.
    fn missing_field() -> Option<Self> {
        None
    }

    /// Reads `Self` out of any [`Deserializer`].
    ///
    /// # Errors
    ///
    /// Propagates the deserializer's error or the shape mismatch.
    fn deserialize<D: Deserializer>(deserializer: D) -> Result<Self, D::Error> {
        let value = deserializer.into_value()?;
        Self::from_value(&value).map_err(D::Error::custom)
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

macro_rules! impl_serde_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::Number(Number::U(*self as u64)) }
        }
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, Error> {
                let n = value.as_u64()
                    .ok_or_else(|| Error::custom(format!(
                        "expected {}, found {}", stringify!($t), value.kind())))?;
                <$t>::try_from(n).map_err(Error::custom)
            }
        }
    )*};
}
impl_serde_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_serde_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                if *self >= 0 {
                    Value::Number(Number::U(*self as u64))
                } else {
                    Value::Number(Number::I(*self as i64))
                }
            }
        }
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, Error> {
                let n = match value {
                    Value::Number(n) => n.as_i64(),
                    _ => None,
                }.ok_or_else(|| Error::custom(format!(
                    "expected {}, found {}", stringify!($t), value.kind())))?;
                <$t>::try_from(n).map_err(Error::custom)
            }
        }
    )*};
}
impl_serde_int!(i8, i16, i32, i64, isize);

macro_rules! impl_serde_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::Number(Number::F(*self as f64)) }
        }
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, Error> {
                value.as_f64().map(|f| f as $t).ok_or_else(|| Error::custom(format!(
                    "expected {}, found {}", stringify!($t), value.kind())))
            }
        }
    )*};
}
impl_serde_float!(f32, f64);

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Bool(b) => Ok(*b),
            other => Err(Error::custom(format!(
                "expected bool, found {}",
                other.kind()
            ))),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::String(s) => Ok(s.clone()),
            other => Err(Error::custom(format!(
                "expected string, found {}",
                other.kind()
            ))),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::String(self.to_owned())
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(value: &Value) -> Result<Self, Error> {
        Ok(value.clone())
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }

    fn missing_field() -> Option<Self> {
        Some(None)
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            other => Err(Error::custom(format!(
                "expected array, found {}",
                other.kind()
            ))),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize + Ord> Serialize for BTreeSet<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize + Ord> Deserialize for BTreeSet<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            other => Err(Error::custom(format!(
                "expected array, found {}",
                other.kind()
            ))),
        }
    }
}

/// Map keys must serialize to strings (JSON objects demand it); this
/// converts through [`Value`] in both directions.
fn key_to_string<K: Serialize>(key: &K) -> String {
    match key.to_value() {
        Value::String(s) => s,
        Value::Number(n) => match n {
            Number::U(u) => u.to_string(),
            Number::I(i) => i.to_string(),
            Number::F(f) => format!("{f:?}"),
        },
        other => panic!("map key serialized to non-scalar {}", other.kind()),
    }
}

fn key_from_string<K: Deserialize>(key: &str) -> Result<K, Error> {
    // Try the string itself first (string and string-like enum keys),
    // then numeric re-interpretations for integer keys.
    let as_string = Value::String(key.to_owned());
    if let Ok(k) = K::from_value(&as_string) {
        return Ok(k);
    }
    if let Ok(u) = key.parse::<u64>() {
        if let Ok(k) = K::from_value(&Value::Number(Number::U(u))) {
            return Ok(k);
        }
    }
    if let Ok(i) = key.parse::<i64>() {
        if let Ok(k) = K::from_value(&Value::Number(Number::I(i))) {
            return Ok(k);
        }
    }
    Err(Error::custom(format!("unusable map key {key:?}")))
}

impl<K: Serialize + Ord, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (key_to_string(k), v.to_value()))
                .collect(),
        )
    }
}

impl<K: Deserialize + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Object(pairs) => pairs
                .iter()
                .map(|(k, v)| Ok((key_from_string::<K>(k)?, V::from_value(v)?)))
                .collect(),
            other => Err(Error::custom(format!(
                "expected object, found {}",
                other.kind()
            ))),
        }
    }
}

macro_rules! impl_serde_tuple {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(value: &Value) -> Result<Self, Error> {
                const LEN: usize = 0 $(+ { let _ = $idx; 1 })+;
                let items = value.as_array().ok_or_else(|| Error::custom(format!(
                    "expected {LEN}-tuple array, found {}", value.kind())))?;
                if items.len() != LEN {
                    return Err(Error::custom(format!(
                        "expected {LEN}-tuple, found array of {}", items.len())));
                }
                Ok(($($name::from_value(&items[$idx])?,)+))
            }
        }
    )*};
}
impl_serde_tuple! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
    (A: 0, B: 1, C: 2, D: 3, E: 4)
}

impl<T: Serialize> Serialize for std::ops::RangeInclusive<T> {
    fn to_value(&self) -> Value {
        Value::Object(vec![
            ("start".to_owned(), self.start().to_value()),
            ("end".to_owned(), self.end().to_value()),
        ])
    }
}

impl<T: Deserialize> Deserialize for std::ops::RangeInclusive<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        let start = value
            .get("start")
            .ok_or_else(|| Error::custom("missing field `start`"))?;
        let end = value
            .get("end")
            .ok_or_else(|| Error::custom("missing field `end`"))?;
        Ok(T::from_value(start)?..=T::from_value(end)?)
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        T::from_value(value).map(Box::new)
    }
}

/// Support plumbing for the derive macros. Not part of the public API.
#[doc(hidden)]
pub mod __private {
    use super::{DeError, Deserialize, Deserializer, Error, Serializer, Value};

    /// A serializer that just hands back the value tree.
    pub struct ValueSerializer;

    impl Serializer for ValueSerializer {
        type Ok = Value;
        type Error = Error;

        fn serialize_value(self, value: Value) -> Result<Value, Error> {
            Ok(value)
        }
    }

    /// A deserializer reading from an owned value tree.
    pub struct ValueDeserializer(pub Value);

    impl Deserializer for ValueDeserializer {
        type Error = Error;

        fn into_value(self) -> Result<Value, Error> {
            Ok(self.0)
        }
    }

    /// Reads and deserializes one named struct field, applying the
    /// missing-field default (`Option` fields become `None`).
    pub fn field<T: Deserialize>(value: &Value, name: &str) -> Result<T, Error> {
        match value.get(name) {
            Some(v) => T::from_value(v).map_err(|e| Error::custom(format!("field `{name}`: {e}"))),
            None => {
                T::missing_field().ok_or_else(|| Error::custom(format!("missing field `{name}`")))
            }
        }
    }

    /// Looks up one field of a `#[serde(default)]`-annotated struct
    /// member: a missing key yields `T::default()` instead of an error,
    /// so old artifacts stay readable after a schema grows a counter.
    pub fn field_default<T: Deserialize + Default>(value: &Value, name: &str) -> Result<T, Error> {
        match value.get(name) {
            Some(v) => T::from_value(v).map_err(|e| Error::custom(format!("field `{name}`: {e}"))),
            None => Ok(T::default()),
        }
    }

    /// Requires `value` to be an object, for derived struct impls.
    pub fn expect_object<'v>(value: &'v Value, ty: &str) -> Result<&'v Value, Error> {
        match value {
            Value::Object(_) => Ok(value),
            other => Err(Error::custom(format!(
                "expected object for {ty}, found {}",
                other.kind()
            ))),
        }
    }

    /// Requires `value` to be an array of exactly `len`, for derived
    /// tuple impls.
    pub fn expect_tuple<'v>(value: &'v Value, len: usize, ty: &str) -> Result<&'v [Value], Error> {
        match value {
            Value::Array(items) if items.len() == len => Ok(items),
            Value::Array(items) => Err(Error::custom(format!(
                "expected {len} elements for {ty}, found {}",
                items.len()
            ))),
            other => Err(Error::custom(format!(
                "expected array for {ty}, found {}",
                other.kind()
            ))),
        }
    }

    /// Wraps a variant payload as an externally tagged enum value.
    pub fn tagged(tag: &str, payload: Value) -> Value {
        Value::Object(vec![(tag.to_owned(), payload)])
    }

    /// Runs a `#[serde(with = "module")]` serialize function, capturing
    /// its value tree.
    pub fn with_serialize<F>(f: F) -> Value
    where
        F: FnOnce(ValueSerializer) -> Result<Value, Error>,
    {
        f(ValueSerializer).unwrap_or(Value::Null)
    }

    /// Runs a `#[serde(with = "module")]` deserialize function against
    /// one named field.
    pub fn with_deserialize<T, F>(value: &Value, name: &str, f: F) -> Result<T, Error>
    where
        F: FnOnce(ValueDeserializer) -> Result<T, Error>,
    {
        let field = value
            .get(name)
            .ok_or_else(|| Error::custom(format!("missing field `{name}`")))?;
        f(ValueDeserializer(field.clone()))
    }

    /// Error for an unknown enum variant tag.
    pub fn unknown_variant(ty: &str, tag: &str) -> Error {
        DeError::custom(format!("unknown variant `{tag}` for {ty}"))
    }

    /// Error for an enum value of the wrong shape.
    pub fn bad_enum_shape(ty: &str, value: &Value) -> Error {
        DeError::custom(format!(
            "expected externally tagged {ty}, found {}",
            value.kind()
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_roundtrip() {
        for v in [0u32, 7, u32::MAX] {
            assert_eq!(u32::from_value(&v.to_value()).unwrap(), v);
        }
        for v in [-3i64, 0, 9_000_000] {
            assert_eq!(i64::from_value(&v.to_value()).unwrap(), v);
        }
        for v in [0.0f64, -1.25, 1e300, f64::MIN_POSITIVE] {
            assert_eq!(
                f64::from_value(&v.to_value()).unwrap().to_bits(),
                v.to_bits()
            );
        }
        assert!(bool::from_value(&true.to_value()).unwrap());
        let s = "héllo".to_owned();
        assert_eq!(String::from_value(&s.to_value()).unwrap(), s);
    }

    #[test]
    fn containers_roundtrip() {
        let v = vec![(1u32, 2.5f64), (3, 4.5)];
        assert_eq!(Vec::<(u32, f64)>::from_value(&v.to_value()).unwrap(), v);

        let mut m = BTreeMap::new();
        m.insert("a".to_owned(), vec![1u64, 2]);
        assert_eq!(
            BTreeMap::<String, Vec<u64>>::from_value(&m.to_value()).unwrap(),
            m
        );

        let mut s = BTreeSet::new();
        s.insert((1usize, 2usize));
        assert_eq!(
            BTreeSet::<(usize, usize)>::from_value(&s.to_value()).unwrap(),
            s
        );

        let r = 3usize..=9;
        assert_eq!(
            std::ops::RangeInclusive::<usize>::from_value(&r.to_value()).unwrap(),
            r
        );

        assert_eq!(Option::<u32>::from_value(&Value::Null).unwrap(), None);
        assert_eq!(
            Option::<u32>::from_value(&5u32.to_value()).unwrap(),
            Some(5)
        );
        assert_eq!(Option::<u32>::missing_field(), Some(None));
        assert_eq!(u32::missing_field(), None);
    }

    #[test]
    fn integer_keyed_maps_roundtrip() {
        let mut m = BTreeMap::new();
        m.insert(4u32, "x".to_owned());
        let v = m.to_value();
        assert_eq!(v.get("4").and_then(Value::as_str), Some("x"));
        assert_eq!(BTreeMap::<u32, String>::from_value(&v).unwrap(), m);
    }

    #[test]
    fn shape_errors_are_described() {
        let err = u32::from_value(&Value::Bool(true)).unwrap_err();
        assert!(err.to_string().contains("expected u32"));
        let err = Vec::<u32>::from_value(&Value::Null).unwrap_err();
        assert!(err.to_string().contains("expected array"));
    }
}
