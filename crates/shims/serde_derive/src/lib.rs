//! Derive macros for the in-tree `serde` shim.
//!
//! Implements `#[derive(Serialize)]` and `#[derive(Deserialize)]` for the
//! shapes this workspace actually uses: structs with named fields, tuple
//! structs, unit structs, and enums with unit / tuple / struct variants
//! (externally tagged, matching upstream serde's JSON representation).
//! The recognised field attributes are `#[serde(with = "module")]` and
//! `#[serde(default)]` (a missing key deserializes to `Default`).
//!
//! Because no network access is available, `syn`/`quote` cannot be used;
//! the item is parsed directly from `proc_macro::TokenTree`s and the impl
//! is generated as a string and re-parsed into a `TokenStream`. Field
//! types are never parsed: the generated deserializer leans on type
//! inference (`field: ::serde::__private::field(__v, "name")?`), so only
//! field *names* and tuple arities are extracted from the token stream.

use proc_macro::{Delimiter, TokenStream, TokenTree};
use std::fmt::Write as _;
use std::iter::Peekable;

type Tokens = Peekable<proc_macro::token_stream::IntoIter>;

struct Field {
    name: String,
    with: Option<String>,
    default: bool,
}

enum VariantKind {
    Unit,
    Tuple(usize),
    Struct(Vec<Field>),
}

struct Variant {
    name: String,
    kind: VariantKind,
}

enum Item {
    NamedStruct {
        name: String,
        fields: Vec<Field>,
    },
    TupleStruct {
        name: String,
        arity: usize,
    },
    UnitStruct {
        name: String,
    },
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let code = match &item {
        Item::NamedStruct { name, fields } => {
            let mut entries = String::new();
            for f in fields {
                push_object_entry(&mut entries, f, &format!("&self.{}", f.name));
            }
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         ::serde::Value::Object(::std::vec![{entries}])\n\
                     }}\n\
                 }}"
            )
        }
        Item::TupleStruct { name, arity: 1 } => format!(
            "impl ::serde::Serialize for {name} {{\n\
                 fn to_value(&self) -> ::serde::Value {{\n\
                     ::serde::Serialize::to_value(&self.0)\n\
                 }}\n\
             }}"
        ),
        Item::TupleStruct { name, arity } => {
            let elems: Vec<String> = (0..*arity)
                .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         ::serde::Value::Array(::std::vec![{}])\n\
                     }}\n\
                 }}",
                elems.join(", ")
            )
        }
        Item::UnitStruct { name } => format!(
            "impl ::serde::Serialize for {name} {{\n\
                 fn to_value(&self) -> ::serde::Value {{ ::serde::Value::Null }}\n\
             }}"
        ),
        Item::Enum { name, variants } => {
            let mut arms = String::new();
            for v in variants {
                let tag = &v.name;
                match &v.kind {
                    VariantKind::Unit => {
                        let _ = writeln!(
                            arms,
                            "{name}::{tag} => ::serde::Value::String(\
                             ::std::string::String::from(\"{tag}\")),"
                        );
                    }
                    VariantKind::Tuple(1) => {
                        let _ = writeln!(
                            arms,
                            "{name}::{tag}(__f0) => ::serde::__private::tagged(\
                             \"{tag}\", ::serde::Serialize::to_value(__f0)),"
                        );
                    }
                    VariantKind::Tuple(arity) => {
                        let binds: Vec<String> = (0..*arity).map(|i| format!("__f{i}")).collect();
                        let elems: Vec<String> = binds
                            .iter()
                            .map(|b| format!("::serde::Serialize::to_value({b})"))
                            .collect();
                        let _ = writeln!(
                            arms,
                            "{name}::{tag}({}) => ::serde::__private::tagged(\"{tag}\", \
                             ::serde::Value::Array(::std::vec![{}])),",
                            binds.join(", "),
                            elems.join(", ")
                        );
                    }
                    VariantKind::Struct(fields) => {
                        let binds: Vec<&str> = fields.iter().map(|f| f.name.as_str()).collect();
                        let mut entries = String::new();
                        for f in fields {
                            push_object_entry(&mut entries, f, &f.name);
                        }
                        let _ = writeln!(
                            arms,
                            "{name}::{tag} {{ {} }} => ::serde::__private::tagged(\"{tag}\", \
                             ::serde::Value::Object(::std::vec![{entries}])),",
                            binds.join(", ")
                        );
                    }
                }
            }
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         match self {{\n{arms}}}\n\
                     }}\n\
                 }}"
            )
        }
    };
    parse_generated(&code)
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let code = match &item {
        Item::NamedStruct { name, fields } => {
            let mut inits = String::new();
            for f in fields {
                push_field_init(&mut inits, f);
            }
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(__v: &::serde::Value) \
                         -> ::std::result::Result<Self, ::serde::Error> {{\n\
                         let __v = ::serde::__private::expect_object(__v, \"{name}\")?;\n\
                         ::std::result::Result::Ok({name} {{ {inits} }})\n\
                     }}\n\
                 }}"
            )
        }
        Item::TupleStruct { name, arity: 1 } => format!(
            "impl ::serde::Deserialize for {name} {{\n\
                 fn from_value(__v: &::serde::Value) \
                     -> ::std::result::Result<Self, ::serde::Error> {{\n\
                     ::std::result::Result::Ok({name}(::serde::Deserialize::from_value(__v)?))\n\
                 }}\n\
             }}"
        ),
        Item::TupleStruct { name, arity } => {
            let elems: Vec<String> = (0..*arity)
                .map(|i| format!("::serde::Deserialize::from_value(&__items[{i}])?"))
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(__v: &::serde::Value) \
                         -> ::std::result::Result<Self, ::serde::Error> {{\n\
                         let __items = ::serde::__private::expect_tuple(__v, {arity}, \"{name}\")?;\n\
                         ::std::result::Result::Ok({name}({}))\n\
                     }}\n\
                 }}",
                elems.join(", ")
            )
        }
        Item::UnitStruct { name } => format!(
            "impl ::serde::Deserialize for {name} {{\n\
                 fn from_value(_: &::serde::Value) \
                     -> ::std::result::Result<Self, ::serde::Error> {{\n\
                     ::std::result::Result::Ok({name})\n\
                 }}\n\
             }}"
        ),
        Item::Enum { name, variants } => {
            let unit: Vec<&Variant> = variants
                .iter()
                .filter(|v| matches!(v.kind, VariantKind::Unit))
                .collect();
            let payload: Vec<&Variant> = variants
                .iter()
                .filter(|v| !matches!(v.kind, VariantKind::Unit))
                .collect();

            let string_branch = if unit.is_empty() {
                format!(
                    "::std::result::Result::Err(\
                     ::serde::__private::unknown_variant(\"{name}\", __s))"
                )
            } else {
                let mut arms = String::new();
                for v in &unit {
                    let tag = &v.name;
                    let _ = writeln!(
                        arms,
                        "\"{tag}\" => ::std::result::Result::Ok({name}::{tag}),"
                    );
                }
                format!(
                    "match __s.as_str() {{\n{arms}\
                         __other => ::std::result::Result::Err(\
                             ::serde::__private::unknown_variant(\"{name}\", __other)),\n\
                     }}"
                )
            };

            let object_branch = if payload.is_empty() {
                format!(
                    "{{ let (__tag, _) = &__pairs[0]; ::std::result::Result::Err(\
                     ::serde::__private::unknown_variant(\"{name}\", __tag)) }}"
                )
            } else {
                let mut arms = String::new();
                for v in &payload {
                    let tag = &v.name;
                    match &v.kind {
                        VariantKind::Unit => unreachable!(),
                        VariantKind::Tuple(1) => {
                            let _ = writeln!(
                                arms,
                                "\"{tag}\" => ::std::result::Result::Ok({name}::{tag}(\
                                 ::serde::Deserialize::from_value(__payload)?)),"
                            );
                        }
                        VariantKind::Tuple(arity) => {
                            let elems: Vec<String> = (0..*arity)
                                .map(|i| {
                                    format!("::serde::Deserialize::from_value(&__items[{i}])?")
                                })
                                .collect();
                            let _ = writeln!(
                                arms,
                                "\"{tag}\" => {{\n\
                                     let __items = ::serde::__private::expect_tuple(\
                                         __payload, {arity}, \"{name}::{tag}\")?;\n\
                                     ::std::result::Result::Ok({name}::{tag}({}))\n\
                                 }}",
                                elems.join(", ")
                            );
                        }
                        VariantKind::Struct(fields) => {
                            let mut inits = String::new();
                            for f in fields {
                                push_field_init(&mut inits, f);
                            }
                            let _ = writeln!(
                                arms,
                                "\"{tag}\" => {{\n\
                                     let __v = ::serde::__private::expect_object(\
                                         __payload, \"{name}::{tag}\")?;\n\
                                     ::std::result::Result::Ok({name}::{tag} {{ {inits} }})\n\
                                 }}"
                            );
                        }
                    }
                }
                format!(
                    "{{\n\
                         let (__tag, __payload) = &__pairs[0];\n\
                         match __tag.as_str() {{\n{arms}\
                             __other => ::std::result::Result::Err(\
                                 ::serde::__private::unknown_variant(\"{name}\", __other)),\n\
                         }}\n\
                     }}"
                )
            };

            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(__v: &::serde::Value) \
                         -> ::std::result::Result<Self, ::serde::Error> {{\n\
                         match __v {{\n\
                             ::serde::Value::String(__s) => {string_branch},\n\
                             ::serde::Value::Object(__pairs) if __pairs.len() == 1 => \
                                 {object_branch},\n\
                             __other => ::std::result::Result::Err(\
                                 ::serde::__private::bad_enum_shape(\"{name}\", __other)),\n\
                         }}\n\
                     }}\n\
                 }}"
            )
        }
    };
    parse_generated(&code)
}

/// One `("name", value)` entry of a serialized object, honouring
/// `#[serde(with = "module")]`.
fn push_object_entry(out: &mut String, f: &Field, access: &str) {
    let name = &f.name;
    match &f.with {
        None => {
            let _ = write!(
                out,
                "(::std::string::String::from(\"{name}\"), \
                 ::serde::Serialize::to_value({access})), "
            );
        }
        Some(path) => {
            let _ = write!(
                out,
                "(::std::string::String::from(\"{name}\"), \
                 ::serde::__private::with_serialize(\
                 |__s| {path}::serialize({access}, __s))), "
            );
        }
    }
}

/// One `name: ...?` initializer of a deserialized struct (or struct
/// variant), honouring `#[serde(with = "module")]` and
/// `#[serde(default)]`.
fn push_field_init(out: &mut String, f: &Field) {
    let name = &f.name;
    match &f.with {
        None if f.default => {
            let _ = write!(
                out,
                "{name}: ::serde::__private::field_default(__v, \"{name}\")?, "
            );
        }
        None => {
            let _ = write!(out, "{name}: ::serde::__private::field(__v, \"{name}\")?, ");
        }
        Some(path) => {
            let _ = write!(
                out,
                "{name}: ::serde::__private::with_deserialize(\
                 __v, \"{name}\", |__d| {path}::deserialize(__d))?, "
            );
        }
    }
}

fn parse_generated(code: &str) -> TokenStream {
    code.parse()
        .unwrap_or_else(|e| panic!("serde_derive shim generated invalid Rust ({e}):\n{code}"))
}

// ---------------------------------------------------------------------------
// Item parsing
// ---------------------------------------------------------------------------

fn parse_item(input: TokenStream) -> Item {
    let mut toks: Tokens = input.into_iter().peekable();
    skip_attrs(&mut toks);
    skip_visibility(&mut toks);

    let keyword = expect_ident(&mut toks);
    let name = expect_ident(&mut toks);
    if peek_punct(&mut toks) == Some('<') {
        panic!("serde shim derive does not support generic type `{name}`");
    }

    match keyword.as_str() {
        "struct" => match toks.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Item::NamedStruct {
                name,
                fields: parse_named_fields(g.stream()),
            },
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Item::TupleStruct {
                    name,
                    arity: tuple_arity(g.stream()),
                }
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Item::UnitStruct { name },
            other => panic!("unsupported struct body for `{name}`: {other:?}"),
        },
        "enum" => match toks.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Item::Enum {
                name,
                variants: parse_variants(g.stream()),
            },
            other => panic!("unsupported enum body for `{name}`: {other:?}"),
        },
        other => panic!("serde shim derive supports only structs and enums, found `{other}`"),
    }
}

fn parse_named_fields(stream: TokenStream) -> Vec<Field> {
    let mut toks: Tokens = stream.into_iter().peekable();
    let mut fields = Vec::new();
    loop {
        let attrs = skip_attrs(&mut toks);
        if toks.peek().is_none() {
            break;
        }
        skip_visibility(&mut toks);
        let name = expect_ident(&mut toks);
        match toks.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => panic!("expected `:` after field `{name}`, found {other:?}"),
        }
        skip_type(&mut toks);
        fields.push(Field {
            name,
            with: attrs.with,
            default: attrs.default,
        });
    }
    fields
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let mut toks: Tokens = stream.into_iter().peekable();
    let mut variants = Vec::new();
    loop {
        skip_attrs(&mut toks);
        if toks.peek().is_none() {
            break;
        }
        let name = expect_ident(&mut toks);
        let kind = match toks.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let arity = tuple_arity(g.stream());
                toks.next();
                VariantKind::Tuple(arity)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let fields = parse_named_fields(g.stream());
                toks.next();
                VariantKind::Struct(fields)
            }
            _ => VariantKind::Unit,
        };
        if peek_punct(&mut toks) == Some(',') {
            toks.next();
        }
        variants.push(Variant { name, kind });
    }
    variants
}

/// Consumes the tokens of one type, up to (and including) a top-level
/// comma. Angle brackets are punctuation, not groups, so generic
/// arguments are tracked by nesting depth; commas inside `<...>` (e.g.
/// `BTreeMap<String, f64>`) do not end the field.
fn skip_type(toks: &mut Tokens) {
    let mut depth = 0i32;
    loop {
        let c = match toks.peek() {
            None => return,
            Some(TokenTree::Punct(p)) => Some(p.as_char()),
            Some(_) => None,
        };
        match c {
            Some('<') => depth += 1,
            Some('>') => depth -= 1,
            Some(',') if depth == 0 => {
                toks.next();
                return;
            }
            _ => {}
        }
        toks.next();
    }
}

/// Number of fields of a tuple struct / tuple variant, counted from the
/// parenthesised group's tokens (angle-depth-aware comma counting).
fn tuple_arity(stream: TokenStream) -> usize {
    let mut depth = 0i32;
    let mut commas = 0usize;
    let mut last_was_comma = true; // empty group -> arity 0
    let mut any = false;
    for tok in stream {
        any = true;
        last_was_comma = false;
        if let TokenTree::Punct(p) = &tok {
            match p.as_char() {
                '<' => depth += 1,
                '>' => depth -= 1,
                ',' if depth == 0 => {
                    commas += 1;
                    last_was_comma = true;
                }
                _ => {}
            }
        }
    }
    if !any {
        0
    } else if last_was_comma {
        commas
    } else {
        commas + 1
    }
}

/// The field attributes the shim understands.
#[derive(Default)]
struct FieldAttrs {
    with: Option<String>,
    default: bool,
}

/// Skips `#[...]` attributes; returns the `#[serde(...)]` field
/// attributes (`with = "module"` and/or `default`) when present.
fn skip_attrs(toks: &mut Tokens) -> FieldAttrs {
    let mut attrs = FieldAttrs::default();
    while peek_punct(toks) == Some('#') {
        toks.next();
        let group = match toks.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket => g,
            other => panic!("malformed attribute: {other:?}"),
        };
        let mut inner = group.stream().into_iter();
        if let Some(TokenTree::Ident(id)) = inner.next() {
            if id.to_string() == "serde" {
                if let Some(TokenTree::Group(args)) = inner.next() {
                    parse_serde_args(args.stream(), &mut attrs);
                }
            }
        }
    }
    attrs
}

fn parse_serde_args(stream: TokenStream, attrs: &mut FieldAttrs) {
    let toks: Vec<TokenTree> = stream.into_iter().collect();
    match toks.as_slice() {
        [TokenTree::Ident(kw)] if kw.to_string() == "default" => attrs.default = true,
        [TokenTree::Ident(kw), TokenTree::Punct(eq), TokenTree::Literal(lit)]
            if kw.to_string() == "with" && eq.as_char() == '=' =>
        {
            let raw = lit.to_string();
            attrs.with = Some(raw.trim_matches('"').to_owned());
        }
        _ => panic!(
            "unsupported #[serde(...)] attribute; the shim implements only \
             `with = \"module\"` and `default`"
        ),
    }
}

fn skip_visibility(toks: &mut Tokens) {
    let is_pub = matches!(toks.peek(), Some(TokenTree::Ident(id)) if id.to_string() == "pub");
    if is_pub {
        toks.next();
        let restricted = matches!(toks.peek(), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis);
        if restricted {
            toks.next();
        }
    }
}

fn expect_ident(toks: &mut Tokens) -> String {
    match toks.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("expected identifier, found {other:?}"),
    }
}

fn peek_punct(toks: &mut Tokens) -> Option<char> {
    match toks.peek() {
        Some(TokenTree::Punct(p)) => Some(p.as_char()),
        _ => None,
    }
}
