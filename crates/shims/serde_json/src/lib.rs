//! In-tree shim for the `serde_json` crate.
//!
//! JSON text ⇄ the serde shim's [`Value`] tree, plus the typed entry
//! points (`to_string`, `to_string_pretty`, `from_str`, `to_value`,
//! `from_value`) and the [`json!`] macro. Floats are printed with
//! Rust's shortest-roundtrip `{:?}` formatting and parsed with the
//! standard library's `f64::from_str`, so every finite `f64` survives a
//! text round trip bit-exactly (the behaviour upstream gates behind the
//! `float_roundtrip` feature).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Write as _;

pub use serde::{Error, Number, Value};

/// Serializes `value` as a compact JSON string.
///
/// # Errors
///
/// Fails when the value contains a non-finite float.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0)?;
    Ok(out)
}

/// Serializes `value` as pretty-printed JSON (two-space indent).
///
/// # Errors
///
/// Fails when the value contains a non-finite float.
pub fn to_string_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some("  "), 0)?;
    Ok(out)
}

/// Parses a JSON string into any deserializable type.
///
/// # Errors
///
/// Fails on malformed JSON or a shape mismatch with `T`.
pub fn from_str<T: serde::Deserialize>(input: &str) -> Result<T, Error> {
    let value = parse_value(input)?;
    T::from_value(&value)
}

/// Converts any serializable value into a [`Value`] tree.
///
/// # Errors
///
/// Infallible in this shim; the `Result` mirrors upstream's signature.
pub fn to_value<T: serde::Serialize + ?Sized>(value: &T) -> Result<Value, Error> {
    Ok(value.to_value())
}

/// Rebuilds a typed value from a [`Value`] tree.
///
/// # Errors
///
/// Fails on a shape mismatch with `T`.
pub fn from_value<T: serde::Deserialize>(value: Value) -> Result<T, Error> {
    T::from_value(&value)
}

/// Builds a [`Value`] from JSON-shaped syntax; expressions in value
/// position are converted through [`serde::Serialize`].
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ([ $($elem:tt),* $(,)? ]) => {
        $crate::Value::Array(::std::vec![ $( $crate::json!($elem) ),* ])
    };
    ({ $($key:literal : $val:tt),* $(,)? }) => {
        $crate::Value::Object(::std::vec![
            $( (::std::string::String::from($key), $crate::json!($val)) ),*
        ])
    };
    ($other:expr) => {
        $crate::to_value(&$other).expect("json! value is serializable")
    };
}

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

fn write_value(
    out: &mut String,
    value: &Value,
    indent: Option<&str>,
    depth: usize,
) -> Result<(), Error> {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Number(n) => write_number(out, n)?,
        Value::String(s) => write_string(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return Ok(());
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(out, item, indent, depth + 1)?;
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Value::Object(pairs) => {
            if pairs.is_empty() {
                out.push_str("{}");
                return Ok(());
            }
            out.push('{');
            for (i, (key, item)) in pairs.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_string(out, key);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, item, indent, depth + 1)?;
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
    Ok(())
}

fn newline_indent(out: &mut String, indent: Option<&str>, depth: usize) {
    if let Some(unit) = indent {
        out.push('\n');
        for _ in 0..depth {
            out.push_str(unit);
        }
    }
}

fn write_number(out: &mut String, n: &Number) -> Result<(), Error> {
    match *n {
        Number::U(u) => {
            let _ = write!(out, "{u}");
        }
        Number::I(i) => {
            let _ = write!(out, "{i}");
        }
        Number::F(f) => {
            if !f.is_finite() {
                return Err(Error::custom("JSON cannot represent a non-finite float"));
            }
            // `{:?}` is Rust's shortest round-trip formatting: the printed
            // text re-parses to the identical bit pattern.
            let _ = write!(out, "{f:?}");
        }
    }
    Ok(())
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

fn parse_value(input: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after JSON value"));
    }
    Ok(value)
}

impl Parser<'_> {
    fn err(&self, msg: &str) -> Error {
        Error::custom(format!("{msg} at byte {}", self.pos))
    }

    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.skip_ws();
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, expected: u8) -> Result<(), Error> {
        if self.peek() == Some(expected) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", expected as char)))
        }
    }

    fn keyword(&mut self, word: &str, value: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected `{word}`")))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') => self.keyword("null", Value::Null),
            Some(b't') => self.keyword("true", Value::Bool(true)),
            Some(b'f') => self.keyword("false", Value::Bool(false)),
            Some(b'"') => self.string().map(Value::String),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(c) => Err(self.err(&format!("unexpected character `{}`", c as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.value()?);
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected `,` or `]` in array")),
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.eat(b'{')?;
        let mut pairs = Vec::new();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(pairs));
        }
        loop {
            if self.peek() != Some(b'"') {
                return Err(self.err("expected string key in object"));
            }
            let key = self.string()?;
            self.eat(b':')?;
            let value = self.value()?;
            pairs.push((key, value));
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(pairs));
                }
                _ => return Err(self.err("expected `,` or `}` in object")),
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            while !matches!(self.bytes.get(self.pos), None | Some(b'"' | b'\\')) {
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| self.err("invalid UTF-8 in string"))?,
            );
            match self.bytes.get(self.pos) {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    self.escape(&mut out)?;
                }
                None => return Err(self.err("unterminated string")),
                Some(_) => unreachable!("scan stops only at quote or backslash"),
            }
        }
    }

    fn escape(&mut self, out: &mut String) -> Result<(), Error> {
        let c = *self
            .bytes
            .get(self.pos)
            .ok_or_else(|| self.err("unterminated escape"))?;
        self.pos += 1;
        match c {
            b'"' => out.push('"'),
            b'\\' => out.push('\\'),
            b'/' => out.push('/'),
            b'b' => out.push('\u{08}'),
            b'f' => out.push('\u{0c}'),
            b'n' => out.push('\n'),
            b'r' => out.push('\r'),
            b't' => out.push('\t'),
            b'u' => {
                let hi = self.hex4()?;
                let code = if (0xD800..0xDC00).contains(&hi) {
                    // Surrogate pair: expect `\uXXXX` low half.
                    if self.bytes.get(self.pos) != Some(&b'\\')
                        || self.bytes.get(self.pos + 1) != Some(&b'u')
                    {
                        return Err(self.err("unpaired surrogate in string"));
                    }
                    self.pos += 2;
                    let lo = self.hex4()?;
                    if !(0xDC00..0xE000).contains(&lo) {
                        return Err(self.err("invalid low surrogate in string"));
                    }
                    0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                } else {
                    hi
                };
                out.push(char::from_u32(code).ok_or_else(|| self.err("invalid \\u escape"))?);
            }
            _ => return Err(self.err("unknown escape sequence")),
        }
        Ok(())
    }

    fn hex4(&mut self) -> Result<u32, Error> {
        let slice = self
            .bytes
            .get(self.pos..self.pos + 4)
            .ok_or_else(|| self.err("truncated \\u escape"))?;
        let text = std::str::from_utf8(slice).map_err(|_| self.err("invalid \\u escape"))?;
        let code = u32::from_str_radix(text, 16).map_err(|_| self.err("invalid \\u escape"))?;
        self.pos += 4;
        Ok(code)
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.bytes.get(self.pos) == Some(&b'-') {
            self.pos += 1;
        }
        let mut float = false;
        while let Some(&c) = self.bytes.get(self.pos) {
            match c {
                b'0'..=b'9' => {}
                b'.' | b'e' | b'E' | b'+' | b'-' => float = true,
                _ => break,
            }
            self.pos += 1;
        }
        let text =
            std::str::from_utf8(&self.bytes[start..self.pos]).expect("number bytes are ASCII");
        if float {
            let f: f64 = text.parse().map_err(|_| self.err("invalid number"))?;
            Ok(Value::Number(Number::F(f)))
        } else if let Ok(u) = text.parse::<u64>() {
            Ok(Value::Number(Number::U(u)))
        } else if let Ok(i) = text.parse::<i64>() {
            Ok(Value::Number(Number::I(i)))
        } else {
            // Integer wider than 64 bits: fall back to floating point.
            let f: f64 = text.parse().map_err(|_| self.err("invalid number"))?;
            Ok(Value::Number(Number::F(f)))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    #[test]
    fn scalars_roundtrip_through_text() {
        assert_eq!(to_string(&true).unwrap(), "true");
        assert!(from_str::<bool>("true").unwrap());
        assert_eq!(to_string(&42u64).unwrap(), "42");
        assert_eq!(from_str::<i32>("-7").unwrap(), -7);
        assert_eq!(to_string(&"a\"b\\c\nd").unwrap(), r#""a\"b\\c\nd""#);
        assert_eq!(from_str::<String>(r#""a\"b\\c\nd""#).unwrap(), "a\"b\\c\nd");
        assert_eq!(from_str::<String>(r#""é😀""#).unwrap(), "é😀");
    }

    #[test]
    fn floats_roundtrip_bit_exactly() {
        for f in [
            0.1,
            -1.0 / 3.0,
            1e300,
            f64::MIN_POSITIVE,
            2.0_f64.powi(53) + 2.0,
            123_456.789_012_345,
        ] {
            let text = to_string(&f).unwrap();
            let back: f64 = from_str(&text).unwrap();
            assert_eq!(back.to_bits(), f.to_bits(), "{f} -> {text}");
        }
        assert!(to_string(&f64::NAN).is_err());
        assert!(to_string(&f64::INFINITY).is_err());
    }

    #[test]
    fn containers_roundtrip_through_text() {
        let mut m = BTreeMap::new();
        m.insert("edges".to_owned(), vec![(0usize, 1usize, 0.5f64)]);
        m.insert("π".to_owned(), vec![]);
        let text = to_string(&m).unwrap();
        let back: BTreeMap<String, Vec<(usize, usize, f64)>> = from_str(&text).unwrap();
        assert_eq!(back, m);

        let nested: Vec<Vec<Option<u8>>> = vec![vec![Some(1), None], vec![]];
        let back: Vec<Vec<Option<u8>>> = from_str(&to_string(&nested).unwrap()).unwrap();
        assert_eq!(back, nested);
    }

    #[test]
    fn pretty_output_is_indented_and_reparses() {
        let v = json!({"a": [1, 2], "b": {"c": null}, "empty": []});
        let pretty = to_string_pretty(&v).unwrap();
        assert!(pretty.contains("\n  \"a\": [\n    1,\n    2\n  ]"));
        assert_eq!(from_str::<Value>(&pretty).unwrap(), v);
        assert_eq!(from_str::<Value>(&to_string(&v).unwrap()).unwrap(), v);
    }

    #[test]
    fn json_macro_builds_expected_trees() {
        let v = json!([[1], [0]]);
        assert_eq!(
            v,
            Value::Array(vec![
                Value::Array(vec![Value::Number(Number::U(1))]),
                Value::Array(vec![Value::Number(Number::U(0))]),
            ])
        );
        let x = 3usize;
        assert_eq!(json!([x, 1.5]).as_array().unwrap().len(), 2);
        assert_eq!(json!(null), Value::Null);
    }

    #[test]
    fn value_indexing_matches_serde_json() {
        let mut v = json!({"a": 1});
        assert_eq!(v["a"].as_u64(), Some(1));
        assert_eq!(v["missing"], Value::Null);
        v["b"] = json!([2]);
        v["a"] = json!(9);
        assert_eq!(v["b"].as_array().unwrap().len(), 1);
        assert_eq!(v["a"].as_u64(), Some(9));
    }

    #[test]
    fn parse_errors_are_reported() {
        assert!(from_str::<Value>("{\"a\":}").is_err());
        assert!(from_str::<Value>("[1,]").is_err());
        assert!(from_str::<Value>("tru").is_err());
        assert!(from_str::<Value>("1 2").is_err());
        assert!(from_str::<u32>("\"hi\"").is_err());
    }
}
