//! A minimal deterministic discrete-event queue.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// One scheduled event.
#[derive(Debug, Clone)]
struct Scheduled<E> {
    time: f64,
    /// Monotone sequence number; ties in time pop in scheduling order,
    /// which keeps simulations deterministic.
    seq: u64,
    event: E,
}

impl<E> PartialEq for Scheduled<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for Scheduled<E> {}

impl<E> Ord for Scheduled<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert to pop the earliest event.
        other
            .time
            .partial_cmp(&self.time)
            .unwrap_or(Ordering::Equal)
            .then(other.seq.cmp(&self.seq))
    }
}
impl<E> PartialOrd for Scheduled<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// A time-ordered event queue with deterministic FIFO tie-breaking.
///
/// # Example
///
/// ```
/// use ubiqos_sim::EventQueue;
/// let mut q = EventQueue::new();
/// q.schedule(2.0, "late");
/// q.schedule(1.0, "early");
/// q.schedule(1.0, "early-second");
/// assert_eq!(q.pop(), Some((1.0, "early")));
/// assert_eq!(q.pop(), Some((1.0, "early-second")));
/// assert_eq!(q.pop(), Some((2.0, "late")));
/// assert_eq!(q.pop(), None);
/// ```
#[derive(Debug, Clone, Default)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Scheduled<E>>,
    next_seq: u64,
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
        }
    }

    /// Schedules `event` at simulation time `time`.
    ///
    /// # Panics
    ///
    /// Panics when `time` is NaN (a NaN time would corrupt the ordering).
    pub fn schedule(&mut self, time: f64, event: E) {
        assert!(!time.is_nan(), "event time must not be NaN");
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Scheduled { time, seq, event });
    }

    /// Pops the earliest event, if any.
    pub fn pop(&mut self) -> Option<(f64, E)> {
        self.heap.pop().map(|s| (s.time, s.event))
    }

    /// The time of the next event without removing it.
    pub fn peek_time(&self) -> Option<f64> {
        self.heap.peek().map(|s| s.time)
    }

    /// The number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        for &t in &[5.0, 1.0, 3.0, 2.0, 4.0] {
            q.schedule(t, t as i64);
        }
        let mut seen = Vec::new();
        while let Some((t, _)) = q.pop() {
            seen.push(t);
        }
        assert_eq!(seen, vec![1.0, 2.0, 3.0, 4.0, 5.0]);
    }

    #[test]
    fn fifo_ties() {
        let mut q = EventQueue::new();
        q.schedule(1.0, "a");
        q.schedule(1.0, "b");
        q.schedule(1.0, "c");
        assert_eq!(q.pop().unwrap().1, "a");
        assert_eq!(q.pop().unwrap().1, "b");
        assert_eq!(q.pop().unwrap().1, "c");
    }

    #[test]
    fn peek_and_len() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
        q.schedule(7.0, ());
        q.schedule(3.0, ());
        assert_eq!(q.len(), 2);
        assert_eq!(q.peek_time(), Some(3.0));
        q.pop();
        assert_eq!(q.peek_time(), Some(7.0));
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn nan_time_panics() {
        let mut q = EventQueue::new();
        q.schedule(f64::NAN, ());
    }

    #[test]
    fn interleaved_schedule_and_pop() {
        let mut q = EventQueue::new();
        q.schedule(10.0, "z");
        q.schedule(1.0, "a");
        assert_eq!(q.pop().unwrap().1, "a");
        q.schedule(5.0, "m");
        assert_eq!(q.pop().unwrap().1, "m");
        assert_eq!(q.pop().unwrap().1, "z");
    }
}
