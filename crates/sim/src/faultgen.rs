//! Seeded generation of §3.3 fault schedules.
//!
//! The paper's reconfiguration triggers — device crash, resource
//! fluctuation, portal/device switch, user mobility, application
//! start/stop — only appear in hand-written scenarios elsewhere in the
//! workspace. This module turns them into *data*: a deterministic,
//! seed-reproducible schedule of timed fault events that a runtime
//! harness (`ubiqos_runtime::faults`) replays against a live
//! [`DomainServer`](../../ubiqos_runtime/struct.DomainServer.html),
//! interleaved with the Figure 5 request workload.
//!
//! The generator is stateful about crash/recover pairing: a recovery is
//! only emitted for a device that is currently down, so every schedule
//! is *applicable* as-is (no "recover a healthy device" no-ops crowding
//! out real faults).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// One kind of injected fault (device indices are plain `usize`s so the
/// schedule stays independent of any graph/runtime types).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum FaultKind {
    /// Device `device` crashes: capacity and its links drop to zero.
    Crash {
        /// The crashing device.
        device: usize,
    },
    /// A correlated failure: the contiguous scope group
    /// `first..first+count` crashes together (a rack, a room, a shared
    /// power feed). The runtime applies one combined recovery pass.
    CrashScope {
        /// First device of the scope group.
        first: usize,
        /// Number of devices in the group (`>= 2`).
        count: usize,
    },
    /// Device `device` recovers to its pristine capacity and links.
    Recover {
        /// The recovering device.
        device: usize,
    },
    /// Device `device`'s availability becomes `factor` × pristine
    /// (`factor` in `(0, 1]` degrades, `1.0` restores).
    Fluctuate {
        /// The fluctuating device.
        device: usize,
        /// Fraction of pristine capacity that remains.
        factor: f64,
    },
    /// The `a`-`b` link's bandwidth becomes `factor` × pristine.
    DegradeLink {
        /// One link endpoint.
        a: usize,
        /// The other link endpoint (always `> a`).
        b: usize,
        /// Fraction of pristine bandwidth that remains.
        factor: f64,
    },
    /// Some live session's user switches portal to device `to`
    /// (`pick` selects the session deterministically among the live
    /// ones, modulo their count).
    SwitchDevice {
        /// Deterministic session selector.
        pick: u64,
        /// The new portal device.
        to: usize,
    },
    /// Some live session's user moves (recompose + re-place + handoff)
    /// and fronts device `to`.
    MoveUser {
        /// Deterministic session selector.
        pick: u64,
        /// The new portal device.
        to: usize,
    },
    /// The contiguous device group `first..first+count` is partitioned
    /// away from the domain server: heartbeats stop arriving and
    /// downloads/activations to the group fail, but the devices keep
    /// running. Detection only happens through lease expiry.
    Partition {
        /// First device of the partitioned group.
        first: usize,
        /// Number of devices cut off together.
        count: usize,
    },
    /// The matching partition heals: heartbeats resume and the group is
    /// reachable again. Every generated `Partition` has a `Heal` inside
    /// the horizon, so schedules are eventually-healed by construction.
    Heal {
        /// First device of the healed group.
        first: usize,
        /// Number of devices rejoining together.
        count: usize,
    },
    /// Heartbeats from `device` are lost until `until_h` while the
    /// device and its data path stay healthy — only the detector signal
    /// is jammed. A jam longer than the lease grace window causes a
    /// *false suspicion* the detector must cleanly undo.
    JamHeartbeats {
        /// The device whose heartbeats are dropped.
        device: usize,
        /// Simulated hour the jam ends (self-contained: no paired
        /// "unjam" event exists, so schedule shrinking needs no pairing
        /// logic for jams).
        until_h: f64,
    },
    /// The *domain server* of federation shard `shard` crashes: its
    /// in-memory state (registry, session table, retry queue,
    /// reliable-transport cursors) is lost and must be reconstructed
    /// from the durable snapshot + write-ahead log. Until the matching
    /// [`FaultKind::ShardRestart`], the shard's network interface is
    /// dead — copies to or from it are eaten on the wire. Serial
    /// (unsharded) harnesses skip these events (logged).
    ShardCrash {
        /// The federation shard whose domain server crashes.
        shard: usize,
    },
    /// The matching restart: the recovered domain server of `shard`
    /// rejoins the fabric. Every generated `ShardCrash` has a
    /// `ShardRestart` inside the horizon, so schedules are
    /// eventually-restarted by construction.
    ShardRestart {
        /// The federation shard coming back up.
        shard: usize,
    },
}

impl FaultKind {
    /// A short stable label for logs and reports.
    pub fn label(&self) -> &'static str {
        match self {
            FaultKind::Crash { .. } => "crash",
            FaultKind::CrashScope { .. } => "crash-scope",
            FaultKind::Recover { .. } => "recover",
            FaultKind::Fluctuate { .. } => "fluctuate",
            FaultKind::DegradeLink { .. } => "degrade-link",
            FaultKind::SwitchDevice { .. } => "switch-device",
            FaultKind::MoveUser { .. } => "move-user",
            FaultKind::Partition { .. } => "partition",
            FaultKind::Heal { .. } => "heal",
            FaultKind::JamHeartbeats { .. } => "jam-heartbeats",
            FaultKind::ShardCrash { .. } => "shard-crash",
            FaultKind::ShardRestart { .. } => "shard-restart",
        }
    }
}

/// One fault at a point in simulated time.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TimedFault {
    /// When the fault fires, in hours from campaign start.
    pub at_h: f64,
    /// What happens.
    pub kind: FaultKind,
}

/// Parameters for fault-schedule generation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultScheduleConfig {
    /// Schedule seed (independent of the workload seed).
    pub seed: u64,
    /// Number of fault events to generate.
    pub events: usize,
    /// Horizon the events spread over, in hours.
    pub horizon_h: f64,
    /// Number of devices in the target smart space.
    pub devices: usize,
    /// Smallest capacity fraction a fluctuation may leave.
    pub min_factor: f64,
    /// Largest correlated crash scope (devices crashing together in one
    /// event). `1` disables correlated failures (independent crashes
    /// only, the PR 2 behaviour).
    pub scope_max: usize,
    /// Number of flapping-link patterns overlaid on the schedule. Each
    /// pattern periodically degrades and restores one link for the whole
    /// horizon; the extra events are *in addition to* `events`.
    pub flapping_links: usize,
    /// Full degrade→restore period of each flapping link, in hours.
    pub flap_period_h: f64,
    /// Number of partition/heal pairs overlaid on the schedule. Each
    /// pair cuts a contiguous device group off from the domain server
    /// and heals it strictly before the horizon ends, so every
    /// generated schedule is eventually-healed. `0` disables partitions
    /// (the PR 4 behaviour) and draws nothing from the RNG stream.
    pub partitions: usize,
    /// Largest device group a single partition may cut off (at least one
    /// device always stays reachable). `1` restricts partitions to
    /// single devices.
    pub partition_max: usize,
    /// Probability that each of the seeded heartbeat-jam candidate
    /// windows (one per scheduled event) materialises. `0.0` disables
    /// heartbeat loss and draws nothing from the RNG stream.
    pub heartbeat_loss: f64,
}

impl Default for FaultScheduleConfig {
    fn default() -> Self {
        FaultScheduleConfig {
            seed: 0x1cdc_2002,
            events: 48,
            horizon_h: 100.0,
            devices: 4,
            min_factor: 0.2,
            scope_max: 1,
            flapping_links: 0,
            flap_period_h: 8.0,
            partitions: 0,
            partition_max: 1,
            heartbeat_loss: 0.0,
        }
    }
}

impl FaultScheduleConfig {
    /// Generates the schedule: `events` timed faults sorted by time
    /// (FIFO on ties, by construction), deterministic per seed.
    ///
    /// Crash/recover alternate per device — a recovery always targets a
    /// currently-down device; while everything is up, the slot becomes a
    /// fluctuation instead. At least one device is always left up, so a
    /// schedule can never crash the whole space at once.
    ///
    /// # Panics
    ///
    /// Panics when the config has fewer than 2 devices or no events
    /// horizon to spread over (harness construction error).
    pub fn generate(&self) -> Vec<TimedFault> {
        assert!(self.devices >= 2, "fault schedules need at least 2 devices");
        assert!(self.horizon_h > 0.0, "fault horizon must be positive");
        if self.flapping_links > 0 {
            assert!(self.flap_period_h > 0.0, "flap period must be positive");
        }
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut down: Vec<bool> = vec![false; self.devices];
        let mut schedule: Vec<TimedFault> = (0..self.events)
            .map(|_| {
                let at_h = rng.gen_range(0.0..self.horizon_h);
                let kind = self.draw_kind(&mut rng, &mut down);
                TimedFault { at_h, kind }
            })
            .collect();
        self.overlay_flapping(&mut rng, &mut schedule);
        self.overlay_partitions(&mut rng, &mut schedule);
        self.overlay_heartbeat_loss(&mut rng, &mut schedule);
        // Stable sort keeps the generation order on exact time ties, so
        // the schedule is a pure function of the seed.
        schedule.sort_by(|x, y| {
            x.at_h
                .partial_cmp(&y.at_h)
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        schedule
    }

    /// Appends the flapping-link patterns: each picks one link, a
    /// degradation factor, and a phase, then alternates degrade/restore
    /// every half period across the horizon. Emitted as plain
    /// [`FaultKind::DegradeLink`] events so the runtime path is identical
    /// to any other link fluctuation.
    fn overlay_flapping(&self, rng: &mut StdRng, schedule: &mut Vec<TimedFault>) {
        for _ in 0..self.flapping_links {
            let device = rng.gen_range(0..self.devices);
            let other = (device + 1 + rng.gen_range(0..self.devices - 1)) % self.devices;
            let (a, b) = (device.min(other), device.max(other));
            let hi = if self.min_factor < 0.7 { 0.7 } else { 1.0 };
            let factor = rng.gen_range(self.min_factor..hi);
            let mut t = rng.gen_range(0.0..self.flap_period_h);
            let mut degraded = false;
            while t < self.horizon_h {
                schedule.push(TimedFault {
                    at_h: t,
                    kind: FaultKind::DegradeLink {
                        a,
                        b,
                        factor: if degraded { 1.0 } else { factor },
                    },
                });
                degraded = !degraded;
                t += self.flap_period_h / 2.0;
            }
        }
    }

    /// Appends the partition/heal pairs. Draws happen strictly *after*
    /// every base-schedule and flapping draw, so configs with
    /// `partitions == 0` reproduce the PR 4 RNG stream bit-exactly.
    fn overlay_partitions(&self, rng: &mut StdRng, schedule: &mut Vec<TimedFault>) {
        for _ in 0..self.partitions {
            let first = rng.gen_range(0..self.devices);
            let cap = self
                .partition_max
                .max(1)
                .min(self.devices - first)
                .min(self.devices - 1);
            let count = if cap >= 2 {
                rng.gen_range(1..cap + 1)
            } else {
                1
            };
            let start = rng.gen_range(0.0..self.horizon_h * 0.8);
            let len = rng
                .gen_range(self.horizon_h * 0.02..self.horizon_h * 0.2)
                .min((self.horizon_h - start) * 0.9);
            schedule.push(TimedFault {
                at_h: start,
                kind: FaultKind::Partition { first, count },
            });
            schedule.push(TimedFault {
                at_h: start + len,
                kind: FaultKind::Heal { first, count },
            });
        }
    }

    /// Appends the heartbeat-jam windows: one seeded candidate per
    /// scheduled event, each materialising with probability
    /// `heartbeat_loss`. Draws nothing when the probability is zero.
    fn overlay_heartbeat_loss(&self, rng: &mut StdRng, schedule: &mut Vec<TimedFault>) {
        if self.heartbeat_loss <= 0.0 {
            return;
        }
        for _ in 0..self.events.max(8) {
            let device = rng.gen_range(0..self.devices);
            let start = rng.gen_range(0.0..self.horizon_h * 0.9);
            let len = rng.gen_range(self.horizon_h * 0.01..self.horizon_h * 0.1);
            if rng.gen_range(0.0..1.0) < self.heartbeat_loss {
                schedule.push(TimedFault {
                    at_h: start,
                    kind: FaultKind::JamHeartbeats {
                        device,
                        until_h: (start + len).min(self.horizon_h),
                    },
                });
            }
        }
    }

    fn draw_kind(&self, rng: &mut StdRng, down: &mut [bool]) -> FaultKind {
        let device = rng.gen_range(0..self.devices);
        let factor = rng.gen_range(self.min_factor..1.0);
        match rng.gen_range(0u32..10) {
            // 2/10 crash — unless it would take the last device down, in
            // which case the slot degrades the device instead. When the
            // config allows correlated scopes and there is headroom, a
            // third of the crash slots take a contiguous group down
            // together.
            0 | 1 => {
                let up_count = down.iter().filter(|&&d| !d).count();
                if !down[device] && up_count > 1 {
                    // A scope may only swallow the contiguous run of *up*
                    // devices starting at `device`, and must leave at
                    // least one survivor somewhere.
                    let run = down[device..].iter().take_while(|&&d| !d).count();
                    let cap = self.scope_max.min(up_count - 1).min(run);
                    let count = if cap >= 2 && rng.gen_range(0u32..3) == 0 {
                        rng.gen_range(2..cap + 1)
                    } else {
                        1
                    };
                    if count > 1 {
                        for d in down.iter_mut().skip(device).take(count) {
                            *d = true;
                        }
                        FaultKind::CrashScope {
                            first: device,
                            count,
                        }
                    } else {
                        down[device] = true;
                        FaultKind::Crash { device }
                    }
                } else {
                    FaultKind::Fluctuate { device, factor }
                }
            }
            // 2/10 recover a down device (deterministically the lowest
            // index), else restore the drawn device to full capacity.
            2 | 3 => match down.iter().position(|&d| d) {
                Some(dead) => {
                    down[dead] = false;
                    FaultKind::Recover { device: dead }
                }
                None => FaultKind::Fluctuate {
                    device,
                    factor: 1.0,
                },
            },
            // 2/10 resource fluctuation.
            4 | 5 => FaultKind::Fluctuate { device, factor },
            // 2/10 link degradation (restore when the draw is generous).
            6 | 7 => {
                let other = (device + 1 + rng.gen_range(0..self.devices - 1)) % self.devices;
                let (a, b) = (device.min(other), device.max(other));
                FaultKind::DegradeLink { a, b, factor }
            }
            // 1/10 portal switch, 1/10 user move.
            8 => FaultKind::SwitchDevice {
                pick: rng.gen::<u64>(),
                to: device,
            },
            _ => FaultKind::MoveUser {
                pick: rng.gen::<u64>(),
                to: device,
            },
        }
    }
}

/// Parameters for a seeded shard-crash overlay: `crashes`
/// [`FaultKind::ShardCrash`]/[`FaultKind::ShardRestart`] pairs spread
/// over the horizon, schedulable alongside (merged into) any device
/// fault schedule. `crashes == 0` generates nothing and draws nothing,
/// so disabled configs stay bit-exact with their crash-free baseline.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ShardCrashPlan {
    /// Overlay seed (independent of workload and fault-schedule seeds).
    pub seed: u64,
    /// Number of crash/restart pairs to generate.
    pub crashes: usize,
    /// Number of federation shards crashes may target.
    pub shards: usize,
    /// Horizon the crash windows spread over, in hours.
    pub horizon_h: f64,
    /// Outage length of each crash window, in hours. Every restart
    /// lands strictly inside the horizon.
    pub outage_h: f64,
}

impl Default for ShardCrashPlan {
    fn default() -> Self {
        ShardCrashPlan {
            seed: 0x5eed_c4a5,
            crashes: 0,
            shards: 1,
            horizon_h: 100.0,
            outage_h: 0.5,
        }
    }
}

impl ShardCrashPlan {
    /// Generates the crash/restart pairs, sorted by time (stable on
    /// ties), deterministic per seed. Windows of the *same* shard never
    /// overlap — a crash draw landing inside an existing window of its
    /// shard is shifted past it, so every crash tears down a shard that
    /// is actually up.
    ///
    /// # Panics
    ///
    /// Panics when `crashes > 0` with no shards, a non-positive
    /// horizon, or an outage that cannot fit inside the horizon.
    pub fn generate(&self) -> Vec<TimedFault> {
        if self.crashes == 0 {
            return Vec::new();
        }
        assert!(self.shards >= 1, "crash plans need at least one shard");
        assert!(
            self.horizon_h > 0.0 && self.outage_h > 0.0,
            "crash plan horizon and outage must be positive"
        );
        assert!(
            self.outage_h < self.horizon_h * 0.5,
            "outage must fit well inside the horizon"
        );
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut windows: Vec<(usize, f64, f64)> = Vec::new();
        let mut schedule = Vec::with_capacity(self.crashes * 2);
        for _ in 0..self.crashes {
            let shard = rng.gen_range(0..self.shards);
            let latest = self.horizon_h - self.outage_h;
            let mut at_h = rng.gen_range(0.0..latest * 0.9);
            // Shift past any existing window of the same shard.
            loop {
                let clash = windows
                    .iter()
                    .find(|&&(s, from, to)| s == shard && at_h < to && at_h + self.outage_h > from)
                    .copied();
                match clash {
                    Some((_, _, to)) if to + self.outage_h < self.horizon_h => at_h = to + 1e-3,
                    Some(_) => break, // no room left for this shard
                    None => {
                        windows.push((shard, at_h, at_h + self.outage_h));
                        schedule.push(TimedFault {
                            at_h,
                            kind: FaultKind::ShardCrash { shard },
                        });
                        schedule.push(TimedFault {
                            at_h: at_h + self.outage_h,
                            kind: FaultKind::ShardRestart { shard },
                        });
                        break;
                    }
                }
            }
        }
        schedule.sort_by(|x, y| {
            x.at_h
                .partial_cmp(&y.at_h)
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        schedule
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let cfg = FaultScheduleConfig::default();
        assert_eq!(cfg.generate(), cfg.generate());
        let other = FaultScheduleConfig {
            seed: 1,
            ..FaultScheduleConfig::default()
        };
        assert_ne!(cfg.generate(), other.generate());
    }

    #[test]
    fn sorted_sized_and_in_bounds() {
        let cfg = FaultScheduleConfig {
            events: 200,
            ..FaultScheduleConfig::default()
        };
        let schedule = cfg.generate();
        assert_eq!(schedule.len(), 200);
        for pair in schedule.windows(2) {
            assert!(pair[0].at_h <= pair[1].at_h);
        }
        for f in &schedule {
            assert!(f.at_h >= 0.0 && f.at_h < cfg.horizon_h);
            match f.kind {
                FaultKind::Crash { device }
                | FaultKind::Recover { device }
                | FaultKind::Fluctuate { device, .. } => assert!(device < cfg.devices),
                FaultKind::CrashScope { first, count } => {
                    assert!(count >= 2 && first + count <= cfg.devices);
                }
                FaultKind::DegradeLink { a, b, .. } => {
                    assert!(a < b && b < cfg.devices);
                }
                FaultKind::SwitchDevice { to, .. } | FaultKind::MoveUser { to, .. } => {
                    assert!(to < cfg.devices);
                }
                FaultKind::Partition { first, count } | FaultKind::Heal { first, count } => {
                    assert!(count >= 1 && first + count <= cfg.devices);
                }
                FaultKind::JamHeartbeats { device, until_h } => {
                    assert!(device < cfg.devices && until_h <= cfg.horizon_h);
                }
                FaultKind::ShardCrash { .. } | FaultKind::ShardRestart { .. } => {
                    panic!("device schedules never generate shard faults")
                }
            }
        }
    }

    #[test]
    fn shard_crash_plans_pair_up_inside_the_horizon() {
        let plan = ShardCrashPlan {
            crashes: 6,
            shards: 3,
            horizon_h: 10.0,
            outage_h: 0.4,
            ..ShardCrashPlan::default()
        };
        let schedule = plan.generate();
        assert_eq!(schedule, plan.generate(), "deterministic per seed");
        let crashes: Vec<(f64, usize)> = schedule
            .iter()
            .filter_map(|f| match f.kind {
                FaultKind::ShardCrash { shard } => Some((f.at_h, shard)),
                _ => None,
            })
            .collect();
        let restarts: Vec<(f64, usize)> = schedule
            .iter()
            .filter_map(|f| match f.kind {
                FaultKind::ShardRestart { shard } => Some((f.at_h, shard)),
                _ => None,
            })
            .collect();
        assert_eq!(crashes.len(), restarts.len());
        assert!(!crashes.is_empty());
        for &(at_h, shard) in &crashes {
            assert!(shard < plan.shards);
            let restart = restarts
                .iter()
                .find(|&&(h, s)| s == shard && (h - at_h - plan.outage_h).abs() < 1e-9)
                .expect("every crash has its restart one outage later");
            assert!(restart.0 < plan.horizon_h);
        }
        // Same-shard windows never overlap.
        for (i, &(a_h, a_s)) in crashes.iter().enumerate() {
            for &(b_h, b_s) in crashes.iter().skip(i + 1) {
                if a_s == b_s {
                    assert!(
                        a_h + plan.outage_h <= b_h + 1e-9 || b_h + plan.outage_h <= a_h + 1e-9,
                        "windows of shard {a_s} overlap"
                    );
                }
            }
        }
        // A disabled plan generates nothing.
        assert!(ShardCrashPlan::default().generate().is_empty());
    }

    #[test]
    fn crashes_and_recoveries_pair_up() {
        // Replaying the schedule in *generation* order keeps a sane
        // up/down state: never recover an up device, never crash a down
        // one, never crash the last survivor. Generation order is what
        // the state machine saw; time order may interleave differently,
        // which the runtime injector tolerates by design.
        let cfg = FaultScheduleConfig {
            events: 400,
            seed: 9,
            ..FaultScheduleConfig::default()
        };
        let schedule = cfg.generate();
        let crashes = schedule
            .iter()
            .filter(|f| matches!(f.kind, FaultKind::Crash { .. }))
            .count();
        let recoveries = schedule
            .iter()
            .filter(|f| matches!(f.kind, FaultKind::Recover { .. }))
            .count();
        assert!(
            crashes >= recoveries,
            "{crashes} crashes, {recoveries} recoveries"
        );
        assert!(
            crashes - recoveries < cfg.devices,
            "at most devices-1 net down"
        );
    }

    #[test]
    fn labels_are_distinct() {
        let kinds = [
            FaultKind::Crash { device: 0 },
            FaultKind::CrashScope { first: 0, count: 2 },
            FaultKind::Recover { device: 0 },
            FaultKind::Fluctuate {
                device: 0,
                factor: 0.5,
            },
            FaultKind::DegradeLink {
                a: 0,
                b: 1,
                factor: 0.5,
            },
            FaultKind::SwitchDevice { pick: 0, to: 0 },
            FaultKind::MoveUser { pick: 0, to: 0 },
            FaultKind::Partition { first: 0, count: 1 },
            FaultKind::Heal { first: 0, count: 1 },
            FaultKind::JamHeartbeats {
                device: 0,
                until_h: 1.0,
            },
        ];
        let mut labels: Vec<&str> = kinds.iter().map(|k| k.label()).collect();
        labels.sort_unstable();
        labels.dedup();
        assert_eq!(labels.len(), kinds.len());
    }

    #[test]
    fn correlated_scopes_appear_when_enabled_and_stay_in_bounds() {
        let cfg = FaultScheduleConfig {
            events: 400,
            devices: 8,
            scope_max: 3,
            seed: 17,
            ..FaultScheduleConfig::default()
        };
        let schedule = cfg.generate();
        let scopes: Vec<(usize, usize)> = schedule
            .iter()
            .filter_map(|f| match f.kind {
                FaultKind::CrashScope { first, count } => Some((first, count)),
                _ => None,
            })
            .collect();
        assert!(
            !scopes.is_empty(),
            "400 events with scope_max=3 should draw scopes"
        );
        for (first, count) in scopes {
            assert!((2..=cfg.scope_max).contains(&count));
            assert!(first + count <= cfg.devices);
        }
        // The same config with scopes disabled draws none.
        let strict = FaultScheduleConfig {
            scope_max: 1,
            ..cfg
        };
        assert!(strict
            .generate()
            .iter()
            .all(|f| !matches!(f.kind, FaultKind::CrashScope { .. })));
    }

    #[test]
    fn flapping_links_alternate_degrade_and_restore() {
        let cfg = FaultScheduleConfig {
            events: 0,
            flapping_links: 1,
            flap_period_h: 10.0,
            ..FaultScheduleConfig::default()
        };
        let schedule = cfg.generate();
        // The pattern fires every half period across the horizon.
        assert!(schedule.len() >= (cfg.horizon_h / cfg.flap_period_h) as usize);
        let mut by_link: std::collections::BTreeMap<(usize, usize), Vec<f64>> =
            std::collections::BTreeMap::new();
        for f in &schedule {
            match f.kind {
                FaultKind::DegradeLink { a, b, factor } => {
                    assert!(a < b && b < cfg.devices);
                    by_link.entry((a, b)).or_default().push(factor);
                }
                other => panic!("flap-only schedule produced {other:?}"),
            }
        }
        for factors in by_link.values() {
            // Strict degrade/restore alternation per link, starting degraded.
            for (i, &factor) in factors.iter().enumerate() {
                if i % 2 == 0 {
                    assert!(factor < 1.0, "even beats degrade, got {factor}");
                } else {
                    assert!((factor - 1.0).abs() < 1e-12, "odd beats restore");
                }
            }
        }
        // Still deterministic per seed.
        assert_eq!(schedule, cfg.generate());
    }

    #[test]
    fn partitions_pair_up_and_heal_inside_the_horizon() {
        let cfg = FaultScheduleConfig {
            events: 40,
            devices: 6,
            partitions: 5,
            partition_max: 3,
            seed: 23,
            ..FaultScheduleConfig::default()
        };
        let schedule = cfg.generate();
        let cuts: Vec<(f64, usize, usize)> = schedule
            .iter()
            .filter_map(|f| match f.kind {
                FaultKind::Partition { first, count } => Some((f.at_h, first, count)),
                _ => None,
            })
            .collect();
        let heals: Vec<(f64, usize, usize)> = schedule
            .iter()
            .filter_map(|f| match f.kind {
                FaultKind::Heal { first, count } => Some((f.at_h, first, count)),
                _ => None,
            })
            .collect();
        assert_eq!(cuts.len(), cfg.partitions);
        assert_eq!(heals.len(), cfg.partitions);
        for (at_h, first, count) in &cuts {
            assert!((1..=cfg.partition_max).contains(count));
            assert!(first + count <= cfg.devices && *count < cfg.devices);
            // The matching heal exists, strictly later, strictly inside
            // the horizon: every schedule is eventually-healed.
            let heal = heals
                .iter()
                .find(|(h, f, c)| f == first && c == count && *h > *at_h)
                .expect("every partition has a later matching heal");
            assert!(heal.0 < cfg.horizon_h);
        }
        // Disabled knobs draw no partition events and leave the base
        // schedule untouched relative to the same seed.
        let base = FaultScheduleConfig {
            partitions: 0,
            ..cfg.clone()
        };
        let plain = base.generate();
        assert!(plain
            .iter()
            .all(|f| !matches!(f.kind, FaultKind::Partition { .. } | FaultKind::Heal { .. })));
        let without_overlay: Vec<TimedFault> = schedule
            .iter()
            .filter(|f| !matches!(f.kind, FaultKind::Partition { .. } | FaultKind::Heal { .. }))
            .copied()
            .collect();
        assert_eq!(
            without_overlay, plain,
            "overlay must not perturb base draws"
        );
    }

    #[test]
    fn heartbeat_jams_are_seeded_and_gated() {
        let cfg = FaultScheduleConfig {
            events: 60,
            devices: 5,
            heartbeat_loss: 0.5,
            seed: 31,
            ..FaultScheduleConfig::default()
        };
        let schedule = cfg.generate();
        let jams: Vec<(f64, f64)> = schedule
            .iter()
            .filter_map(|f| match f.kind {
                FaultKind::JamHeartbeats { until_h, .. } => Some((f.at_h, until_h)),
                _ => None,
            })
            .collect();
        assert!(!jams.is_empty(), "p=0.5 over 60 candidates should jam");
        for (at_h, until_h) in jams {
            assert!(until_h > at_h, "jam windows have positive length");
        }
        assert_eq!(schedule, cfg.generate());
        let off = FaultScheduleConfig {
            heartbeat_loss: 0.0,
            ..cfg
        };
        assert!(off
            .generate()
            .iter()
            .all(|f| !matches!(f.kind, FaultKind::JamHeartbeats { .. })));
    }

    #[test]
    #[should_panic(expected = "at least 2 devices")]
    fn rejects_single_device_spaces() {
        let _ = FaultScheduleConfig {
            devices: 1,
            ..FaultScheduleConfig::default()
        }
        .generate();
    }
}
