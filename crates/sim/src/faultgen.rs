//! Seeded generation of §3.3 fault schedules.
//!
//! The paper's reconfiguration triggers — device crash, resource
//! fluctuation, portal/device switch, user mobility, application
//! start/stop — only appear in hand-written scenarios elsewhere in the
//! workspace. This module turns them into *data*: a deterministic,
//! seed-reproducible schedule of timed fault events that a runtime
//! harness (`ubiqos_runtime::faults`) replays against a live
//! [`DomainServer`](../../ubiqos_runtime/struct.DomainServer.html),
//! interleaved with the Figure 5 request workload.
//!
//! The generator is stateful about crash/recover pairing: a recovery is
//! only emitted for a device that is currently down, so every schedule
//! is *applicable* as-is (no "recover a healthy device" no-ops crowding
//! out real faults).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// One kind of injected fault (device indices are plain `usize`s so the
/// schedule stays independent of any graph/runtime types).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum FaultKind {
    /// Device `device` crashes: capacity and its links drop to zero.
    Crash {
        /// The crashing device.
        device: usize,
    },
    /// Device `device` recovers to its pristine capacity and links.
    Recover {
        /// The recovering device.
        device: usize,
    },
    /// Device `device`'s availability becomes `factor` × pristine
    /// (`factor` in `(0, 1]` degrades, `1.0` restores).
    Fluctuate {
        /// The fluctuating device.
        device: usize,
        /// Fraction of pristine capacity that remains.
        factor: f64,
    },
    /// The `a`-`b` link's bandwidth becomes `factor` × pristine.
    DegradeLink {
        /// One link endpoint.
        a: usize,
        /// The other link endpoint (always `> a`).
        b: usize,
        /// Fraction of pristine bandwidth that remains.
        factor: f64,
    },
    /// Some live session's user switches portal to device `to`
    /// (`pick` selects the session deterministically among the live
    /// ones, modulo their count).
    SwitchDevice {
        /// Deterministic session selector.
        pick: u64,
        /// The new portal device.
        to: usize,
    },
    /// Some live session's user moves (recompose + re-place + handoff)
    /// and fronts device `to`.
    MoveUser {
        /// Deterministic session selector.
        pick: u64,
        /// The new portal device.
        to: usize,
    },
}

impl FaultKind {
    /// A short stable label for logs and reports.
    pub fn label(&self) -> &'static str {
        match self {
            FaultKind::Crash { .. } => "crash",
            FaultKind::Recover { .. } => "recover",
            FaultKind::Fluctuate { .. } => "fluctuate",
            FaultKind::DegradeLink { .. } => "degrade-link",
            FaultKind::SwitchDevice { .. } => "switch-device",
            FaultKind::MoveUser { .. } => "move-user",
        }
    }
}

/// One fault at a point in simulated time.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TimedFault {
    /// When the fault fires, in hours from campaign start.
    pub at_h: f64,
    /// What happens.
    pub kind: FaultKind,
}

/// Parameters for fault-schedule generation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultScheduleConfig {
    /// Schedule seed (independent of the workload seed).
    pub seed: u64,
    /// Number of fault events to generate.
    pub events: usize,
    /// Horizon the events spread over, in hours.
    pub horizon_h: f64,
    /// Number of devices in the target smart space.
    pub devices: usize,
    /// Smallest capacity fraction a fluctuation may leave.
    pub min_factor: f64,
}

impl Default for FaultScheduleConfig {
    fn default() -> Self {
        FaultScheduleConfig {
            seed: 0x1cdc_2002,
            events: 48,
            horizon_h: 100.0,
            devices: 4,
            min_factor: 0.2,
        }
    }
}

impl FaultScheduleConfig {
    /// Generates the schedule: `events` timed faults sorted by time
    /// (FIFO on ties, by construction), deterministic per seed.
    ///
    /// Crash/recover alternate per device — a recovery always targets a
    /// currently-down device; while everything is up, the slot becomes a
    /// fluctuation instead. At least one device is always left up, so a
    /// schedule can never crash the whole space at once.
    ///
    /// # Panics
    ///
    /// Panics when the config has fewer than 2 devices or no events
    /// horizon to spread over (harness construction error).
    pub fn generate(&self) -> Vec<TimedFault> {
        assert!(self.devices >= 2, "fault schedules need at least 2 devices");
        assert!(self.horizon_h > 0.0, "fault horizon must be positive");
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut down: Vec<bool> = vec![false; self.devices];
        let mut schedule: Vec<TimedFault> = (0..self.events)
            .map(|_| {
                let at_h = rng.gen_range(0.0..self.horizon_h);
                let kind = self.draw_kind(&mut rng, &mut down);
                TimedFault { at_h, kind }
            })
            .collect();
        // Stable sort keeps the generation order on exact time ties, so
        // the schedule is a pure function of the seed.
        schedule.sort_by(|x, y| {
            x.at_h
                .partial_cmp(&y.at_h)
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        schedule
    }

    fn draw_kind(&self, rng: &mut StdRng, down: &mut [bool]) -> FaultKind {
        let device = rng.gen_range(0..self.devices);
        let factor = rng.gen_range(self.min_factor..1.0);
        match rng.gen_range(0u32..10) {
            // 2/10 crash — unless it would take the last device down, in
            // which case the slot degrades the device instead.
            0 | 1 => {
                let up_count = down.iter().filter(|&&d| !d).count();
                if !down[device] && up_count > 1 {
                    down[device] = true;
                    FaultKind::Crash { device }
                } else {
                    FaultKind::Fluctuate { device, factor }
                }
            }
            // 2/10 recover a down device (deterministically the lowest
            // index), else restore the drawn device to full capacity.
            2 | 3 => match down.iter().position(|&d| d) {
                Some(dead) => {
                    down[dead] = false;
                    FaultKind::Recover { device: dead }
                }
                None => FaultKind::Fluctuate {
                    device,
                    factor: 1.0,
                },
            },
            // 2/10 resource fluctuation.
            4 | 5 => FaultKind::Fluctuate { device, factor },
            // 2/10 link degradation (restore when the draw is generous).
            6 | 7 => {
                let other = (device + 1 + rng.gen_range(0..self.devices - 1)) % self.devices;
                let (a, b) = (device.min(other), device.max(other));
                FaultKind::DegradeLink { a, b, factor }
            }
            // 1/10 portal switch, 1/10 user move.
            8 => FaultKind::SwitchDevice {
                pick: rng.gen::<u64>(),
                to: device,
            },
            _ => FaultKind::MoveUser {
                pick: rng.gen::<u64>(),
                to: device,
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let cfg = FaultScheduleConfig::default();
        assert_eq!(cfg.generate(), cfg.generate());
        let other = FaultScheduleConfig {
            seed: 1,
            ..FaultScheduleConfig::default()
        };
        assert_ne!(cfg.generate(), other.generate());
    }

    #[test]
    fn sorted_sized_and_in_bounds() {
        let cfg = FaultScheduleConfig {
            events: 200,
            ..FaultScheduleConfig::default()
        };
        let schedule = cfg.generate();
        assert_eq!(schedule.len(), 200);
        for pair in schedule.windows(2) {
            assert!(pair[0].at_h <= pair[1].at_h);
        }
        for f in &schedule {
            assert!(f.at_h >= 0.0 && f.at_h < cfg.horizon_h);
            match f.kind {
                FaultKind::Crash { device }
                | FaultKind::Recover { device }
                | FaultKind::Fluctuate { device, .. } => assert!(device < cfg.devices),
                FaultKind::DegradeLink { a, b, .. } => {
                    assert!(a < b && b < cfg.devices);
                }
                FaultKind::SwitchDevice { to, .. } | FaultKind::MoveUser { to, .. } => {
                    assert!(to < cfg.devices);
                }
            }
        }
    }

    #[test]
    fn crashes_and_recoveries_pair_up() {
        // Replaying the schedule in *generation* order keeps a sane
        // up/down state: never recover an up device, never crash a down
        // one, never crash the last survivor. Generation order is what
        // the state machine saw; time order may interleave differently,
        // which the runtime injector tolerates by design.
        let cfg = FaultScheduleConfig {
            events: 400,
            seed: 9,
            ..FaultScheduleConfig::default()
        };
        let schedule = cfg.generate();
        let crashes = schedule
            .iter()
            .filter(|f| matches!(f.kind, FaultKind::Crash { .. }))
            .count();
        let recoveries = schedule
            .iter()
            .filter(|f| matches!(f.kind, FaultKind::Recover { .. }))
            .count();
        assert!(
            crashes >= recoveries,
            "{crashes} crashes, {recoveries} recoveries"
        );
        assert!(
            crashes - recoveries < cfg.devices,
            "at most devices-1 net down"
        );
    }

    #[test]
    fn labels_are_distinct() {
        let kinds = [
            FaultKind::Crash { device: 0 },
            FaultKind::Recover { device: 0 },
            FaultKind::Fluctuate {
                device: 0,
                factor: 0.5,
            },
            FaultKind::DegradeLink {
                a: 0,
                b: 1,
                factor: 0.5,
            },
            FaultKind::SwitchDevice { pick: 0, to: 0 },
            FaultKind::MoveUser { pick: 0, to: 0 },
        ];
        let mut labels: Vec<&str> = kinds.iter().map(|k| k.label()).collect();
        labels.sort_unstable();
        labels.dedup();
        assert_eq!(labels.len(), kinds.len());
    }

    #[test]
    #[should_panic(expected = "at least 2 devices")]
    fn rejects_single_device_spaces() {
        let _ = FaultScheduleConfig {
            devices: 1,
            ..FaultScheduleConfig::default()
        }
        .generate();
    }
}
