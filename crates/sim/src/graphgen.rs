//! Seeded random service-graph generation.
//!
//! Both simulation experiments draw random service graphs with "resource
//! requirement vectors, communication throughput on each edge and weight
//! values … uniformly distributed" (Section 4). The generator emits DAGs
//! by sampling forward edges over a fixed node order.

use rand::rngs::StdRng;
use rand::Rng;
use serde::{Deserialize, Serialize};
use std::ops::RangeInclusive;
use ubiqos_graph::{ServiceComponent, ServiceGraph};
use ubiqos_model::ResourceVector;

/// Parameters for random service-graph generation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GraphGenConfig {
    /// Number of components, sampled uniformly.
    pub nodes: RangeInclusive<usize>,
    /// Outbound edges per node (capped by the number of downstream
    /// nodes), sampled uniformly per node.
    pub out_edges: RangeInclusive<usize>,
    /// Per-component memory requirement (MB), uniform.
    pub memory: RangeInclusive<f64>,
    /// Per-component CPU requirement (benchmark %), uniform.
    pub cpu: RangeInclusive<f64>,
    /// Per-edge communication throughput (Mbps), uniform.
    pub throughput: RangeInclusive<f64>,
}

impl GraphGenConfig {
    /// The Table 1 setup: "service graphs with 10 to 20 service
    /// components. Each component has, on average, 3 to 6 outbound
    /// edges." Resource ranges are sized so that a PC+PDA pair
    /// (RA₁ = [256 MB, 300%], RA₂ = [32 MB, 100%]) can usually host the
    /// graph while the PDA stays genuinely constraining.
    pub fn table1() -> Self {
        GraphGenConfig {
            nodes: 10..=20,
            out_edges: 3..=6,
            memory: 2.0..=24.0,
            cpu: 4.0..=28.0,
            throughput: 0.2..=2.0,
        }
    }

    /// The Figure 5 setup: "each graph has 50 to 100 nodes with on
    /// average 5 to 10 outbound edges", sized for the desktop + laptop +
    /// PDA trio (total ≈ [416 MB, 450%]) so that a handful of concurrent
    /// applications saturate the space.
    pub fn fig5() -> Self {
        GraphGenConfig {
            nodes: 50..=100,
            out_edges: 5..=10,
            memory: 0.4..=3.0,
            cpu: 0.4..=3.6,
            throughput: 0.01..=0.11,
        }
    }

    /// Generates one random service graph.
    pub fn generate(&self, rng: &mut StdRng) -> ServiceGraph {
        let n = rng.gen_range(self.nodes.clone());
        let mut graph = ServiceGraph::new();
        let ids: Vec<_> = (0..n)
            .map(|i| {
                graph.add_component(
                    ServiceComponent::builder(format!("svc-{i}"))
                        .resources(ResourceVector::mem_cpu(
                            rng.gen_range(self.memory.clone()),
                            rng.gen_range(self.cpu.clone()),
                        ))
                        .build(),
                )
            })
            .collect();
        for i in 0..n {
            let downstream = n - i - 1;
            if downstream == 0 {
                continue;
            }
            let degree = rng.gen_range(self.out_edges.clone()).min(downstream);
            // Sample `degree` distinct forward targets.
            let mut targets: Vec<usize> = ((i + 1)..n).collect();
            for _ in 0..degree {
                if targets.is_empty() {
                    break;
                }
                let pick = rng.gen_range(0..targets.len());
                let j = targets.swap_remove(pick);
                graph
                    .add_edge(ids[i], ids[j], rng.gen_range(self.throughput.clone()))
                    .expect("forward edges over a fixed order cannot cycle");
            }
        }
        graph
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use ubiqos_graph::topo;

    #[test]
    fn table1_graphs_are_in_spec() {
        let mut rng = StdRng::seed_from_u64(1);
        let cfg = GraphGenConfig::table1();
        for _ in 0..50 {
            let g = cfg.generate(&mut rng);
            assert!((10..=20).contains(&g.component_count()));
            assert!(topo::topological_sort(&g).is_ok(), "always a DAG");
            for (_, c) in g.components() {
                let r = c.resources();
                assert!((2.0..=24.0).contains(&r[0]));
                assert!((4.0..=28.0).contains(&r[1]));
            }
            for e in g.edges() {
                assert!((0.2..=2.0).contains(&e.throughput));
            }
        }
    }

    #[test]
    fn fig5_graphs_are_in_spec() {
        let mut rng = StdRng::seed_from_u64(2);
        let cfg = GraphGenConfig::fig5();
        let g = cfg.generate(&mut rng);
        assert!((50..=100).contains(&g.component_count()));
        assert!(topo::topological_sort(&g).is_ok());
        // Out-degree cap: each node has at most 10 outbound edges.
        for id in g.component_ids() {
            assert!(g.successors(id).len() <= 10);
        }
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let cfg = GraphGenConfig::table1();
        let g1 = cfg.generate(&mut StdRng::seed_from_u64(42));
        let g2 = cfg.generate(&mut StdRng::seed_from_u64(42));
        assert_eq!(g1, g2);
        let g3 = cfg.generate(&mut StdRng::seed_from_u64(43));
        assert_ne!(g1, g3);
    }

    #[test]
    fn single_node_range_works() {
        let cfg = GraphGenConfig {
            nodes: 1..=1,
            out_edges: 3..=6,
            memory: 1.0..=2.0,
            cpu: 1.0..=2.0,
            throughput: 0.1..=0.2,
        };
        let g = cfg.generate(&mut StdRng::seed_from_u64(0));
        assert_eq!(g.component_count(), 1);
        assert_eq!(g.edge_count(), 0);
    }
}
