//! # ubiqos-sim
//!
//! Discrete-event simulation substrate reproducing the paper's two
//! simulation experiments (Section 4):
//!
//! * **Table 1** — heuristic quality vs the exhaustive optimum and a
//!   random baseline on 150 random service graphs with 10-20 components
//!   distributed over two devices ([`table1`]);
//! * **Figure 5** — success rate over a 1000-hour workload of 5000
//!   application requests drawn from 5 predefined graphs (50-100 nodes),
//!   under the *fixed*, *random*, and *heuristic* (re-)distribution
//!   policies ([`scenario`]).
//!
//! Supporting modules: a deterministic event queue ([`des`]), seeded
//! random service-graph generation ([`graphgen`]), the request workload
//! generator ([`workload`]), windowed success-rate metrics
//! ([`metrics`]), and seeded §3.3 fault-schedule generation
//! ([`faultgen`]) consumed by the runtime's fault-injection harness.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod des;
pub mod faultgen;
pub mod graphgen;
pub mod metrics;
pub mod mobility;
pub mod scenario;
pub mod table1;
pub mod workload;

pub use des::EventQueue;
pub use faultgen::{FaultKind, FaultScheduleConfig, ShardCrashPlan, TimedFault};
pub use graphgen::GraphGenConfig;
pub use metrics::WindowedRate;
pub use mobility::{merge_schedules, MobilityWaveConfig};
pub use scenario::{
    run_fig5, run_fig5_multi, Fig5Config, Fig5Outcome, Policy, PolicySummary, SuccessSeries,
};
pub use table1::{run_table1, Table1Config, Table1Report, Table1Row};
pub use workload::{Request, WorkloadConfig};
