//! Windowed success-rate metrics ("the success rate is calculated every
//! 50 hours").

use serde::{Deserialize, Serialize};

/// Accumulates success/failure outcomes into fixed-width time windows.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WindowedRate {
    window_h: f64,
    successes: Vec<u64>,
    attempts: Vec<u64>,
}

impl WindowedRate {
    /// Creates an accumulator with the given window width in hours.
    ///
    /// # Panics
    ///
    /// Panics when `window_h` is not a positive finite number.
    pub fn new(window_h: f64) -> Self {
        assert!(
            window_h.is_finite() && window_h > 0.0,
            "window width must be positive"
        );
        WindowedRate {
            window_h,
            successes: Vec::new(),
            attempts: Vec::new(),
        }
    }

    /// Records one attempt at time `t` hours.
    pub fn record(&mut self, t_h: f64, success: bool) {
        let idx = (t_h / self.window_h).floor().max(0.0) as usize;
        if idx >= self.attempts.len() {
            self.attempts.resize(idx + 1, 0);
            self.successes.resize(idx + 1, 0);
        }
        self.attempts[idx] += 1;
        if success {
            self.successes[idx] += 1;
        }
    }

    /// The per-window series as `(window_end_hours, success_rate)`.
    /// Windows with no attempts report a rate of 0.
    pub fn series(&self) -> Vec<(f64, f64)> {
        self.attempts
            .iter()
            .zip(&self.successes)
            .enumerate()
            .map(|(i, (&a, &s))| {
                let t = (i as f64 + 1.0) * self.window_h;
                let rate = if a == 0 { 0.0 } else { s as f64 / a as f64 };
                (t, rate)
            })
            .collect()
    }

    /// The overall success rate across all windows.
    pub fn overall(&self) -> f64 {
        let attempts: u64 = self.attempts.iter().sum();
        if attempts == 0 {
            return 0.0;
        }
        self.successes.iter().sum::<u64>() as f64 / attempts as f64
    }

    /// Total attempts recorded.
    pub fn total_attempts(&self) -> u64 {
        self.attempts.iter().sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn windows_bucket_correctly() {
        let mut w = WindowedRate::new(50.0);
        w.record(10.0, true);
        w.record(49.9, false);
        w.record(50.0, true); // second window
        w.record(149.0, true); // third window
        let series = w.series();
        assert_eq!(series.len(), 3);
        assert_eq!(series[0], (50.0, 0.5));
        assert_eq!(series[1], (100.0, 1.0));
        assert_eq!(series[2], (150.0, 1.0));
        assert_eq!(w.total_attempts(), 4);
        assert!((w.overall() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn empty_window_in_the_middle_reports_zero() {
        let mut w = WindowedRate::new(10.0);
        w.record(5.0, true);
        w.record(25.0, true);
        let series = w.series();
        assert_eq!(series.len(), 3);
        assert_eq!(series[1].1, 0.0);
    }

    #[test]
    fn overall_of_empty_is_zero() {
        let w = WindowedRate::new(50.0);
        assert_eq!(w.overall(), 0.0);
        assert!(w.series().is_empty());
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_window_panics() {
        let _ = WindowedRate::new(0.0);
    }
}
