//! Mobility-wave workload shaping.
//!
//! The paper's §3.3 user-mobility trigger fires one user at a time; a
//! federated deployment sees *waves* — a lecture lets out, a shift
//! changes, and a burst of users walks from one smart space into
//! another, dragging their sessions across shard boundaries together.
//! This module generates that shape as plain fault data: a seeded,
//! time-clustered burst of [`FaultKind::MoveUser`] (with periodic
//! [`FaultKind::SwitchDevice`] portal switches mixed in) that merges
//! into any base fault schedule and replays through the same harness.

use crate::faultgen::{FaultKind, TimedFault};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Parameters of one seeded mobility-wave overlay.
#[derive(Debug, Clone, PartialEq)]
pub struct MobilityWaveConfig {
    /// Seed of the overlay's own RNG stream (independent of the base
    /// fault schedule and the workload).
    pub seed: u64,
    /// Total move/switch events across all waves.
    pub moves: usize,
    /// Number of wave bursts spread over the horizon (≥ 1 when
    /// `moves > 0`).
    pub waves: usize,
    /// Horizon the waves are placed inside, in hours.
    pub horizon_h: f64,
    /// Device count of the target space (destination devices are drawn
    /// from `0..devices`).
    pub devices: usize,
    /// Every `switch_every`-th event is a portal switch instead of a
    /// user move (`0` disables switches entirely).
    pub switch_every: usize,
}

impl Default for MobilityWaveConfig {
    fn default() -> Self {
        MobilityWaveConfig {
            seed: 0x000b_1117_0001,
            moves: 32,
            waves: 4,
            horizon_h: 48.0,
            devices: 8,
            switch_every: 4,
        }
    }
}

impl MobilityWaveConfig {
    /// Generates the overlay: `moves` events clustered around `waves`
    /// evenly spaced wave centers, sorted by time. Pure function of the
    /// config.
    ///
    /// # Panics
    ///
    /// Panics on a structurally invalid config (no devices, non-positive
    /// horizon, or moves without waves).
    pub fn generate(&self) -> Vec<TimedFault> {
        if self.moves == 0 {
            return Vec::new();
        }
        assert!(self.devices > 0, "mobility waves need a device pool");
        assert!(self.horizon_h > 0.0, "mobility waves need a horizon");
        assert!(self.waves > 0, "moves without waves have no placement");
        let mut rng = StdRng::seed_from_u64(self.seed);
        // Wave w centers at (w+1)/(waves+1) of the horizon, with events
        // jittered ±half the inter-wave gap around it so consecutive
        // waves stay distinct bursts instead of blurring together.
        let gap_h = self.horizon_h / (self.waves as f64 + 1.0);
        let spread_h = gap_h / 2.0;
        let mut out = Vec::with_capacity(self.moves);
        for m in 0..self.moves {
            let wave = m % self.waves;
            let center_h = gap_h * (wave as f64 + 1.0);
            let jitter_h = rng.gen_range(-spread_h..spread_h);
            let at_h = (center_h + jitter_h).clamp(0.0, self.horizon_h);
            let pick: u64 = rng.gen();
            let to = rng.gen_range(0..self.devices);
            let kind = if self.switch_every > 0 && (m + 1).is_multiple_of(self.switch_every) {
                FaultKind::SwitchDevice { pick, to }
            } else {
                FaultKind::MoveUser { pick, to }
            };
            out.push(TimedFault { at_h, kind });
        }
        out.sort_by(|a, b| a.at_h.partial_cmp(&b.at_h).expect("finite event times"));
        out
    }
}

/// Merges a mobility overlay into a base fault schedule, preserving the
/// deterministic order: stable sort by time, base events before overlay
/// events at equal instants (the overlay is appended, and the sort is
/// stable).
pub fn merge_schedules(base: &[TimedFault], overlay: &[TimedFault]) -> Vec<TimedFault> {
    let mut merged: Vec<TimedFault> = Vec::with_capacity(base.len() + overlay.len());
    merged.extend_from_slice(base);
    merged.extend_from_slice(overlay);
    merged.sort_by(|a, b| a.at_h.partial_cmp(&b.at_h).expect("finite event times"));
    merged
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wave_is_deterministic_and_sorted() {
        let cfg = MobilityWaveConfig::default();
        let a = cfg.generate();
        let b = cfg.generate();
        assert_eq!(a, b, "same config, same overlay");
        assert_eq!(a.len(), cfg.moves);
        assert!(a.windows(2).all(|w| w[0].at_h <= w[1].at_h), "sorted");
        assert!(a.iter().all(|f| (0.0..=cfg.horizon_h).contains(&f.at_h)));
    }

    #[test]
    fn waves_cluster_and_mix_switches() {
        let cfg = MobilityWaveConfig {
            moves: 40,
            waves: 4,
            switch_every: 4,
            ..MobilityWaveConfig::default()
        };
        let wave = cfg.generate();
        let switches = wave
            .iter()
            .filter(|f| matches!(f.kind, FaultKind::SwitchDevice { .. }))
            .count();
        let moves = wave
            .iter()
            .filter(|f| matches!(f.kind, FaultKind::MoveUser { .. }))
            .count();
        assert_eq!(switches, 10, "every 4th event is a portal switch");
        assert_eq!(moves, 30);
        // Every event sits within half an inter-wave gap of some center.
        let gap = cfg.horizon_h / (cfg.waves as f64 + 1.0);
        for f in &wave {
            let near_center =
                (1..=cfg.waves).any(|w| (f.at_h - gap * w as f64).abs() <= gap / 2.0 + 1e-9);
            assert!(near_center, "event at t={} is outside every wave", f.at_h);
        }
    }

    #[test]
    fn empty_and_merge() {
        let none = MobilityWaveConfig {
            moves: 0,
            ..MobilityWaveConfig::default()
        };
        assert!(none.generate().is_empty());
        let base = vec![
            TimedFault {
                at_h: 1.0,
                kind: FaultKind::Crash { device: 0 },
            },
            TimedFault {
                at_h: 3.0,
                kind: FaultKind::Recover { device: 0 },
            },
        ];
        let overlay = vec![TimedFault {
            at_h: 1.0,
            kind: FaultKind::MoveUser { pick: 7, to: 1 },
        }];
        let merged = merge_schedules(&base, &overlay);
        assert_eq!(merged.len(), 3);
        // Stable: the base event keeps priority at the shared instant.
        assert!(matches!(merged[0].kind, FaultKind::Crash { .. }));
        assert!(matches!(merged[1].kind, FaultKind::MoveUser { .. }));
    }
}
