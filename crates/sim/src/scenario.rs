//! The Figure 5 experiment: success rate of fixed / random / heuristic
//! (re-)distribution over a 1000-hour workload.
//!
//! "We assume three heterogeneous devices (desktop, laptop, and PDA) …
//! RA₁ = [256MB, 300%], RA₂ = [128MB, 100%], RA₃ = [32MB, 50%]. The
//! available bandwidths b₁₂, b₁₃ and b₂₃ are initialized to be 50Mbps,
//! 5Mbps, and 5Mbps … When a new application starts or an old application
//! stops, both our heuristic and random algorithms make the
//! re-distribution decisions, but the fixed algorithm does not. The
//! success rate is calculated every 50 hours."

use crate::des::EventQueue;
use crate::graphgen::GraphGenConfig;
use crate::metrics::WindowedRate;
use crate::workload::{Request, WorkloadConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use ubiqos_distribution::{
    Device, Environment, GreedyHeuristic, OsdProblem, RandomDistributor, ServiceDistributor,
};
use ubiqos_graph::{Cut, ServiceGraph};
use ubiqos_model::{ResourceVector, Weights};

/// The distribution policies compared in Figure 5 (plus one ablation).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Policy {
    /// A static per-template placement that "lacks dynamic service
    /// distribution considerations" entirely: components are assigned
    /// round-robin over the devices, with no regard for resource
    /// availability, and never re-distributed.
    Fixed,
    /// Ablation of `Fixed`: the static placement is *planned* (computed
    /// once by the heuristic against the empty system) but still never
    /// re-distributed — isolating how much of the heuristic's advantage
    /// is dynamism vs placement quality.
    FixedPlanned,
    /// Random placement, re-decided at every arrival/departure.
    Random,
    /// The paper's greedy heuristic, re-decided at every
    /// arrival/departure.
    Heuristic,
}

impl Policy {
    /// A short stable label.
    pub fn label(self) -> &'static str {
        match self {
            Policy::Fixed => "fixed",
            Policy::FixedPlanned => "fixed-planned",
            Policy::Random => "random",
            Policy::Heuristic => "heuristic",
        }
    }
}

/// Parameters for the Figure 5 run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig5Config {
    /// Master seed (workload, graphs, and random policy all derive from
    /// it, so every policy sees the identical request trace).
    pub seed: u64,
    /// Request workload parameters.
    pub workload: WorkloadConfig,
    /// Graph generator parameters for the 5 predefined graphs.
    pub gen: GraphGenConfig,
    /// Success-rate window (paper: 50 h).
    pub window_h: f64,
    /// Attempt budget for the random policy.
    pub random_attempts: usize,
}

impl Default for Fig5Config {
    fn default() -> Self {
        Fig5Config {
            seed: 0x1cdc_2002,
            workload: WorkloadConfig::default(),
            gen: GraphGenConfig::fig5(),
            window_h: 50.0,
            random_attempts: 4,
        }
    }
}

/// One policy's success-rate curve.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SuccessSeries {
    /// Policy label.
    pub policy: String,
    /// `(window_end_hours, success_rate)` samples.
    pub series: Vec<(f64, f64)>,
    /// Success rate over the whole run.
    pub overall: f64,
}

/// The full Figure 5 reproduction.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig5Outcome {
    /// One curve per policy, in `[fixed, fixed-planned, random,
    /// heuristic]` order.
    pub curves: Vec<SuccessSeries>,
}

impl Fig5Outcome {
    /// The curve for a policy.
    pub fn curve(&self, policy: Policy) -> &SuccessSeries {
        self.curves
            .iter()
            .find(|c| c.policy == policy.label())
            .expect("every policy is always present")
    }

    /// Renders the series as aligned columns (time, then one column per
    /// policy).
    pub fn render(&self) -> String {
        let mut out = String::from("time(h)");
        for c in &self.curves {
            out.push_str(&format!(" | {:>13}", c.policy));
        }
        out.push('\n');
        let len = self
            .curves
            .iter()
            .map(|c| c.series.len())
            .max()
            .unwrap_or(0);
        for i in 0..len {
            let t = self.curves[0].series.get(i).map_or(0.0, |&(t, _)| t);
            out.push_str(&format!("{t:>7.0}"));
            for c in &self.curves {
                let rate = c.series.get(i).map_or(0.0, |&(_, r)| r);
                out.push_str(&format!(" | {rate:>13.2}"));
            }
            out.push('\n');
        }
        out
    }
}

/// The Figure 5 environment: desktop + laptop + PDA with the paper's
/// initial availabilities and link bandwidths.
pub fn fig5_environment() -> Environment {
    Environment::builder()
        .device(Device::new(
            "desktop",
            ResourceVector::mem_cpu(256.0, 300.0),
        ))
        .device(Device::new("laptop", ResourceVector::mem_cpu(128.0, 100.0)))
        .device(Device::new("pda", ResourceVector::mem_cpu(32.0, 50.0)))
        .default_bandwidth_mbps(5.0)
        .link_mbps(0, 1, 50.0)
        .build()
}

/// Runs the Figure 5 experiment for all three policies on one shared
/// workload.
pub fn run_fig5(cfg: &Fig5Config) -> Fig5Outcome {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    // The "5 predefined graphs" span the configured node range evenly
    // (e.g. 50, 62, 75, 88, 100 nodes for the paper's 50-100), so the
    // workload always mixes small and large applications regardless of
    // seed luck.
    let (lo, hi) = (*cfg.gen.nodes.start(), *cfg.gen.nodes.end());
    let count = cfg.workload.graph_count;
    let graphs: Vec<ServiceGraph> = (0..count)
        .map(|i| {
            let span = hi.saturating_sub(lo);
            let n = if count > 1 {
                lo + span * i / (count - 1)
            } else {
                lo + span / 2
            };
            let gen = GraphGenConfig {
                nodes: n..=n,
                ..cfg.gen.clone()
            };
            gen.generate(&mut rng)
        })
        .collect();
    let trace = cfg.workload.generate(&mut rng);
    // The four policies share the graphs and the trace read-only and are
    // otherwise independent, so they can replay the workload on separate
    // threads. Each policy's discrete-event simulation itself stays
    // single-threaded — event order is its determinism guarantee.
    let policies = [
        Policy::Fixed,
        Policy::FixedPlanned,
        Policy::Random,
        Policy::Heuristic,
    ];
    #[cfg(feature = "parallel")]
    let curves = ubiqos_parallel::par_map(&policies, |_, &policy| {
        simulate_policy(cfg, policy, &graphs, &trace)
    });
    #[cfg(not(feature = "parallel"))]
    let curves = policies
        .iter()
        .map(|&policy| simulate_policy(cfg, policy, &graphs, &trace))
        .collect();
    Fig5Outcome { curves }
}

/// Aggregate of one policy's overall success rate across seeds.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PolicySummary {
    /// Policy label.
    pub policy: String,
    /// Mean overall success rate across seeds.
    pub mean: f64,
    /// Smallest overall success rate observed.
    pub min: f64,
    /// Largest overall success rate observed.
    pub max: f64,
}

/// Runs the Figure 5 experiment across several seeds and summarizes each
/// policy's overall success rate — the robustness check that the
/// reported ordering is not a seed artifact.
///
/// # Panics
///
/// Panics when `seeds` is empty.
pub fn run_fig5_multi(cfg: &Fig5Config, seeds: &[u64]) -> Vec<PolicySummary> {
    assert!(!seeds.is_empty(), "at least one seed is required");
    let policies = [
        Policy::Fixed,
        Policy::FixedPlanned,
        Policy::Random,
        Policy::Heuristic,
    ];
    // Seeds are independent full runs; fan them out and fold the results
    // back in seed order so the summary does not depend on scheduling.
    #[cfg(feature = "parallel")]
    let outcomes = ubiqos_parallel::par_map(seeds, |_, &seed| {
        run_fig5(&Fig5Config {
            seed,
            ..cfg.clone()
        })
    });
    #[cfg(not(feature = "parallel"))]
    let outcomes: Vec<Fig5Outcome> = seeds
        .iter()
        .map(|&seed| {
            run_fig5(&Fig5Config {
                seed,
                ..cfg.clone()
            })
        })
        .collect();
    let mut rates: Vec<Vec<f64>> = vec![Vec::new(); policies.len()];
    for outcome in &outcomes {
        for (i, p) in policies.iter().enumerate() {
            rates[i].push(outcome.curve(*p).overall);
        }
    }
    policies
        .iter()
        .zip(rates)
        .map(|(p, r)| PolicySummary {
            policy: p.label().to_owned(),
            mean: r.iter().sum::<f64>() / r.len() as f64,
            min: r.iter().copied().fold(f64::INFINITY, f64::min),
            max: r.iter().copied().fold(f64::NEG_INFINITY, f64::max),
        })
        .collect()
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum SimEvent {
    Arrival(usize),
    Departure(usize),
}

/// Runs one policy over the shared trace.
fn simulate_policy(
    cfg: &Fig5Config,
    policy: Policy,
    graphs: &[ServiceGraph],
    trace: &[Request],
) -> SuccessSeries {
    let initial_env = fig5_environment();
    let weights = Weights::default();
    let mut distributor: Box<dyn ServiceDistributor> = match policy {
        Policy::Fixed | Policy::FixedPlanned | Policy::Heuristic => {
            Box::new(GreedyHeuristic::paper())
        }
        Policy::Random => Box::new(
            RandomDistributor::seeded(cfg.seed ^ 0x5eed).with_attempts(cfg.random_attempts),
        ),
    };

    // Static policies: one placement per template, never revised.
    let fixed_cuts: Vec<Option<Cut>> = match policy {
        // Availability-blind static mapping: component i on device i mod k.
        Policy::Fixed => graphs
            .iter()
            .map(|g| {
                let k = initial_env.device_count();
                Cut::from_assignment(g, (0..g.component_count()).map(|i| i % k).collect(), k)
            })
            .collect(),
        // Planned once against the empty system by the heuristic.
        Policy::FixedPlanned => graphs
            .iter()
            .map(|g| {
                let p = OsdProblem::new(g, &initial_env, &weights);
                GreedyHeuristic::paper().distribute(&p).ok()
            })
            .collect(),
        _ => Vec::new(),
    };

    let mut queue = EventQueue::new();
    for (i, r) in trace.iter().enumerate() {
        queue.schedule(r.arrival_h, SimEvent::Arrival(i));
    }

    let mut env = initial_env.clone();
    // Active applications in arrival order: request index -> current cut.
    let mut active: BTreeMap<usize, Cut> = BTreeMap::new();
    let mut metrics = WindowedRate::new(cfg.window_h);

    while let Some((now, event)) = queue.pop() {
        match event {
            SimEvent::Arrival(i) => {
                let req = &trace[i];
                let graph = &graphs[req.graph_index];
                let admitted = match policy {
                    Policy::Fixed | Policy::FixedPlanned => {
                        if let Some(cut) = &fixed_cuts[req.graph_index] {
                            let p = OsdProblem::new(graph, &env, &weights);
                            if p.fits(cut) {
                                env.charge_cut(graph, cut).expect("consistent dims");
                                active.insert(i, cut.clone());
                                true
                            } else {
                                false
                            }
                        } else {
                            false
                        }
                    }
                    Policy::Random | Policy::Heuristic => {
                        // "When a new application starts … make the
                        // re-distribution decisions": the dynamic policies
                        // place the newcomer against the *current* residual
                        // availability (the fixed policy ignores it).
                        let p = OsdProblem::new(graph, &env, &weights);
                        match distributor.distribute(&p) {
                            Ok(cut) => {
                                env.charge_cut(graph, &cut).expect("consistent dims");
                                active.insert(i, cut);
                                true
                            }
                            Err(_) => false,
                        }
                    }
                };
                if admitted {
                    queue.schedule(req.departure_h(), SimEvent::Departure(i));
                }
                metrics.record(now, admitted);
            }
            SimEvent::Departure(i) => {
                let req = &trace[i];
                let graph = &graphs[req.graph_index];
                if let Some(cut) = active.remove(&i) {
                    env.refund_cut(graph, &cut).expect("consistent dims");
                }
                // "… or an old application stops": the dynamic policies
                // re-distribute the surviving applications over the freed
                // capacity, defragmenting the space for future arrivals.
                if matches!(policy, Policy::Random | Policy::Heuristic) {
                    repack(
                        &initial_env,
                        &mut env,
                        &mut active,
                        graphs,
                        trace,
                        &weights,
                        distributor.as_mut(),
                    );
                }
            }
        }
    }

    SuccessSeries {
        policy: policy.label().to_owned(),
        series: metrics.series(),
        overall: metrics.overall(),
    }
}

/// Re-packs every live application from scratch ("make the
/// re-distribution decisions"): resets the environment to its initial
/// state and re-places each active app in arrival order. An app whose
/// re-placement fails keeps its previous cut (and is charged for it), so
/// re-packing never evicts running applications.
fn repack(
    initial_env: &Environment,
    env: &mut Environment,
    active: &mut BTreeMap<usize, Cut>,
    graphs: &[ServiceGraph],
    trace: &[Request],
    weights: &Weights,
    distributor: &mut dyn ServiceDistributor,
) {
    *env = initial_env.clone();
    for (&i, cut) in active.iter_mut() {
        let graph = &graphs[trace[i].graph_index];
        let p = OsdProblem::new(graph, env, weights);
        if let Ok(new_cut) = distributor.distribute(&p) {
            *cut = new_cut;
        }
        env.charge_cut(graph, cut).expect("consistent dims");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_cfg() -> Fig5Config {
        Fig5Config {
            seed: 11,
            workload: WorkloadConfig {
                requests: 120,
                horizon_h: 100.0,
                ..WorkloadConfig::default()
            },
            gen: GraphGenConfig {
                nodes: 20..=30,
                ..GraphGenConfig::fig5()
            },
            window_h: 25.0,
            random_attempts: 8,
        }
    }

    #[test]
    fn produces_one_curve_per_policy_over_the_horizon() {
        let out = run_fig5(&tiny_cfg());
        assert_eq!(out.curves.len(), 4);
        for c in &out.curves {
            assert!(!c.series.is_empty());
            for &(t, rate) in &c.series {
                assert!(t > 0.0 && t <= 100.0 + 25.0);
                assert!((0.0..=1.0).contains(&rate));
            }
        }
    }

    #[test]
    fn heuristic_dominates_fixed() {
        let out = run_fig5(&tiny_cfg());
        let h = out.curve(Policy::Heuristic).overall;
        let f = out.curve(Policy::Fixed).overall;
        assert!(
            h >= f,
            "heuristic ({h:.3}) should not lose to fixed ({f:.3})"
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let a = run_fig5(&tiny_cfg());
        let b = run_fig5(&tiny_cfg());
        assert_eq!(a, b);
    }

    #[test]
    fn render_has_header_and_rows() {
        let out = run_fig5(&tiny_cfg());
        let s = out.render();
        assert!(s.starts_with("time(h)"));
        assert!(s.lines().count() > 2);
    }

    #[test]
    fn multi_seed_summary_keeps_the_ordering() {
        let cfg = tiny_cfg();
        let summaries = run_fig5_multi(&cfg, &[3, 5]);
        assert_eq!(summaries.len(), 4);
        let mean_of = |label: &str| {
            summaries
                .iter()
                .find(|s| s.policy == label)
                .map(|s| s.mean)
                .unwrap()
        };
        assert!(mean_of("heuristic") >= mean_of("fixed"));
        for s in &summaries {
            assert!(s.min <= s.mean && s.mean <= s.max);
            assert!((0.0..=1.0).contains(&s.mean));
        }
    }

    #[test]
    #[should_panic(expected = "at least one seed")]
    fn multi_seed_requires_seeds() {
        let _ = run_fig5_multi(&tiny_cfg(), &[]);
    }

    #[test]
    fn policy_labels() {
        assert_eq!(Policy::Fixed.label(), "fixed");
        assert_eq!(Policy::Random.label(), "random");
        assert_eq!(Policy::Heuristic.label(), "heuristic");
    }
}
