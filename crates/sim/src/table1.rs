//! The Table 1 experiment: heuristic quality vs optimal.
//!
//! "We compare the relative performances of different heuristic
//! algorithms (random and ours) with the optimal algorithm … we limit
//! ourselves to the special case of two-way cut. We assume two
//! heterogeneous devices (PC, PDA) are used, with initial normalized
//! resource availability vectors RA₁ = [256MB, 300%], RA₂ = [32MB, 100%]
//! … Table 1 summarizes the comparison results for 150 randomly generated
//! service graphs."
//!
//! The first metric is "the ratio of cost aggregation between the optimal
//! solution and the solution found by the heuristic, averaged over all
//! 150 graphs"; the second is the percentage of graphs where the
//! algorithm found the exact optimum.

use crate::graphgen::GraphGenConfig;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use ubiqos_distribution::{
    Device, Environment, ExhaustiveOptimal, GreedyHeuristic, OsdProblem, RandomDistributor,
    ServiceDistributor,
};
use ubiqos_model::{ResourceVector, Weights};

/// Parameters for the Table 1 run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Table1Config {
    /// Number of (optimally feasible) graphs to evaluate (paper: 150).
    pub graphs: usize,
    /// Master seed.
    pub seed: u64,
    /// Graph generator parameters.
    pub gen: GraphGenConfig,
    /// Attempt budget for the random baseline.
    pub random_attempts: usize,
    /// Also evaluate the heuristic's ablation variants.
    pub include_ablations: bool,
}

impl Default for Table1Config {
    fn default() -> Self {
        Table1Config {
            graphs: 150,
            seed: 0x1cdc_2002,
            gen: GraphGenConfig::table1(),
            random_attempts: 32,
            include_ablations: false,
        }
    }
}

/// One row of Table 1.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Table1Row {
    /// Algorithm name.
    pub algorithm: String,
    /// Mean of `CA(optimal) / CA(algorithm)` over all graphs (infeasible
    /// answers count as ratio 0).
    pub avg_ratio: f64,
    /// Fraction of graphs where the algorithm's cut cost equals the
    /// optimum.
    pub pct_optimal: f64,
}

/// The full Table 1 reproduction.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Table1Report {
    /// One row per algorithm (optimal last, by construction 100%/100%).
    pub rows: Vec<Table1Row>,
    /// Graphs generated but skipped because even the optimal algorithm
    /// could not fit them into the two devices.
    pub skipped_infeasible: usize,
}

impl Table1Report {
    /// Renders the report in the paper's row format.
    pub fn render(&self) -> String {
        let mut out = String::from(
            "Algorithms        | Average | Optimal\n------------------+---------+--------\n",
        );
        for row in &self.rows {
            out.push_str(&format!(
                "{:<17} | {:>6.0}% | {:>6.0}%\n",
                row.algorithm,
                row.avg_ratio * 100.0,
                row.pct_optimal * 100.0
            ));
        }
        out
    }
}

/// The PC + PDA environment of the Table 1 experiment.
pub fn table1_environment() -> Environment {
    Environment::builder()
        .device(Device::new("pc", ResourceVector::mem_cpu(256.0, 300.0)))
        .device(Device::new("pda", ResourceVector::mem_cpu(32.0, 100.0)))
        .default_bandwidth_mbps(20.0)
        .build()
}

/// Spreads a candidate index over the master seed (splitmix64 finalizer)
/// so every candidate graph draws from its own independent RNG stream.
/// This is what makes the sweep embarrassingly parallel: candidate `i`'s
/// graph, weights, and baseline seed no longer depend on how many earlier
/// candidates were feasible.
fn candidate_rng(master: u64, index: u64) -> StdRng {
    let mut z = master ^ index.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^= z >> 31;
    StdRng::seed_from_u64(z)
}

/// Everything one candidate graph contributes to the table: `None` when
/// even the optimal algorithm could not fit it, otherwise the per-
/// algorithm `(ratio, hit_optimal)` pairs in `names` order.
type CandidateOutcome = Option<Vec<(f64, bool)>>;

fn evaluate_candidate(
    cfg: &Table1Config,
    env: &Environment,
    names: &[String],
    index: u64,
) -> CandidateOutcome {
    let mut rng = candidate_rng(cfg.seed, index);
    let graph = cfg.gen.generate(&mut rng);
    // "Weight values … uniformly distributed": fresh weights per graph.
    // The network importance is drawn from a higher band — multimedia
    // streams make inter-device bandwidth the critical resource, matching
    // the paper's "higher weights for more critical resources" guidance.
    let weights = Weights::from_importance(&[
        rng.gen_range(0.1..0.5),
        rng.gen_range(0.1..0.5),
        rng.gen_range(0.5..1.0),
    ])
    .expect("positive importances");
    let problem = OsdProblem::new(&graph, env, &weights);

    let opt_cut = ExhaustiveOptimal::new().distribute(&problem).ok()?;
    let opt_cost = problem.cost(&opt_cut);

    let seed = rng.gen::<u64>();
    let per_alg = names
        .iter()
        .map(|name| {
            let mut alg: Box<dyn ServiceDistributor> = match name.as_str() {
                "random" => {
                    Box::new(RandomDistributor::seeded(seed).with_attempts(cfg.random_attempts))
                }
                "heuristic" => Box::new(GreedyHeuristic::paper()),
                "heuristic-unsorted" => Box::new(GreedyHeuristic::without_device_resort()),
                "heuristic-nomerge" => Box::new(GreedyHeuristic::without_cluster_adjacency()),
                _ => unreachable!(),
            };
            match alg.distribute(&problem) {
                Ok(cut) => {
                    let cost = problem.cost(&cut);
                    // opt_cost may be 0 for degenerate graphs; then any
                    // feasible answer with cost 0 is optimal.
                    let ratio = if cost <= ubiqos_model::EPSILON {
                        1.0
                    } else {
                        (opt_cost / cost).min(1.0)
                    };
                    let hit = (cost - opt_cost).abs() <= 1e-9 * opt_cost.max(1.0);
                    (ratio, hit)
                }
                // Infeasible: contributes ratio 0 and no optimal hit.
                Err(_) => (0.0, false),
            }
        })
        .collect();
    Some(per_alg)
}

/// Candidates evaluated concurrently per round. A wave may overshoot the
/// quota; surplus outcomes are discarded in index order, so the report is
/// identical however the wave is scheduled (or whether it ran serially).
const WAVE: usize = 16;

/// Runs the Table 1 experiment.
///
/// Candidate graphs are indexed and drawn from per-index RNG streams
/// (see [`candidate_rng`]), evaluated in waves — concurrently with the
/// `parallel` feature, serially without — and consumed in index order
/// until the configured number of feasible graphs is reached. Both modes
/// produce the same report for the same config.
pub fn run_table1(cfg: &Table1Config) -> Table1Report {
    let env = table1_environment();

    let mut names: Vec<String> = vec!["random".into(), "heuristic".into()];
    if cfg.include_ablations {
        names.push("heuristic-unsorted".into());
        names.push("heuristic-nomerge".into());
    }
    let mut ratio_sums = vec![0.0; names.len()];
    let mut optimal_hits = vec![0usize; names.len()];
    let mut evaluated = 0usize;
    let mut skipped = 0usize;
    let mut next_index = 0u64;

    while evaluated < cfg.graphs {
        let indices: Vec<u64> = (next_index..next_index + WAVE as u64).collect();
        next_index += WAVE as u64;

        #[cfg(feature = "parallel")]
        let outcomes =
            ubiqos_parallel::par_map(&indices, |_, &i| evaluate_candidate(cfg, &env, &names, i));
        #[cfg(not(feature = "parallel"))]
        let outcomes: Vec<CandidateOutcome> = indices
            .iter()
            .map(|&i| evaluate_candidate(cfg, &env, &names, i))
            .collect();

        for outcome in outcomes {
            if evaluated == cfg.graphs {
                break;
            }
            match outcome {
                None => skipped += 1,
                Some(per_alg) => {
                    evaluated += 1;
                    for (i, (ratio, hit)) in per_alg.into_iter().enumerate() {
                        ratio_sums[i] += ratio;
                        optimal_hits[i] += hit as usize;
                    }
                }
            }
        }
    }

    let mut rows: Vec<Table1Row> = names
        .iter()
        .enumerate()
        .map(|(i, name)| Table1Row {
            algorithm: name.clone(),
            avg_ratio: ratio_sums[i] / evaluated as f64,
            pct_optimal: optimal_hits[i] as f64 / evaluated as f64,
        })
        .collect();
    rows.push(Table1Row {
        algorithm: "optimal".into(),
        avg_ratio: 1.0,
        pct_optimal: 1.0,
    });

    Table1Report {
        rows,
        skipped_infeasible: skipped,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_cfg() -> Table1Config {
        Table1Config {
            graphs: 12,
            seed: 7,
            ..Table1Config::default()
        }
    }

    #[test]
    fn heuristic_beats_random_and_optimal_tops() {
        let report = run_table1(&small_cfg());
        let row = |name: &str| {
            report
                .rows
                .iter()
                .find(|r| r.algorithm == name)
                .unwrap()
                .clone()
        };
        let h = row("heuristic");
        let r = row("random");
        let o = row("optimal");
        assert!(h.avg_ratio > r.avg_ratio, "heuristic {h:?} vs random {r:?}");
        assert!(h.pct_optimal >= r.pct_optimal);
        assert_eq!(o.avg_ratio, 1.0);
        assert_eq!(o.pct_optimal, 1.0);
        // Ratios are in [0, 1].
        for row in &report.rows {
            assert!((0.0..=1.0).contains(&row.avg_ratio));
            assert!((0.0..=1.0).contains(&row.pct_optimal));
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let a = run_table1(&small_cfg());
        let b = run_table1(&small_cfg());
        assert_eq!(a, b);
    }

    #[test]
    fn ablations_included_on_request() {
        let cfg = Table1Config {
            graphs: 6,
            include_ablations: true,
            ..small_cfg()
        };
        let report = run_table1(&cfg);
        assert_eq!(report.rows.len(), 5);
        assert!(report
            .rows
            .iter()
            .any(|r| r.algorithm == "heuristic-unsorted"));
    }

    #[test]
    fn render_contains_all_rows() {
        let report = run_table1(&small_cfg());
        let s = report.render();
        assert!(s.contains("random"));
        assert!(s.contains("heuristic"));
        assert!(s.contains("optimal"));
        assert!(s.contains('%'));
    }
}
