//! The Figure 5 request workload.
//!
//! "We randomly create 5000 application requests over 1000 hours period.
//! Each request randomly selects a service graph from 5 predefined ones.
//! … The length of each application is exponentially distributed from 5
//! minutes to 1 hours."

use rand::rngs::StdRng;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// One application request.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Request {
    /// Arrival time in hours from simulation start.
    pub arrival_h: f64,
    /// Application lifetime in hours.
    pub duration_h: f64,
    /// Index of the predefined service graph this request runs.
    pub graph_index: usize,
}

impl Request {
    /// The departure time, in hours.
    pub fn departure_h(&self) -> f64 {
        self.arrival_h + self.duration_h
    }
}

/// Workload generation parameters (defaults = the paper's Figure 5).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorkloadConfig {
    /// Total number of requests (paper: 5000).
    pub requests: usize,
    /// Horizon over which arrivals spread (paper: 1000 h).
    pub horizon_h: f64,
    /// Minimum application lifetime (paper: 5 min).
    pub min_duration_h: f64,
    /// Maximum application lifetime (paper: 1 h).
    pub max_duration_h: f64,
    /// Number of predefined graphs to draw from (paper: 5).
    pub graph_count: usize,
}

impl Default for WorkloadConfig {
    fn default() -> Self {
        WorkloadConfig {
            requests: 5000,
            horizon_h: 1000.0,
            min_duration_h: 5.0 / 60.0,
            max_duration_h: 1.0,
            graph_count: 5,
        }
    }
}

impl WorkloadConfig {
    /// An overload workload for throughput benchmarking: `requests`
    /// arrivals packed into a short `horizon_h` (lifetimes and graph
    /// selection keep the Figure 5 shape, over the fault harness's two
    /// templates). With arrivals vastly outnumbering what the space can
    /// carry, the admission path — not the schedule — is the
    /// bottleneck, which is what `repro -- scale` measures.
    pub fn overload(requests: usize, horizon_h: f64) -> Self {
        WorkloadConfig {
            requests,
            horizon_h,
            graph_count: 2,
            ..WorkloadConfig::default()
        }
    }

    /// Generates the request trace, sorted by arrival time.
    ///
    /// Arrivals are uniform over the horizon; lifetimes are exponential
    /// (mean = half the duration window above the minimum) truncated to
    /// `[min_duration_h, max_duration_h]`, the standard reading of
    /// "exponentially distributed from 5 minutes to 1 hours".
    pub fn generate(&self, rng: &mut StdRng) -> Vec<Request> {
        let mean = (self.max_duration_h - self.min_duration_h) / 2.0;
        let mut trace: Vec<Request> = (0..self.requests)
            .map(|_| {
                let u: f64 = rng.gen_range(f64::EPSILON..1.0);
                let exp_sample = -mean * u.ln();
                Request {
                    arrival_h: rng.gen_range(0.0..self.horizon_h),
                    duration_h: (self.min_duration_h + exp_sample).min(self.max_duration_h),
                    graph_index: rng.gen_range(0..self.graph_count),
                }
            })
            .collect();
        trace.sort_by(|a, b| {
            a.arrival_h
                .partial_cmp(&b.arrival_h)
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        trace
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn default_matches_paper_parameters() {
        let cfg = WorkloadConfig::default();
        assert_eq!(cfg.requests, 5000);
        assert_eq!(cfg.horizon_h, 1000.0);
        assert_eq!(cfg.graph_count, 5);
    }

    #[test]
    fn trace_is_sorted_and_in_bounds() {
        let cfg = WorkloadConfig::default();
        let trace = cfg.generate(&mut StdRng::seed_from_u64(3));
        assert_eq!(trace.len(), 5000);
        for pair in trace.windows(2) {
            assert!(pair[0].arrival_h <= pair[1].arrival_h);
        }
        for r in &trace {
            assert!(r.arrival_h >= 0.0 && r.arrival_h < 1000.0);
            assert!(r.duration_h >= cfg.min_duration_h - 1e-12);
            assert!(r.duration_h <= cfg.max_duration_h + 1e-12);
            assert!(r.graph_index < 5);
            assert!(r.departure_h() > r.arrival_h);
        }
    }

    #[test]
    fn lifetimes_look_exponential() {
        // More short lifetimes than long ones.
        let cfg = WorkloadConfig::default();
        let trace = cfg.generate(&mut StdRng::seed_from_u64(5));
        let short = trace.iter().filter(|r| r.duration_h < 0.5).count();
        let long = trace.iter().filter(|r| r.duration_h >= 0.5).count();
        assert!(short > long, "short {short} vs long {long}");
    }

    #[test]
    fn deterministic_per_seed() {
        let cfg = WorkloadConfig::default();
        let t1 = cfg.generate(&mut StdRng::seed_from_u64(9));
        let t2 = cfg.generate(&mut StdRng::seed_from_u64(9));
        assert_eq!(t1, t2);
    }

    #[test]
    fn all_graph_indices_used() {
        let cfg = WorkloadConfig::default();
        let trace = cfg.generate(&mut StdRng::seed_from_u64(1));
        for g in 0..5 {
            assert!(trace.iter().any(|r| r.graph_index == g));
        }
    }
}
