//! Property-based invariants for the deterministic simulation substrate:
//! the event queue under *interleaved* schedule/pop traffic, seed
//! determinism of every generator, and the structural guarantees of the
//! fault-schedule generator the runtime's injection harness relies on.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use ubiqos_sim::{EventQueue, FaultKind, FaultScheduleConfig, WorkloadConfig};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Interleaving pops with later schedules never reorders what is
    /// already due: each pop returns the minimum of the currently
    /// pending events, and every event comes out exactly once.
    #[test]
    fn event_queue_survives_interleaved_schedule_and_pop(
        ops in proptest::collection::vec((0.0f64..100.0, prop::bool::ANY), 1..80)
    ) {
        let mut q = EventQueue::new();
        let mut pending: Vec<(f64, usize)> = Vec::new();
        let mut seen: Vec<usize> = Vec::new();
        let mut scheduled = 0usize;
        for &(t, pop_now) in &ops {
            q.schedule(t, scheduled);
            pending.push((t, scheduled));
            scheduled += 1;
            if pop_now {
                let (pt, pi) = q.pop().expect("just scheduled");
                let min = pending
                    .iter()
                    .cloned()
                    .fold(f64::INFINITY, |m, (t, _)| m.min(t));
                prop_assert_eq!(pt, min, "pop returned a non-minimal time");
                let at = pending
                    .iter()
                    .position(|&(t, i)| t == pt && i == pi)
                    .expect("popped event was pending");
                pending.remove(at);
                seen.push(pi);
            }
        }
        while let Some((_, i)) = q.pop() {
            seen.push(i);
        }
        seen.sort_unstable();
        prop_assert_eq!(seen, (0..scheduled).collect::<Vec<_>>());
    }

    /// Two queues fed the same sequence drain identically — the event
    /// order is a pure function of the schedule calls (this is what
    /// makes the DES workloads replayable byte-for-byte).
    #[test]
    fn event_queue_order_is_deterministic(
        times in proptest::collection::vec(0.0f64..50.0, 1..60)
    ) {
        let mut a = EventQueue::new();
        let mut b = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            a.schedule(t, i);
            b.schedule(t, i);
        }
        while let Some(ea) = a.pop() {
            prop_assert_eq!(Some(ea), b.pop());
        }
        prop_assert!(b.pop().is_none());
    }

    /// The workload trace is a pure function of (config, seed): same
    /// seed same trace, and the trace arrives sorted.
    #[test]
    fn workload_trace_is_a_pure_function_of_the_seed(
        seed in 0u64..u64::MAX,
        requests in 1usize..80,
    ) {
        let cfg = WorkloadConfig {
            requests,
            horizon_h: 50.0,
            ..WorkloadConfig::default()
        };
        let a = cfg.generate(&mut StdRng::seed_from_u64(seed));
        let b = cfg.generate(&mut StdRng::seed_from_u64(seed));
        prop_assert_eq!(&a, &b);
        for pair in a.windows(2) {
            prop_assert!(pair[0].arrival_h <= pair[1].arrival_h);
        }
        for r in &a {
            prop_assert!(r.duration_h >= cfg.min_duration_h - 1e-12);
            prop_assert!(r.duration_h <= cfg.max_duration_h + 1e-12);
        }
    }

    /// Fault schedules are deterministic per seed, sorted, in bounds,
    /// and structurally sane: fluctuation factors within the configured
    /// floor, link endpoints ordered and distinct, and net crashes never
    /// exceeding `devices - 1` (someone always survives generation).
    #[test]
    fn fault_schedules_are_deterministic_and_structurally_sane(
        seed in 0u64..u64::MAX,
        devices in 2usize..8,
        events in 1usize..120,
        scope_max in 1usize..4,
    ) {
        let cfg = FaultScheduleConfig {
            seed,
            events,
            horizon_h: 100.0,
            devices,
            min_factor: 0.2,
            scope_max,
            ..FaultScheduleConfig::default()
        };
        let schedule = cfg.generate();
        prop_assert_eq!(&schedule, &cfg.generate());
        prop_assert_eq!(schedule.len(), events);
        // The generator's crash/recover pairing holds in *generation*
        // order; the emitted schedule is time-sorted, so only the totals
        // are order-independent facts here.
        let mut crashes = 0isize;
        for pair in schedule.windows(2) {
            prop_assert!(pair[0].at_h <= pair[1].at_h);
        }
        for f in &schedule {
            prop_assert!(f.at_h >= 0.0 && f.at_h < cfg.horizon_h);
            match f.kind {
                FaultKind::Crash { device } => {
                    prop_assert!(device < devices);
                    crashes += 1;
                }
                FaultKind::CrashScope { first, count } => {
                    prop_assert!(count >= 2 && count <= scope_max);
                    prop_assert!(first + count <= devices);
                    crashes += count as isize;
                }
                FaultKind::Recover { device } => {
                    prop_assert!(device < devices);
                    crashes -= 1;
                }
                FaultKind::Fluctuate { device, factor } => {
                    prop_assert!(device < devices);
                    prop_assert!(factor >= cfg.min_factor && factor <= 1.0);
                }
                FaultKind::DegradeLink { a, b, factor } => {
                    prop_assert!(a < b && b < devices);
                    prop_assert!(factor >= cfg.min_factor && factor <= 1.0);
                }
                FaultKind::SwitchDevice { to, .. } | FaultKind::MoveUser { to, .. } => {
                    prop_assert!(to < devices);
                }
                FaultKind::Partition { first, count } | FaultKind::Heal { first, count } => {
                    prop_assert!(count >= 1 && first + count <= devices);
                }
                FaultKind::JamHeartbeats { device, until_h } => {
                    prop_assert!(device < devices);
                    prop_assert!(until_h <= cfg.horizon_h);
                }
                FaultKind::ShardCrash { .. } | FaultKind::ShardRestart { .. } => {
                    prop_assert!(false, "device schedules never generate shard faults");
                }
            }
        }
        prop_assert!(crashes >= 0, "more recoveries than crashes");
        prop_assert!(crashes < devices as isize, "net crashes {crashes}");
    }
}
