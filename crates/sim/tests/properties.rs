//! Property-based tests for the simulation substrate.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use ubiqos_sim::{EventQueue, GraphGenConfig, WindowedRate, WorkloadConfig};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The event queue pops every scheduled event exactly once, in
    /// non-decreasing time order, with FIFO ties.
    #[test]
    fn event_queue_is_a_stable_priority_queue(
        times in proptest::collection::vec(0.0f64..100.0, 1..60)
    ) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.schedule(t, i);
        }
        prop_assert_eq!(q.len(), times.len());
        let mut popped = Vec::new();
        let mut last_time = f64::NEG_INFINITY;
        let mut last_seq_at_time: Option<usize> = None;
        while let Some((t, i)) = q.pop() {
            prop_assert!(t >= last_time);
            if t == last_time {
                prop_assert!(last_seq_at_time.unwrap() < i, "FIFO at equal times");
            }
            last_time = t;
            last_seq_at_time = Some(i);
            popped.push(i);
        }
        popped.sort_unstable();
        prop_assert_eq!(popped, (0..times.len()).collect::<Vec<_>>());
    }

    /// Windowed success rates always agree with a naive recomputation.
    #[test]
    fn windowed_rate_matches_naive(
        window in 1.0f64..100.0,
        samples in proptest::collection::vec((0.0f64..1000.0, prop::bool::ANY), 0..120),
    ) {
        let mut w = WindowedRate::new(window);
        for &(t, ok) in &samples {
            w.record(t, ok);
        }
        // Naive recompute.
        let series = w.series();
        for (i, &(end, rate)) in series.iter().enumerate() {
            let start = i as f64 * window;
            let in_window: Vec<bool> = samples
                .iter()
                .filter(|&&(t, _)| t >= start && t < start + window)
                .map(|&(_, ok)| ok)
                .collect();
            let expected = if in_window.is_empty() {
                0.0
            } else {
                in_window.iter().filter(|&&ok| ok).count() as f64 / in_window.len() as f64
            };
            prop_assert!((rate - expected).abs() < 1e-9, "window ending {end}");
        }
        let total_ok = samples.iter().filter(|&&(_, ok)| ok).count();
        let expected_overall = if samples.is_empty() {
            0.0
        } else {
            total_ok as f64 / samples.len() as f64
        };
        prop_assert!((w.overall() - expected_overall).abs() < 1e-9);
        prop_assert_eq!(w.total_attempts(), samples.len() as u64);
    }

    /// Workload generation respects its configuration for arbitrary
    /// parameters.
    #[test]
    fn workload_respects_arbitrary_configs(
        requests in 1usize..300,
        horizon in 1.0f64..2000.0,
        graphs in 1usize..9,
        seed in 0u64..1000,
    ) {
        let cfg = WorkloadConfig {
            requests,
            horizon_h: horizon,
            graph_count: graphs,
            ..WorkloadConfig::default()
        };
        let trace = cfg.generate(&mut StdRng::seed_from_u64(seed));
        prop_assert_eq!(trace.len(), requests);
        for r in &trace {
            prop_assert!(r.arrival_h >= 0.0 && r.arrival_h < horizon);
            prop_assert!(r.graph_index < graphs);
            prop_assert!(r.duration_h >= cfg.min_duration_h - 1e-12);
            prop_assert!(r.duration_h <= cfg.max_duration_h + 1e-12);
        }
        for pair in trace.windows(2) {
            prop_assert!(pair[0].arrival_h <= pair[1].arrival_h);
        }
    }

    /// Generated graphs always honor the node-count and degree caps.
    #[test]
    fn graphgen_respects_bounds(seed in 0u64..300, lo in 2usize..20, extra in 0usize..30) {
        let hi = lo + extra;
        let cfg = GraphGenConfig {
            nodes: lo..=hi,
            out_edges: 1..=4,
            memory: 0.5..=2.0,
            cpu: 0.5..=2.0,
            throughput: 0.01..=0.1,
        };
        let g = cfg.generate(&mut StdRng::seed_from_u64(seed));
        prop_assert!((lo..=hi).contains(&g.component_count()));
        for id in g.component_ids() {
            prop_assert!(g.successors(id).len() <= 4);
        }
        prop_assert!(ubiqos_graph::topo::topological_sort(&g).is_ok());
    }
}
