//! Mobile audio-on-demand with seamless device handoff — the paper's
//! Figure 3 events 1-3.
//!
//! A user starts CD-quality music on a desktop, roams to a PDA over
//! 802.11 (forcing an MPEG→WAV transcoder into the path and a state
//! handoff), then returns to another desktop. Run with
//! `cargo run --example audio_handoff`.

use ubiqos::prelude::DeviceId;
use ubiqos_runtime::apps;
use ubiqos_runtime::DomainServer;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let (env, links, props) = apps::audio_environment();
    let names: Vec<String> = env.devices().iter().map(|d| d.name().to_owned()).collect();
    let mut server = DomainServer::new(env, links, props);
    apps::register_audio_services(server.registry_mut());
    for d in 0..4 {
        for inst in ["audio-server@desktop1", "mpeg-player", "wav-player"] {
            server.repository_mut().preinstall(d, inst);
        }
    }

    let print_state = |server: &DomainServer, session, event: &str| {
        let s = server.session(session).expect("live session");
        println!("== {event}");
        for (id, c) in s.configuration.app.graph.components() {
            let device = s
                .configuration
                .cut
                .part_of(id)
                .map(|d| names[d].as_str())
                .unwrap_or("?");
            println!("   {:<22} on {device}", c.name());
        }
        for q in s.measured_qos() {
            println!("   measured QoS: {} @ {:.0} fps", q.sink, q.fps);
        }
        let (label, overhead) = s.overhead_log.last().expect("logged");
        println!("   overhead [{label}]: {overhead}");
        println!("   media position: {:.0}s\n", s.position_s);
    };

    // Event 1: start on desktop2.
    let session = server.start_session(
        "mobile audio-on-demand",
        apps::audio_on_demand_app(),
        apps::audio_user_qos(),
        DeviceId::from_index(1),
    )?;
    print_state(
        &server,
        session,
        "event 1: start on desktop2 (CD-quality request)",
    );

    // Event 2: user walks away with the PDA.
    server.play(60.0);
    let plan = server.switch_device(session, DeviceId::from_index(2))?;
    println!(
        "-- handoff to jornada: {:.0} ms, resuming at {:.0}s --\n",
        plan.handoff_ms,
        plan.resume_position_s()
    );
    print_state(&server, session, "event 2: switched to the PDA (wireless)");

    // Event 3: back at a desktop.
    server.play(60.0);
    let plan = server.switch_device(session, DeviceId::from_index(3))?;
    println!(
        "-- handoff to desktop3: {:.0} ms (faster than the wireless one) --\n",
        plan.handoff_ms
    );
    print_state(&server, session, "event 3: switched back to desktop3");

    Ok(())
}
