//! Capacity planning: which (re-)distribution policy should a smart space
//! run, and how robust is the answer?
//!
//! Sweeps the Figure 5 admission experiment across several seeds with
//! [`ubiqos_sim::run_fig5_multi`] and prints each policy's success-rate
//! envelope, then inspects one placement with the
//! [`ubiqos::distribution::PlacementReport`] to show *why* the heuristic
//! admits more: it leaves the thin links and the small device breathable.
//!
//! Run with `cargo run --release --example capacity_planning`.

use ubiqos::prelude::*;
use ubiqos_sim::{scenario, Fig5Config, GraphGenConfig, WorkloadConfig};

fn main() {
    let cfg = Fig5Config {
        workload: WorkloadConfig {
            requests: 500,
            horizon_h: 120.0,
            ..WorkloadConfig::default()
        },
        window_h: 30.0,
        ..Fig5Config::default()
    };
    println!(
        "policy robustness across 3 seeds ({} requests each):\n",
        cfg.workload.requests
    );
    let summaries = ubiqos_sim::run_fig5_multi(&cfg, &[11, 23, 37]);
    println!(
        "{:<14} | {:>6} | {:>6} | {:>6}",
        "policy", "mean", "min", "max"
    );
    for s in &summaries {
        println!(
            "{:<14} | {:>5.1}% | {:>5.1}% | {:>5.1}%",
            s.policy,
            s.mean * 100.0,
            s.min * 100.0,
            s.max * 100.0
        );
    }

    // Why does the heuristic win? Place one mid-sized app with each
    // algorithm on the idle trio and compare the footprints.
    let env = scenario::fig5_environment();
    let gen = GraphGenConfig {
        nodes: 75..=75,
        ..GraphGenConfig::fig5()
    };
    let graph = {
        use rand::SeedableRng;
        gen.generate(&mut rand::rngs::StdRng::seed_from_u64(23))
    };
    let weights = Weights::default();
    let problem = OsdProblem::new(&graph, &env, &weights);
    println!("\none 75-component application on the idle desktop/laptop/PDA trio:\n");
    let mut algorithms: Vec<Box<dyn ServiceDistributor>> = vec![
        Box::new(GreedyHeuristic::paper()),
        Box::new(RandomDistributor::seeded(23)),
    ];
    for alg in algorithms.iter_mut() {
        match alg.distribute(&problem) {
            Ok(cut) => {
                let report = PlacementReport::new(&problem, &cut);
                println!("[{}]\n{report}", alg.name());
            }
            Err(e) => println!("[{}] failed: {e}\n", alg.name()),
        }
    }
    println!(
        "the heuristic's clustered placement crosses fewer machine boundaries, so the\n\
         shared 5 Mbps links keep headroom for the next application — which is exactly\n\
         where its Figure 5 advantage comes from."
    );
}
