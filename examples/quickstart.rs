//! Quickstart: compose and place a tiny streaming application.
//!
//! Run with `cargo run --example quickstart`.

use ubiqos::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Describe the environment: a desktop and a PDA joined by a
    //    10 Mbps link, with the availability vectors of the paper's
    //    Table 1 setup.
    let env = Environment::builder()
        .device(Device::new(
            "desktop",
            ResourceVector::mem_cpu(256.0, 300.0),
        ))
        .device(
            Device::new("pda", ResourceVector::mem_cpu(32.0, 100.0)).with_class(DeviceClass::Pda),
        )
        .default_bandwidth_mbps(10.0)
        .build();

    // 2. Register the services the smart space currently offers.
    let mut registry = ServiceRegistry::new();
    registry.register(ServiceDescriptor::new(
        "music-server@desktop",
        "audio-server",
        ServiceComponent::builder("audio-server")
            .role(ComponentRole::Source)
            .qos_out(
                QosVector::new()
                    .with(QosDimension::Format, QosValue::token("MPEG"))
                    .with(QosDimension::FrameRate, QosValue::exact(40.0)),
            )
            .capability(QosDimension::FrameRate, QosValue::range(5.0, 40.0))
            .resources(ResourceVector::mem_cpu(64.0, 60.0))
            .build(),
    ));
    registry.register(ServiceDescriptor::new(
        "wav-player@pda",
        "audio-player",
        ServiceComponent::builder("audio-player")
            .role(ComponentRole::Sink)
            .qos_in(
                QosVector::new()
                    .with(QosDimension::Format, QosValue::token("WAV"))
                    .with(QosDimension::FrameRate, QosValue::range(10.0, 40.0)),
            )
            .resources(ResourceVector::mem_cpu(6.0, 12.0))
            .build(),
    ));

    // 3. Describe the application abstractly: a server streaming to a
    //    player that must run on the user's portal (the PDA).
    let mut app = AbstractServiceGraph::new();
    let server = app.add_spec(AbstractComponentSpec::new("audio-server"));
    let player =
        app.add_spec(AbstractComponentSpec::new("audio-player").with_pin(PinHint::ClientDevice));
    app.add_edge(server, player, 1.4)?;

    // 4. Configure: the composition tier discovers instances and inserts
    //    the MPEG→WAV transcoder the player needs; the distribution tier
    //    places the result.
    let mut configurator = ServiceConfigurator::new(&registry);
    let configuration = configurator.configure(&ConfigureRequest {
        abstract_graph: &app,
        user_qos: QosVector::new().with(QosDimension::FrameRate, QosValue::exact(40.0)),
        client_device: DeviceId::from_index(1),
        client_props: DeviceProperties::unconstrained(),
        domain: None,
        env: &env,
    })?;

    println!(
        "composed {} components:",
        configuration.app.graph.component_count()
    );
    for (id, component) in configuration.app.graph.components() {
        let device = configuration
            .cut
            .part_of(id)
            .and_then(|d| env.device(d))
            .map_or("?", |d| d.name());
        println!("  {component}  ->  {device}");
    }
    for correction in &configuration.app.report.corrections {
        println!("correction: {correction}");
    }
    println!("cost aggregation: {:.4}", configuration.cost);
    println!(
        "\nDOT rendering:\n{}",
        ubiqos::graph::dot::to_dot_with_cut(&configuration.app.graph, &configuration.cut,)
    );
    Ok(())
}
