//! Smart-space admission simulation — a compact version of the paper's
//! Figure 5 experiment: fixed vs random vs heuristic (re-)distribution
//! over a stream of application requests on a desktop + laptop + PDA
//! trio.
//!
//! Run with `cargo run --release --example smart_space_sim`. (The full
//! 5000-request run lives in the bench harness; this example uses a
//! shorter horizon so it finishes in seconds even unoptimized.)

use ubiqos_sim::{Fig5Config, GraphGenConfig, Policy, WorkloadConfig};

fn main() {
    let cfg = Fig5Config {
        seed: 0x1cdc_2002,
        workload: WorkloadConfig {
            requests: 600,
            horizon_h: 200.0,
            ..WorkloadConfig::default()
        },
        gen: GraphGenConfig::fig5(),
        window_h: 25.0,
        random_attempts: 16,
    };
    println!(
        "simulating {} requests over {} hours on the desktop/laptop/PDA trio…\n",
        cfg.workload.requests, cfg.workload.horizon_h
    );
    let outcome = ubiqos_sim::scenario::run_fig5(&cfg);

    println!("{}", outcome.render());
    for policy in [
        Policy::Fixed,
        Policy::FixedPlanned,
        Policy::Random,
        Policy::Heuristic,
    ] {
        let c = outcome.curve(policy);
        println!(
            "overall success rate [{:>9}]: {:.1}%",
            c.policy,
            c.overall * 100.0
        );
    }
    let h = outcome.curve(Policy::Heuristic).overall;
    let r = outcome.curve(Policy::Random).overall;
    let f = outcome.curve(Policy::Fixed).overall;
    println!(
        "\nshape check: heuristic ({:.2}) > random ({:.2}) > fixed ({:.2}) — {}",
        h,
        r,
        f,
        if h >= r && r >= f {
            "matches Figure 5"
        } else {
            "unexpected ordering!"
        }
    );
}
