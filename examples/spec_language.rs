//! Describe an application in the ASDL specification language, then
//! configure and inspect its placement.
//!
//! The paper assumes developers specify applications "at a high level of
//! abstraction" in a specification language; this example writes the
//! paper's audio-on-demand app as text, parses it, composes it against a
//! smart space, and prints the placement report.
//!
//! Run with `cargo run --example spec_language`.

use ubiqos::prelude::*;
use ubiqos_graph::spec;

const APP: &str = r#"
# mobile audio-on-demand, described abstractly
service audio-server {
    pin device 0              # the content lives on desktop1
    require format = MPEG
}
service equalizer {
    optional                  # enhances the app when available
}
service audio-player {
    pin client
    require format = MPEG
    require frame-rate in [10, 40]
}
edge audio-server -> equalizer @ 0.35
edge equalizer -> audio-player @ 0.35
"#;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let app = spec::parse(APP)?;
    println!(
        "parsed {} services and {} streams; canonical form:\n\n{}",
        app.spec_count(),
        app.edge_count(),
        spec::render(&app)
    );

    // A smart space with a desktop and a PDA, offering an MPEG server and
    // a WAV-only player (no equalizer anywhere: it is dropped).
    let env = Environment::builder()
        .device(Device::new(
            "desktop1",
            ResourceVector::mem_cpu(256.0, 300.0),
        ))
        .device(
            Device::new("pda", ResourceVector::mem_cpu(32.0, 50.0)).with_class(DeviceClass::Pda),
        )
        .default_bandwidth_mbps(4.0)
        .build();
    let mut registry = ServiceRegistry::new();
    registry.register(ServiceDescriptor::new(
        "server@desktop1",
        "audio-server",
        ServiceComponent::builder("audio-server")
            .role(ComponentRole::Source)
            .qos_out(
                QosVector::new()
                    .with(QosDimension::Format, QosValue::token("MPEG"))
                    .with(QosDimension::FrameRate, QosValue::exact(40.0)),
            )
            .capability(QosDimension::FrameRate, QosValue::range(5.0, 40.0))
            .resources(ResourceVector::mem_cpu(64.0, 60.0))
            .build(),
    ));
    registry.register(ServiceDescriptor::new(
        "wav-player@pda",
        "audio-player",
        ServiceComponent::builder("audio-player")
            .role(ComponentRole::Sink)
            .qos_in(
                QosVector::new()
                    .with(QosDimension::Format, QosValue::token("WAV"))
                    .with(QosDimension::FrameRate, QosValue::range(10.0, 40.0)),
            )
            .resources(ResourceVector::mem_cpu(6.0, 12.0))
            .build(),
    ));

    let mut configurator = ServiceConfigurator::new(&registry);
    let configuration = configurator.configure(&ConfigureRequest {
        abstract_graph: &app,
        user_qos: QosVector::new().with(QosDimension::FrameRate, QosValue::exact(40.0)),
        client_device: DeviceId::from_index(1),
        client_props: DeviceProperties::unconstrained(),
        domain: None,
        env: &env,
    })?;

    println!("corrections applied by the composer:");
    for c in &configuration.app.report.corrections {
        println!("  - {c}");
    }

    let weights = Weights::default();
    let problem = OsdProblem::new(&configuration.app.graph, &env, &weights);
    let report = ubiqos::distribution::PlacementReport::new(&problem, &configuration.cut);
    println!("\n{report}");
    println!(
        "peak resource utilization: {:.0}%",
        report.peak_utilization() * 100.0
    );
    Ok(())
}
