//! Video conferencing on three workstations — the paper's Figure 3
//! event 4, exercising a *non-linear* service graph (two recorders, an AV
//! gateway, a lip-synchronizer, and two players) with on-demand component
//! downloading.
//!
//! Run with `cargo run --example video_conference`.

use ubiqos::prelude::DeviceId;
use ubiqos_runtime::apps;
use ubiqos_runtime::DomainServer;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let (env, links, props) = apps::conference_environment();
    let names: Vec<String> = env.devices().iter().map(|d| d.name().to_owned()).collect();
    let mut server = DomainServer::new(env, links, props);
    apps::register_conference_services(server.registry_mut());
    // Nothing pre-installed: every component is fetched from the
    // repository, which dominates the configuration overhead.

    let session = server.start_session(
        "video conferencing",
        apps::video_conference_app(),
        apps::conference_user_qos(),
        DeviceId::from_index(2), // the user sits at ws3
    )?;

    let s = server.session(session).expect("live session");
    println!("video conferencing configured:");
    for (id, c) in s.configuration.app.graph.components() {
        let device = s
            .configuration
            .cut
            .part_of(id)
            .map(|d| names[d].as_str())
            .unwrap_or("?");
        println!("  {:<26} on {device}", c.name());
    }
    println!("\ncut edges (streams crossing machines):");
    for e in s.configuration.cut.cut_edges(&s.configuration.app.graph) {
        let from = s
            .configuration
            .app
            .graph
            .component(e.from)?
            .name()
            .to_owned();
        let to = s.configuration.app.graph.component(e.to)?.name().to_owned();
        println!("  {from} -> {to} @ {:.1} Mbps", e.throughput);
    }
    println!("\nmeasured QoS:");
    for q in s.measured_qos() {
        println!("  {} @ {:.0} fps", q.sink, q.fps);
    }
    let (_, overhead) = s.overhead_log.last().expect("logged");
    println!("\nconfiguration overhead: {overhead}");
    let (who, ms) = overhead.dominant();
    println!("dominant cost: {who} ({ms:.0} ms) — dynamic downloading, as in the paper");
    Ok(())
}
