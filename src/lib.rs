//! Root crate of the `ubiqos` workspace.
//!
//! This package exists so the workspace-level integration tests in
//! `tests/` and the runnable walkthroughs in `examples/` are part of the
//! build; the actual library code lives in the `crates/` members.
