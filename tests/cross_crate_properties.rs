//! Cross-crate property tests: invariants that must hold for *any*
//! randomly generated problem instance.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use ubiqos::prelude::*;
use ubiqos_sim::GraphGenConfig;

fn random_graph(seed: u64, max_nodes: usize) -> ServiceGraph {
    let cfg = GraphGenConfig {
        nodes: 2..=max_nodes,
        out_edges: 1..=4,
        memory: 1.0..=20.0,
        cpu: 1.0..=25.0,
        throughput: 0.05..=1.5,
    };
    cfg.generate(&mut StdRng::seed_from_u64(seed))
}

fn pc_pda_env() -> Environment {
    Environment::builder()
        .device(Device::new("pc", ResourceVector::mem_cpu(256.0, 300.0)))
        .device(Device::new("pda", ResourceVector::mem_cpu(32.0, 100.0)))
        .default_bandwidth_mbps(10.0)
        .build()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Whenever the heuristic returns a cut, that cut satisfies
    /// Definition 3.4 in full.
    #[test]
    fn heuristic_cuts_always_fit(seed in 0u64..500) {
        let graph = random_graph(seed, 14);
        let env = pc_pda_env();
        let weights = Weights::default();
        let problem = OsdProblem::new(&graph, &env, &weights);
        if let Ok(cut) = GreedyHeuristic::paper().distribute(&problem) {
            prop_assert!(problem.fits(&cut));
            prop_assert!(problem.cost(&cut).is_finite());
            prop_assert_eq!(cut.len(), graph.component_count());
        }
    }

    /// The exhaustive optimum lower-bounds every other algorithm's cost,
    /// and whenever any algorithm finds a cut the optimum exists too.
    #[test]
    fn optimal_is_a_lower_bound(seed in 0u64..200) {
        let graph = random_graph(seed, 10);
        let env = pc_pda_env();
        let weights = Weights::default();
        let problem = OsdProblem::new(&graph, &env, &weights);
        let optimal = ExhaustiveOptimal::new().distribute(&problem);
        for cut in [
            GreedyHeuristic::paper().distribute(&problem),
            GreedyHeuristic::without_device_resort().distribute(&problem),
            GreedyHeuristic::without_cluster_adjacency().distribute(&problem),
            RandomDistributor::seeded(seed).distribute(&problem),
        ].into_iter().flatten() {
            let opt = optimal.as_ref().expect("a feasible cut exists, optimal must find one");
            prop_assert!(problem.cost(opt) <= problem.cost(&cut) + 1e-9);
        }
    }

    /// Charging a cut and refunding it restores the environment exactly.
    #[test]
    fn charge_refund_roundtrip(seed in 0u64..300) {
        let graph = random_graph(seed, 12);
        let env = pc_pda_env();
        let weights = Weights::default();
        let problem = OsdProblem::new(&graph, &env, &weights);
        if let Ok(cut) = GreedyHeuristic::paper().distribute(&problem) {
            let mut working = env.clone();
            working.charge_cut(&graph, &cut).unwrap();
            working.refund_cut(&graph, &cut).unwrap();
            for (a, b) in working.devices().iter().zip(env.devices()) {
                for (x, y) in a.availability().amounts().iter().zip(b.availability().amounts()) {
                    prop_assert!((x - y).abs() < 1e-6);
                }
            }
        }
    }

    /// Serialization round-trips preserve graphs and cuts.
    #[test]
    fn serde_roundtrip(seed in 0u64..100) {
        let graph = random_graph(seed, 10);
        let json = serde_json::to_string(&graph).unwrap();
        let back: ServiceGraph = serde_json::from_str(&json).unwrap();
        prop_assert_eq!(&graph, &back);

        let env = pc_pda_env();
        let weights = Weights::default();
        let problem = OsdProblem::new(&graph, &env, &weights);
        if let Ok(cut) = GreedyHeuristic::paper().distribute(&problem) {
            let json = serde_json::to_string(&cut).unwrap();
            let back: Cut = serde_json::from_str(&json).unwrap();
            prop_assert_eq!(cut, back);
        }
    }

    /// OC is idempotent: a second pass over an already-corrected graph
    /// changes nothing.
    #[test]
    fn oc_is_idempotent(fps in 10.0f64..60.0, lo in 5.0f64..20.0, span in 1.0f64..30.0) {
        use ubiqos::composition::{oc, CorrectionPolicy, TranscoderCatalog};
        let mut g = ServiceGraph::new();
        let a = g.add_component(
            ServiceComponent::builder("src")
                .qos_out(
                    QosVector::new()
                        .with(QosDimension::Format, QosValue::token("MPEG"))
                        .with(QosDimension::FrameRate, QosValue::exact(fps)),
                )
                .capability(QosDimension::FrameRate, QosValue::range(1.0, 100.0))
                .build(),
        );
        let b = g.add_component(
            ServiceComponent::builder("dst")
                .qos_in(
                    QosVector::new()
                        .with(QosDimension::Format, QosValue::token("WAV"))
                        .with(QosDimension::FrameRate, QosValue::range(lo, lo + span)),
                )
                .build(),
        );
        g.add_edge(a, b, 1.0).unwrap();
        let catalog = TranscoderCatalog::standard();
        oc::ordered_coordination(&mut g, &catalog, CorrectionPolicy::all()).unwrap();
        prop_assert!(oc::is_consistent(&g));
        let snapshot = g.clone();
        let report = oc::ordered_coordination(&mut g, &catalog, CorrectionPolicy::all()).unwrap();
        prop_assert!(report.was_consistent());
        prop_assert_eq!(snapshot, g);
    }
}
