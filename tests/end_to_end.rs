//! End-to-end integration: abstract description → discovery → OC
//! correction → placement, across all crates.

use ubiqos::prelude::*;

fn smart_space() -> (ServiceRegistry, Environment) {
    let mut registry = ServiceRegistry::new();
    registry.register(ServiceDescriptor::new(
        "server@ws",
        "media-server",
        ServiceComponent::builder("media-server")
            .role(ComponentRole::Source)
            .qos_out(
                QosVector::new()
                    .with(QosDimension::Format, QosValue::token("MPEG"))
                    .with(QosDimension::FrameRate, QosValue::exact(30.0)),
            )
            .capability(QosDimension::FrameRate, QosValue::range(5.0, 30.0))
            .resources(ResourceVector::mem_cpu(80.0, 70.0))
            .build(),
    ));
    registry.register(ServiceDescriptor::new(
        "filter@ws",
        "noise-filter",
        ServiceComponent::builder("noise-filter")
            .qos_in(QosVector::new().with(QosDimension::Format, QosValue::token("MPEG")))
            .qos_out(
                QosVector::new()
                    .with(QosDimension::Format, QosValue::token("MPEG"))
                    .with(QosDimension::FrameRate, QosValue::exact(30.0)),
            )
            .capability(QosDimension::FrameRate, QosValue::range(1.0, 60.0))
            .passthrough(QosDimension::FrameRate)
            .resources(ResourceVector::mem_cpu(24.0, 30.0))
            .build(),
    ));
    registry.register(ServiceDescriptor::new(
        "player@pda",
        "media-player",
        ServiceComponent::builder("media-player")
            .role(ComponentRole::Sink)
            .qos_in(
                QosVector::new()
                    .with(QosDimension::Format, QosValue::token("WAV"))
                    .with(QosDimension::FrameRate, QosValue::range(10.0, 24.0)),
            )
            .resources(ResourceVector::mem_cpu(8.0, 15.0))
            .build(),
    ));
    let env = Environment::builder()
        .device(Device::new(
            "workstation",
            ResourceVector::mem_cpu(512.0, 400.0),
        ))
        .device(
            Device::new("pda", ResourceVector::mem_cpu(32.0, 50.0)).with_class(DeviceClass::Pda),
        )
        .default_bandwidth_mbps(8.0)
        .build();
    (registry, env)
}

fn media_app() -> AbstractServiceGraph {
    let mut app = AbstractServiceGraph::new();
    let server = app.add_spec(AbstractComponentSpec::new("media-server"));
    let filter = app.add_spec(AbstractComponentSpec::new("noise-filter").optional());
    let player =
        app.add_spec(AbstractComponentSpec::new("media-player").with_pin(PinHint::ClientDevice));
    app.add_edge(server, filter, 1.5).unwrap();
    app.add_edge(filter, player, 1.5).unwrap();
    app
}

fn configure(registry: &ServiceRegistry, env: &Environment) -> Configuration {
    let mut configurator = ServiceConfigurator::new(registry);
    configurator
        .configure(&ConfigureRequest {
            abstract_graph: &media_app(),
            user_qos: QosVector::new(),
            client_device: DeviceId::from_index(1),
            client_props: DeviceProperties::unconstrained(),
            domain: None,
            env,
        })
        .expect("configuration succeeds")
}

#[test]
fn full_pipeline_produces_consistent_fitting_configuration() {
    let (registry, env) = smart_space();
    let config = configure(&registry, &env);

    // Composition: server + filter + player + inserted MPEG2WAV
    // transcoder (player only takes WAV).
    assert_eq!(config.app.graph.component_count(), 4);
    assert!(ubiqos::composition::oc::is_consistent(&config.app.graph));

    // The frame-rate constraint [10, 24] cascaded all the way upstream:
    // the server now emits 24 fps.
    let server = config
        .app
        .instances
        .iter()
        .find(|i| i.instance_id == "server@ws")
        .unwrap();
    assert_eq!(
        config
            .app
            .graph
            .component(server.component)
            .unwrap()
            .qos_out()
            .get(&QosDimension::FrameRate),
        Some(&QosValue::exact(24.0))
    );

    // Distribution: fits, respects the client pin, finite cost.
    let weights = Weights::default();
    let problem = OsdProblem::new(&config.app.graph, &env, &weights);
    assert!(problem.fits(&config.cut));
    let player = config
        .app
        .instances
        .iter()
        .find(|i| i.instance_id == "player@pda")
        .unwrap();
    assert_eq!(config.cut.part_of(player.component), Some(1));
    assert!(config.cost.is_finite() && config.cost > 0.0);
}

#[test]
fn heuristic_cost_close_to_optimal_on_this_instance() {
    let (registry, env) = smart_space();
    let config = configure(&registry, &env);
    let weights = Weights::default();
    let problem = OsdProblem::new(&config.app.graph, &env, &weights);
    let optimal = ExhaustiveOptimal::new().distribute(&problem).unwrap();
    let opt_cost = problem.cost(&optimal);
    assert!(config.cost >= opt_cost - 1e-9, "optimal is a lower bound");
    assert!(
        config.cost <= opt_cost * 1.5 + 1e-9,
        "heuristic ({}) within 1.5x of optimal ({})",
        config.cost,
        opt_cost
    );
}

#[test]
fn environment_change_yields_different_feasible_placement() {
    let (registry, mut env) = smart_space();
    let before = configure(&registry, &env);

    // The workstation loses half of its CPU (other load arrived); the
    // server + filter + transcoder no longer all fit beside each other.
    env.device_mut(0)
        .unwrap()
        .set_availability(ResourceVector::mem_cpu(512.0, 120.0));
    let after = configure(&registry, &env);

    let weights = Weights::default();
    let p = OsdProblem::new(&after.app.graph, &env, &weights);
    assert!(p.fits(&after.cut));
    // The player stays pinned to the PDA in both.
    for config in [&before, &after] {
        let player = config
            .app
            .instances
            .iter()
            .find(|i| i.instance_id == "player@pda")
            .unwrap();
        assert_eq!(config.cut.part_of(player.component), Some(1));
    }
}

#[test]
fn missing_optional_filter_still_configures() {
    let (mut registry, env) = smart_space();
    registry.unregister("filter@ws").unwrap();
    let config = configure(&registry, &env);
    // server + player + transcoder, filter dropped.
    assert_eq!(config.app.graph.component_count(), 3);
    assert!(config
        .app
        .report
        .corrections
        .iter()
        .any(|c| c.to_string().contains("noise-filter")));
    assert!(ubiqos::composition::oc::is_consistent(&config.app.graph));
}

#[test]
fn missing_mandatory_server_fails_cleanly() {
    let (mut registry, env) = smart_space();
    registry.unregister("server@ws").unwrap();
    let mut configurator = ServiceConfigurator::new(&registry);
    let err = configurator
        .configure(&ConfigureRequest {
            abstract_graph: &media_app(),
            user_qos: QosVector::new(),
            client_device: DeviceId::from_index(1),
            client_props: DeviceProperties::unconstrained(),
            domain: None,
            env: &env,
        })
        .unwrap_err();
    assert!(err.to_string().contains("media-server"));
}

#[test]
fn dot_export_reflects_final_configuration() {
    let (registry, env) = smart_space();
    let config = configure(&registry, &env);
    let dot = ubiqos::graph::dot::to_dot_with_cut(&config.app.graph, &config.cut);
    assert!(dot.contains("cluster_0"));
    assert!(dot.contains("cluster_1"));
    assert!(dot.contains("MPEG2WAV"));
}
