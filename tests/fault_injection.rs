//! Workspace-level soak test of the deterministic fault-injection
//! harness (`ubiqos_runtime::faults`).
//!
//! `run_fault_campaign` aborts with an [`InvariantViolation`] the moment
//! any model invariant breaks, so "the campaign completed" *is* the
//! assertion that capacity bounds, charge conservation, Equation 1
//! consistency, pin respect, and witnessed drops all held after every
//! single event. This file drives that checker across many random
//! schedules and pins the determinism guarantee.

use proptest::prelude::*;
use std::sync::Mutex;
use ubiqos_runtime::{run_fault_campaign, FaultCampaignConfig};

/// Serialises the tests that mutate the process-global `UBIQOS_THREADS`
/// variable; every other assertion in this file is thread-count
/// independent by design (that is the property under test).
static ENV_LOCK: Mutex<()> = Mutex::new(());

/// ≥ 50 random fault schedules, varying space size and fault density,
/// every invariant checked after every event. The nightly workflow
/// raises the schedule count via `UBIQOS_SOAK_SCHEDULES` (200).
#[test]
fn soak_fifty_random_schedules_keep_all_invariants() {
    let schedules: u64 = std::env::var("UBIQOS_SOAK_SCHEDULES")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(50)
        .max(50);
    let mut checks = 0u64;
    for seed in 0..schedules {
        let cfg = FaultCampaignConfig {
            seed: 0xfa01_7000 + seed,
            devices: 3 + (seed % 4) as usize,
            requests: 40,
            horizon_h: 24.0,
            faults: 16 + (seed % 3) as usize * 8,
            min_factor: 0.25,
            // Exercise correlated crashes and flapping links on a
            // rotating subset of the schedules.
            scope_max: 1 + (seed % 3) as usize,
            flapping_links: (seed % 2) as usize,
            ..FaultCampaignConfig::default()
        };
        let outcome = run_fault_campaign(&cfg)
            .unwrap_or_else(|v| panic!("seed {seed}: invariant violated: {v}"));
        let r = &outcome.report;
        assert!(r.session_fates_balance(), "seed {seed}: fates drift: {r}");
        assert_eq!(
            r.invariant_checks, r.events,
            "seed {seed}: every event must be followed by a sweep"
        );
        assert_eq!(r.arrivals, 40, "seed {seed}: whole workload processed");
        checks += u64::from(r.invariant_checks);
    }
    assert!(
        checks >= schedules * 96,
        "soak actually swept ({checks} checks)"
    );
}

/// Same seed, same config → byte-identical event log and equal report.
#[test]
fn same_seed_reproduces_byte_identical_trace() {
    let cfg = FaultCampaignConfig::default();
    let a = run_fault_campaign(&cfg).expect("campaign holds its invariants");
    let b = run_fault_campaign(&cfg).expect("campaign holds its invariants");
    assert_eq!(a.log.render(), b.log.render());
    assert_eq!(a.log.render().as_bytes(), b.log.render().as_bytes());
    assert_eq!(a.report, b.report);
}

/// The default campaign's digest is pinned. Because the CI matrix runs
/// this same test under `UBIQOS_THREADS=1` and `UBIQOS_THREADS=8`, both
/// jobs agreeing with this constant proves the trace is independent of
/// the thread setting (and of debug vs release codegen).
#[test]
fn default_campaign_digest_is_pinned_across_thread_settings() {
    let outcome =
        run_fault_campaign(&FaultCampaignConfig::default()).expect("campaign holds its invariants");
    assert_eq!(
        outcome.report.log_digest,
        0x2385_725a_4716_6d1b,
        "trace changed: the fault model or its inputs were modified \
         (update the pinned digest only if that was intentional); \
         UBIQOS_THREADS={:?}",
        std::env::var("UBIQOS_THREADS").ok()
    );
    assert_eq!(outcome.report.log_digest, outcome.log.digest());
}

/// Serial vs 8-thread runs of a recovery-heavy campaign produce
/// byte-identical logs (and therefore identical staged-recovery
/// decisions: who degraded, who parked, who was re-admitted).
///
/// Env mutation is process-global, so every test that sets
/// `UBIQOS_THREADS` holds [`ENV_LOCK`] for the duration.
#[test]
fn recovery_log_is_identical_across_thread_settings() {
    let cfg = FaultCampaignConfig {
        devices: 4,
        requests: 200,
        faults: 60,
        scope_max: 2,
        flapping_links: 1,
        ..FaultCampaignConfig::default()
    };
    let _env = ENV_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    std::env::set_var("UBIQOS_THREADS", "1");
    let serial = run_fault_campaign(&cfg).expect("serial campaign holds");
    std::env::set_var("UBIQOS_THREADS", "8");
    let threaded = run_fault_campaign(&cfg).expect("threaded campaign holds");
    std::env::remove_var("UBIQOS_THREADS");
    assert_eq!(serial.log.render(), threaded.log.render());
    assert_eq!(serial.report, threaded.report);
    assert!(
        serial.report.parked + serial.report.degraded > 0,
        "the comparison must cover actual staged-recovery decisions: {}",
        serial.report
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Imperfect-detection campaigns are thread-count independent across
    /// arbitrary seeds and heartbeat-loss rates: the lease-expiry
    /// (suspicion) order, the full event log, and the report — including
    /// its digest and every detector counter — agree byte-for-byte
    /// between `UBIQOS_THREADS=1` and `UBIQOS_THREADS=8`.
    #[test]
    fn detector_trace_is_thread_count_independent(
        seed in 0u64..u64::MAX,
        loss in 0.0f64..0.6,
    ) {
        let cfg = FaultCampaignConfig {
            seed,
            devices: 4,
            requests: 60,
            horizon_h: 24.0,
            faults: 24,
            scope_max: 2,
            detection_grace_h: 0.5,
            heartbeat_period_h: 0.25,
            partitions: 2,
            partition_max: 2,
            heartbeat_loss: loss,
            ..FaultCampaignConfig::default()
        };
        let (serial, threaded) = {
            let _env = ENV_LOCK.lock().unwrap_or_else(|e| e.into_inner());
            std::env::set_var("UBIQOS_THREADS", "1");
            let serial = run_fault_campaign(&cfg)
                .unwrap_or_else(|v| panic!("seed {seed} loss {loss}: serial: {v}"));
            std::env::set_var("UBIQOS_THREADS", "8");
            let threaded = run_fault_campaign(&cfg)
                .unwrap_or_else(|v| panic!("seed {seed} loss {loss}: threaded: {v}"));
            std::env::remove_var("UBIQOS_THREADS");
            (serial, threaded)
        };
        // Lease expiries drive suspicion: their order is the detector's
        // observable schedule, asserted on its own before the full log.
        let suspicion_order = |log: &str| -> Vec<String> {
            log.lines()
                .filter(|l| l.contains("detect  suspect"))
                .map(str::to_owned)
                .collect()
        };
        prop_assert_eq!(
            suspicion_order(&serial.log.render()),
            suspicion_order(&threaded.log.render())
        );
        prop_assert_eq!(serial.log.render(), threaded.log.render());
        prop_assert_eq!(&serial.report, &threaded.report);
    }
}

/// Sessions are only dropped with a recorded `ConfigureError` witness —
/// the harness asserts that internally — and denials only happen while
/// admission genuinely fails. Spot-check the aggregate story: a campaign
/// with no faults at all admits strictly more than the default one.
#[test]
fn faults_are_what_costs_sessions() {
    let calm = FaultCampaignConfig {
        faults: 0,
        ..FaultCampaignConfig::default()
    };
    let stormy = FaultCampaignConfig::default();
    let calm_out = run_fault_campaign(&calm).expect("calm campaign holds");
    let storm_out = run_fault_campaign(&stormy).expect("stormy campaign holds");
    assert_eq!(calm_out.report.dropped, 0, "nothing drops without faults");
    assert_eq!(calm_out.report.crashes, 0);
    assert!(
        storm_out.report.crashes > 0,
        "default schedule includes crashes"
    );
    assert!(
        calm_out.report.admitted >= storm_out.report.admitted,
        "faults cannot increase admissions: calm {} vs stormy {}",
        calm_out.report.admitted,
        storm_out.report.admitted
    );
}
