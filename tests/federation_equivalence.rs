//! Cross-shard equivalence tests for the federated runtime
//! (`ubiqos_runtime::federation`).
//!
//! Three layers of evidence that sharding never changes behaviour, only
//! who does the work:
//!
//! * **Serial reference** — at one shard the federated engine must be
//!   *byte-identical* to the serial DES loop (`run_fault_campaign_with`)
//!   on the identical merged schedule: same event log bytes, same
//!   report, under perfect and imperfect detection alike.
//! * **Digest pins** — at 2, 4, and 8 shards the per-shard event-log
//!   digests are pinned. The split is part of the observable contract:
//!   any change to the federation protocol, the ordering rule, or the
//!   handoff state machine shows up here first.
//! * **Randomized interleavings** — a hand-rolled seeded loop (no
//!   external fuzzing deps) sweeps shard counts, fault budgets,
//!   mobility waves, detector settings, and shard-partition windows,
//!   asserting on every run: the engine's internal invariant sweeps
//!   pass (exact resource refunds included — a violated refund fails
//!   the run itself), every shard's session-fate ledger balances with
//!   handoffs counted, every handoff resolves, and reruns are
//!   digest-identical.

use ubiqos_runtime::{
    run_fault_campaign_with, run_federation_campaign_with, FaultCampaignConfig, FederationConfig,
    FederationOutcome, ShardPartition,
};
use ubiqos_sim::MobilityWaveConfig;

/// The pinned campaign: 16 devices, a light 64-request/12-hour workload
/// (so admissions mostly succeed and handoffs genuinely commit), 16
/// infrastructure faults, and two mobility waves dragging sessions
/// across whatever shard boundaries the split draws.
fn pin_cfg(shards: usize) -> FederationConfig {
    FederationConfig {
        base: FaultCampaignConfig {
            devices: 16,
            requests: 64,
            horizon_h: 12.0,
            faults: 16,
            ..FaultCampaignConfig::default()
        },
        shards,
        mobility: MobilityWaveConfig {
            moves: 16,
            waves: 2,
            horizon_h: 12.0,
            devices: 16,
            ..MobilityWaveConfig::default()
        },
        ..FederationConfig::default()
    }
}

/// Every cross-shard ledger identity that must hold on any outcome:
/// per-shard fate balance (with handoffs), all handoffs resolved, and
/// commit/hand-over counter agreement.
fn assert_ledgers(out: &FederationOutcome, requests: usize) {
    assert!(
        out.fates_balance(),
        "per-shard fate ledgers: {:?}",
        out.stats
    );
    let arrivals: u32 = out.shards.iter().map(|s| s.report.arrivals).sum();
    assert_eq!(arrivals as usize, requests, "every request resolves once");
    assert_eq!(
        out.stats.handoffs_initiated,
        out.stats.handoffs_committed + out.stats.handoffs_aborted,
        "every handoff resolves: {:?}",
        out.stats
    );
    let handed_out: u32 = out.stats.handed_out.iter().sum();
    let handed_in: u32 = out.stats.handed_in.iter().sum();
    assert_eq!(
        u64::from(handed_out),
        out.stats.handoffs_committed,
        "one release per commit"
    );
    assert_eq!(
        handed_in, handed_out,
        "every released session arrives somewhere (late commits included)"
    );
    let forwarded_out: u32 = out.stats.forwarded_out.iter().sum();
    let forwarded_in: u32 = out.stats.forwarded_in.iter().sum();
    assert_eq!(u64::from(forwarded_out), out.stats.forwarded);
    assert_eq!(forwarded_in, forwarded_out);
}

#[test]
fn one_shard_is_byte_identical_to_the_serial_des_reference() {
    let cfg = pin_cfg(1);
    let schedule = cfg.schedule();
    let fed = run_federation_campaign_with(&cfg, &schedule).expect("federated run");
    let serial = run_fault_campaign_with(&cfg.base, &schedule).expect("serial run");
    assert_eq!(
        fed.shards[0].log.render(),
        serial.log.render(),
        "the 1-shard event log must be byte-identical to the serial loop"
    );
    assert_eq!(fed.shards[0].report, serial.report);
    assert_eq!(fed.shards[0].report.log_digest, serial.report.log_digest);
    assert_eq!(fed.stats.messages, 0, "one shard never talks to itself");
    assert_ledgers(&fed, cfg.base.requests);
}

#[test]
fn one_shard_stays_byte_identical_under_imperfect_detection() {
    let mut cfg = pin_cfg(1);
    cfg.base.detection_grace_h = 0.5;
    cfg.base.partitions = 2;
    cfg.base.heartbeat_loss = 0.1;
    let schedule = cfg.schedule();
    let fed = run_federation_campaign_with(&cfg, &schedule).expect("federated run");
    let serial = run_fault_campaign_with(&cfg.base, &schedule).expect("serial run");
    assert_eq!(fed.shards[0].log.render(), serial.log.render());
    assert_eq!(fed.shards[0].report, serial.report);
    assert!(
        serial.report.suspicions > 0,
        "the imperfect variant must actually exercise the detector"
    );
}

/// The per-shard digest pins. Any change to the federation protocol,
/// the total-order rule, the handoff state machine, or the underlying
/// serial semantics must be deliberate enough to re-pin these.
#[test]
fn per_shard_digests_are_pinned_at_every_shard_count() {
    let pins: &[(usize, &[u64])] = &[
        (2, &[0xf692_fbb7_1795_f2c4, 0x2f4e_b2cc_f12d_6112]),
        (
            4,
            &[
                0xa00b_f9f2_9689_a915,
                0xaafa_fcc5_95b9_5c1f,
                0x058b_0a2d_5d30_73dd,
                0x20a1_2e04_113c_0d45,
            ],
        ),
        (
            8,
            &[
                0x8143_afe4_fa05_045f,
                0x505c_a832_e0df_4c0c,
                0x0da2_5fea_2d29_b8bb,
                0xa595_d1f1_c44d_2fd3,
                0x86b2_6dba_b90e_3c75,
                0xc098_b0f2_fd37_6811,
                0x853c_27df_0cf7_b8bc,
                0x885c_f33d_65b6_4e28,
            ],
        ),
    ];
    let mut committed_total = 0u64;
    let mut actual = Vec::new();
    for &(shards, _) in pins {
        let cfg = pin_cfg(shards);
        let out = run_federation_campaign_with(&cfg, &cfg.schedule()).expect("federated run");
        actual.push((shards, out.shard_digests()));
        assert_ledgers(&out, cfg.base.requests);
        committed_total += out.stats.handoffs_committed;
    }
    let expected: Vec<(usize, Vec<u64>)> = pins
        .iter()
        .map(|&(shards, digests)| (shards, digests.to_vec()))
        .collect();
    assert_eq!(
        actual
            .iter()
            .map(|(s, d)| (*s, format!("{d:#018x?}")))
            .collect::<Vec<_>>(),
        expected
            .iter()
            .map(|(s, d)| (*s, format!("{d:#018x?}")))
            .collect::<Vec<_>>(),
        "per-shard digest pins drifted"
    );
    assert!(
        committed_total > 0,
        "the pinned campaigns must exercise committed cross-shard handoffs"
    );
}

/// `splitmix64` — hand-rolled here so the randomized sweep needs no
/// external fuzzing dependency and stays reproducible byte-for-byte.
fn mix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

#[test]
fn randomized_interleavings_conserve_sessions_and_replay_identically() {
    let mut state = 0xfede_4a77_1e57_0001u64;
    for round in 0..10u32 {
        let shards = 2 + (mix(&mut state) % 3) as usize; // 2..=4
        let devices = 2 * shards + (mix(&mut state) % 5) as usize;
        let requests = 24 + (mix(&mut state) % 25) as usize;
        let faults = (mix(&mut state) % 20) as usize;
        let imperfect = mix(&mut state) % 2 == 1;
        let moves = 8 + (mix(&mut state) % 9) as usize;
        let waves = 1 + (mix(&mut state) % 3) as usize;
        let mut shard_partitions = Vec::new();
        for _ in 0..(mix(&mut state) % 3) {
            let shard = (mix(&mut state) % shards as u64) as usize;
            let from_h = (mix(&mut state) % 10_000) as f64 / 1_000.0; // 0..10h
            let to_h = from_h + 0.05 + (mix(&mut state) % 500) as f64 / 1_000.0;
            shard_partitions.push(ShardPartition {
                shard,
                from_h,
                to_h,
            });
        }
        let cfg = FederationConfig {
            base: FaultCampaignConfig {
                seed: mix(&mut state),
                devices,
                requests,
                horizon_h: 12.0,
                faults,
                detection_grace_h: if imperfect { 0.5 } else { 0.0 },
                partitions: if imperfect { 2 } else { 0 },
                heartbeat_loss: if imperfect { 0.1 } else { 0.0 },
                ..FaultCampaignConfig::default()
            },
            shards,
            mobility: MobilityWaveConfig {
                seed: mix(&mut state),
                moves,
                waves,
                horizon_h: 12.0,
                devices,
                ..MobilityWaveConfig::default()
            },
            shard_partitions,
            ..FederationConfig::default()
        };
        let schedule = cfg.schedule();
        // A run that leaks or double-counts a single resource unit fails
        // here: the engine sweeps capacity conservation (exact handoff
        // and reservation refunds included) after every event.
        let out = run_federation_campaign_with(&cfg, &schedule)
            .unwrap_or_else(|v| panic!("round {round}: invariant violated: {v} ({cfg:?})"));
        assert_ledgers(&out, requests);
        // Determinism: the identical config and schedule replays to the
        // identical per-shard digests.
        let again = run_federation_campaign_with(&cfg, &schedule).expect("replay");
        assert_eq!(
            out.shard_digests(),
            again.shard_digests(),
            "round {round} replay diverged"
        );
        assert_eq!(out.combined_digest, again.combined_digest);
        assert_eq!(out.stats, again.stats, "round {round} stats diverged");
    }
}
