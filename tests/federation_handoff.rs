//! Directed regressions for the two-phase cross-shard handoff under
//! failure-detector suspicion (`ubiqos_runtime::federation`).
//!
//! Each test stages exactly one session and one cross-shard `MoveUser`,
//! then drops a shard-partition window at a chosen phase of the
//! handoff:
//!
//! * destination suspected at **initiation** → the move never starts; the
//!   session is stopped (exact refund) and parked into the source's
//!   retry queue, witnessed by a stale view of the destination device;
//! * destination suspected at **decide** (mid-handoff) → abort; the
//!   deferred abort can't reach the destination, so the reservation
//!   lease expires and cleans up with a witnessed stale view;
//! * source partitioned at **decide** → abort on the source; again the
//!   lease expiry releases the orphaned reservation exactly;
//! * commit deferred past the lease (**late commit**) → the destination
//!   re-admits the handed-over session rather than double-charging the
//!   expired reservation.
//!
//! The invariant under test everywhere: the session lands parked,
//! committed, or kept — **never duplicated and never leaked** — and
//! every reservation is refunded exactly once.
//!
//! The setup is self-locating rather than magic-numbered: the workload
//! trace is regenerated from the seed to pick move timing inside the
//! session's lifetime, and a fault-free probe run finds which shard the
//! seeded client lands on.

use rand::rngs::StdRng;
use rand::SeedableRng;
use ubiqos_runtime::{
    run_federation_campaign_with, FaultCampaignConfig, FederationConfig, FederationOutcome,
    ShardPartition,
};
use ubiqos_sim::{FaultKind, MobilityWaveConfig, Request, TimedFault, WorkloadConfig};

/// Two shards of two devices each; one request; no base faults, no
/// mobility overlay (the move is injected explicitly), full registries
/// on both shards so placement never interferes with the protocol
/// under test.
fn directed_cfg(seed: u64) -> FederationConfig {
    FederationConfig {
        base: FaultCampaignConfig {
            seed,
            devices: 4,
            requests: 1,
            horizon_h: 12.0,
            faults: 0,
            ..FaultCampaignConfig::default()
        },
        shards: 2,
        mobility: MobilityWaveConfig {
            moves: 0,
            ..MobilityWaveConfig::default()
        },
        specialize_registry: false,
        ..FederationConfig::default()
    }
}

/// Finds a seed whose single request lives long enough for a full
/// handoff timeline (reserve at `t`, decide at `t+0.02h`, lease expiry
/// at `t+0.1h`, deferred messages at `t+0.3h`) and returns it with its
/// request. Deterministic: the search always lands on the same seed.
fn seeded_single_session() -> (u64, Request) {
    for seed in 1..10_000u64 {
        let trace = WorkloadConfig::overload(1, 12.0).generate(&mut StdRng::seed_from_u64(seed));
        let r = trace[0];
        if r.duration_h > 0.7 && r.arrival_h > 1.0 && r.arrival_h < 6.0 {
            return (seed, r);
        }
    }
    panic!("no workable seed below 10000");
}

/// Probe run (no faults): which shard admitted the single session.
fn source_shard(cfg: &FederationConfig) -> usize {
    let out = run_federation_campaign_with(cfg, &[]).expect("probe run");
    out.shards
        .iter()
        .position(|s| s.report.admitted == 1)
        .expect("the single request is admitted on a fresh space")
}

/// The staged scenario every test shares: a seeded session on `src`,
/// one `MoveUser` at `move_t` targeting the first device of the other
/// shard.
struct Stage {
    cfg: FederationConfig,
    schedule: Vec<TimedFault>,
    src: usize,
    dst: usize,
    move_t: f64,
}

fn stage() -> Stage {
    let (seed, req) = seeded_single_session();
    let cfg = directed_cfg(seed);
    let src = source_shard(&cfg);
    let dst = 1 - src;
    let move_t = req.arrival_h + 0.05;
    assert!(
        move_t + 0.35 < req.departure_h(),
        "the session must outlive the whole handoff timeline"
    );
    let schedule = vec![TimedFault {
        at_h: move_t,
        kind: FaultKind::MoveUser {
            pick: 0,
            to: dst * 2, // first device of the destination shard
        },
    }];
    Stage {
        cfg,
        schedule,
        src,
        dst,
        move_t,
    }
}

/// The never-duplicated-never-leaked ledger: exactly one session is
/// accounted for across all shards, and custody transfers balance.
fn assert_exactly_one_session(out: &FederationOutcome) {
    assert!(out.fates_balance(), "fate ledgers: {:?}", out.stats);
    let admitted: u32 = out.shards.iter().map(|s| s.report.admitted).sum();
    assert_eq!(admitted, 1, "the single request admits exactly once");
    let accounted: u32 = out
        .shards
        .iter()
        .map(|s| {
            s.report.completed + s.report.dropped + s.report.live_at_end + s.report.parked_at_end
        })
        .sum();
    assert_eq!(
        accounted, 1,
        "exactly one session fate across every shard (no duplicate, no leak)"
    );
    let handed_out: u32 = out.stats.handed_out.iter().sum();
    let handed_in: u32 = out.stats.handed_in.iter().sum();
    assert_eq!(handed_in, handed_out, "custody transfers balance");
}

#[test]
fn destination_suspected_at_initiation_parks_the_session() {
    let mut s = stage();
    // The destination is partitioned across the move instant; with the
    // default 0.05h shard grace it is *suspected* when the move fires.
    s.cfg.shard_partitions = vec![ShardPartition {
        shard: s.dst,
        from_h: s.move_t - 0.2,
        to_h: s.move_t + 0.1,
    }];
    let out = run_federation_campaign_with(&s.cfg, &s.schedule).expect("campaign");
    assert_eq!(out.stats.handoffs_parked_dest_suspected, 1);
    assert_eq!(
        out.stats.handoffs_initiated, 0,
        "a suspected destination is never even reserved against"
    );
    assert_eq!(out.stats.messages, 0, "and nothing crosses the wire");
    assert_eq!(out.shards[s.src].report.parked, 1, "parked on the source");
    assert_eq!(out.shards[s.src].report.move_failures, 1);
    assert_eq!(out.shards[s.dst].report.parked, 0);
    assert_exactly_one_session(&out);
}

#[test]
fn destination_suspected_mid_handoff_aborts_and_lease_cleans_up() {
    let mut s = stage();
    // Reserve/ack complete at move_t; the partition opens just after,
    // and a short 0.01h grace means the destination is suspected by
    // decide time (move_t + 0.02h). The abort can't be delivered into
    // the partition, so the reservation lease (move_t + 0.1h) expires
    // and refunds the held resources with a witnessed stale view.
    s.cfg.shard_grace_h = 0.01;
    s.cfg.shard_partitions = vec![ShardPartition {
        shard: s.dst,
        from_h: s.move_t + 0.001,
        to_h: s.move_t + 0.3,
    }];
    let out = run_federation_campaign_with(&s.cfg, &s.schedule).expect("campaign");
    assert_eq!(out.stats.handoffs_initiated, 1);
    assert_eq!(out.stats.handoffs_aborted, 1);
    assert_eq!(out.stats.handoffs_committed, 0);
    assert_eq!(
        out.stats.reservation_expiries, 1,
        "the orphaned reservation is released by its lease, not the abort"
    );
    assert_eq!(out.shards[s.src].report.move_failures, 1);
    assert_exactly_one_session(&out);
    // The session stayed with the source and ran to completion there.
    assert_eq!(out.shards[s.src].report.completed, 1);
}

#[test]
fn source_partitioned_at_decide_aborts_and_lease_cleans_up() {
    let mut s = stage();
    // The *source* drops off the network right after sending the
    // reserve; at decide it knows itself partitioned and aborts rather
    // than committing a release it cannot announce. Its abort message
    // defers past the lease, so expiry again does the exact refund.
    s.cfg.shard_partitions = vec![ShardPartition {
        shard: s.src,
        from_h: s.move_t + 0.001,
        to_h: s.move_t + 0.3,
    }];
    let out = run_federation_campaign_with(&s.cfg, &s.schedule).expect("campaign");
    assert_eq!(out.stats.handoffs_initiated, 1);
    assert_eq!(out.stats.handoffs_aborted, 1);
    assert_eq!(out.stats.handoffs_committed, 0);
    assert_eq!(out.stats.reservation_expiries, 1);
    assert_eq!(out.shards[s.src].report.move_failures, 1);
    assert_exactly_one_session(&out);
    assert_eq!(
        out.shards[s.src].report.completed, 1,
        "the source keeps the session through its own partition"
    );
}

#[test]
fn late_commit_readmits_instead_of_double_charging() {
    let mut s = stage();
    // Decide commits just before the destination partitions (suspicion
    // is disabled by a huge grace), so the commit message itself defers
    // past the reservation lease. The expired reservation must not be
    // resurrected: the commit re-admits the session fresh.
    s.cfg.shard_grace_h = 5.0;
    s.cfg.shard_partitions = vec![ShardPartition {
        shard: s.dst,
        from_h: s.move_t + 0.019,
        to_h: s.move_t + 0.3,
    }];
    let out = run_federation_campaign_with(&s.cfg, &s.schedule).expect("campaign");
    assert_eq!(out.stats.handoffs_committed, 1);
    assert_eq!(out.stats.handoffs_aborted, 0);
    assert_eq!(out.stats.reservation_expiries, 1, "the lease fired first");
    assert_eq!(out.stats.late_commits, 1);
    assert_eq!(out.stats.handed_out[s.src], 1);
    assert_eq!(out.stats.handed_in[s.dst], 1);
    assert_exactly_one_session(&out);
    // Custody genuinely transferred: the destination finished it.
    assert_eq!(out.shards[s.dst].report.completed, 1);
    assert_eq!(out.shards[s.src].report.completed, 0);
}

#[test]
fn clean_commit_transfers_custody_exactly_once() {
    let s = stage();
    let out = run_federation_campaign_with(&s.cfg, &s.schedule).expect("campaign");
    assert_eq!(out.stats.handoffs_initiated, 1);
    assert_eq!(out.stats.handoffs_committed, 1);
    assert_eq!(out.stats.handoffs_aborted, 0);
    assert_eq!(out.stats.reservation_expiries, 0);
    assert_eq!(out.stats.late_commits, 0);
    assert_eq!(out.stats.handed_out[s.src], 1);
    assert_eq!(out.stats.handed_in[s.dst], 1);
    assert_eq!(out.shards[s.src].report.moves, 1);
    assert_eq!(out.shards[s.src].report.move_failures, 0);
    assert_exactly_one_session(&out);
    assert_eq!(out.shards[s.dst].report.completed, 1);
    // Determinism of the directed scenario itself.
    let again = run_federation_campaign_with(&s.cfg, &s.schedule).expect("replay");
    assert_eq!(out.shard_digests(), again.shard_digests());
}
