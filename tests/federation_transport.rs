//! Reliable delivery over a lossy federation transport
//! (`ubiqos_runtime::transport` + the reliability sublayer in
//! `ubiqos_runtime::federation`).
//!
//! The contract under test has two halves:
//!
//! * **Perfect path is free** — wrapping the channel transport in a
//!   zero-loss [`LossyTransport`] must be *byte-identical* to the bare
//!   transport: same per-shard event logs, same reports, same stats.
//!   The reliability sublayer (sequence numbers, acks, retransmission
//!   timers) may never perturb a run that loses nothing.
//! * **Every lossy schedule converges** — under seeded drops,
//!   duplicates, reorders, and partition-aligned burst loss, the
//!   campaign must still drain to the *same logical outcome* as the
//!   perfect run: identical per-shard event-log digests, identical
//!   protocol stats (once the transport-recovery counters are masked
//!   out). Loss costs retransmissions and latency, never behaviour.
//!
//! Directed regressions then aim single faults at the nastiest spots
//! of the handoff protocol instead of fishing for a seed: a duplicated
//! commit landing after the reservation lease expired, a reserve
//! physically overtaken by its own abort, and a lost ack forcing a
//! retransmission of an already-delivered payload.

use rand::rngs::StdRng;
use rand::SeedableRng;
use ubiqos_runtime::{
    run_federation_campaign_lossy, run_federation_campaign_with, DirectedFault, Fate,
    FaultCampaignConfig, FederationConfig, FederationOutcome, FederationStats, LossConfig, MsgKind,
    RetryPolicy, ShardPartition,
};
use ubiqos_sim::{FaultKind, MobilityWaveConfig, Request, TimedFault, WorkloadConfig};

/// The pinned campaign from `federation_equivalence.rs`, with a
/// shard-partition window so the deferred-delivery path and the
/// burst-loss alignment are both exercised.
fn sweep_cfg(shards: usize) -> FederationConfig {
    FederationConfig {
        base: FaultCampaignConfig {
            devices: 16,
            requests: 64,
            horizon_h: 12.0,
            faults: 16,
            ..FaultCampaignConfig::default()
        },
        shards,
        mobility: MobilityWaveConfig {
            moves: 16,
            waves: 2,
            horizon_h: 12.0,
            devices: 16,
            ..MobilityWaveConfig::default()
        },
        shard_partitions: vec![ShardPartition {
            shard: 1,
            from_h: 4.0,
            to_h: 4.5,
        }],
        ..FederationConfig::default()
    }
}

/// Masks the transport-recovery counters, which legitimately differ
/// between a perfect and a lossy run of the same campaign. Everything
/// else in [`FederationStats`] — messages, handoffs, forwards,
/// expiries, custody ledgers — must be identical.
fn mask_transport(stats: &FederationStats) -> FederationStats {
    let mut s = stats.clone();
    s.retransmissions = 0;
    s.duplicate_drops = 0;
    s.acks_sent = 0;
    s.reorder_buffered = 0;
    s.reorder_depth_max = 0;
    s.convergence_delay_us_max = 0;
    s.convergence_delay_us_total = 0;
    s
}

/// Asserts the lossy outcome is logically identical to the perfect
/// one: same per-shard event logs (byte-for-byte), same masked stats.
fn assert_converged(perfect: &FederationOutcome, lossy: &FederationOutcome, tag: &str) {
    for (s, (p, l)) in perfect.shards.iter().zip(lossy.shards.iter()).enumerate() {
        assert_eq!(
            p.report.log_digest, l.report.log_digest,
            "[{tag}] shard{s} event-log digest diverged"
        );
        assert_eq!(
            p.log.render(),
            l.log.render(),
            "[{tag}] shard{s} event log diverged"
        );
    }
    assert_eq!(
        perfect.combined_digest, lossy.combined_digest,
        "[{tag}] combined digest"
    );
    assert_eq!(
        mask_transport(&perfect.stats),
        mask_transport(&lossy.stats),
        "[{tag}] protocol stats diverged"
    );
}

#[test]
fn zero_loss_lossy_transport_is_byte_identical_to_the_bare_channel() {
    for shards in [2, 4, 8] {
        let cfg = sweep_cfg(shards);
        let schedule = cfg.schedule();
        let bare = run_federation_campaign_with(&cfg, &schedule).expect("bare run");
        let (wrapped, loss_stats) =
            run_federation_campaign_lossy(&cfg, &schedule, LossConfig::perfect())
                .expect("wrapped run");
        for (s, (b, w)) in bare.shards.iter().zip(wrapped.shards.iter()).enumerate() {
            assert_eq!(b.log.render(), w.log.render(), "shard{s} log bytes");
            assert_eq!(b.report, w.report, "shard{s} report");
        }
        assert_eq!(bare.stats, wrapped.stats, "stats at {shards} shards");
        assert_eq!(loss_stats.drops + loss_stats.dups + loss_stats.delays, 0);
        assert_eq!(
            wrapped.stats.retransmissions, 0,
            "nothing retransmits on a perfect wire"
        );
    }
}

#[test]
fn every_lossy_schedule_converges_to_the_perfect_digests() {
    for shards in [2usize, 4, 8] {
        let cfg = sweep_cfg(shards);
        let schedule = cfg.schedule();
        let perfect = run_federation_campaign_with(&cfg, &schedule).expect("perfect run");
        for loss in [0.0, 0.01, 0.1, 0.3] {
            for (dup, reorder) in [(0.0, 0.0), (0.05, 0.1)] {
                let mut lc = LossConfig::lossy(0xdead_beef ^ shards as u64, loss);
                lc.dup = dup;
                lc.reorder = reorder;
                lc.max_delay_h = if reorder > 0.0 { 0.01 } else { 0.0 };
                let lc = lc.align_bursts(&cfg.shard_partitions);
                let tag = format!("shards={shards} loss={loss} dup={dup} reorder={reorder}");
                let (lossy, stats) = run_federation_campaign_lossy(&cfg, &schedule, lc)
                    .unwrap_or_else(|e| panic!("[{tag}] invariant violation: {e:?}"));
                assert_converged(&perfect, &lossy, &tag);
                if loss >= 0.1 {
                    assert!(
                        stats.drops > 0 && lossy.stats.retransmissions > 0,
                        "[{tag}] heavy loss must actually exercise recovery: {stats:?}"
                    );
                }
                if dup > 0.0 && loss >= 0.1 {
                    assert!(
                        lossy.stats.duplicate_drops > 0,
                        "[{tag}] duplicates (injected or retransmitted) must be absorbed"
                    );
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Directed regressions: one staged session, one cross-shard move, one
// aimed transport fault (mirrors the staging in federation_handoff.rs).
// ---------------------------------------------------------------------------

fn directed_cfg(seed: u64) -> FederationConfig {
    FederationConfig {
        base: FaultCampaignConfig {
            seed,
            devices: 4,
            requests: 1,
            horizon_h: 12.0,
            faults: 0,
            ..FaultCampaignConfig::default()
        },
        shards: 2,
        mobility: MobilityWaveConfig {
            moves: 0,
            ..MobilityWaveConfig::default()
        },
        specialize_registry: false,
        ..FederationConfig::default()
    }
}

fn seeded_single_session() -> (u64, Request) {
    for seed in 1..10_000u64 {
        let trace = WorkloadConfig::overload(1, 12.0).generate(&mut StdRng::seed_from_u64(seed));
        let r = trace[0];
        if r.duration_h > 0.7 && r.arrival_h > 1.0 && r.arrival_h < 6.0 {
            return (seed, r);
        }
    }
    panic!("no workable seed below 10000");
}

struct Stage {
    cfg: FederationConfig,
    schedule: Vec<TimedFault>,
    dst: usize,
    move_t: f64,
}

fn stage() -> Stage {
    let (seed, req) = seeded_single_session();
    let cfg = directed_cfg(seed);
    let probe = run_federation_campaign_with(&cfg, &[]).expect("probe run");
    let src = probe
        .shards
        .iter()
        .position(|s| s.report.admitted == 1)
        .expect("the single request is admitted on a fresh space");
    let dst = 1 - src;
    let move_t = req.arrival_h + 0.05;
    assert!(move_t + 0.35 < req.departure_h());
    let schedule = vec![TimedFault {
        at_h: move_t,
        kind: FaultKind::MoveUser {
            pick: 0,
            to: dst * 2,
        },
    }];
    Stage {
        cfg,
        schedule,
        dst,
        move_t,
    }
}

/// A directed-faults-only schedule: no seeded loss, just the aimed hits.
fn aimed(directed: Vec<DirectedFault>) -> LossConfig {
    LossConfig {
        directed,
        ..LossConfig::perfect()
    }
}

#[test]
fn duplicated_late_commit_is_absorbed_not_double_charged() {
    // The late-commit scenario from federation_handoff.rs: the commit
    // defers past the reservation lease, so the destination re-admits.
    // Duplicating the commit's only transmission must change nothing —
    // the reliability sublayer drops the twin before it can reach the
    // handler and re-charge the expired reservation.
    let mut s = stage();
    s.cfg.shard_grace_h = 5.0;
    s.cfg.shard_partitions = vec![ShardPartition {
        shard: s.dst,
        from_h: s.move_t + 0.019,
        to_h: s.move_t + 0.3,
    }];
    let perfect = run_federation_campaign_with(&s.cfg, &s.schedule).expect("perfect");
    let (lossy, _) = run_federation_campaign_lossy(
        &s.cfg,
        &s.schedule,
        aimed(vec![DirectedFault {
            kind: MsgKind::Commit,
            nth: 0,
            fate: Fate::Duplicate,
        }]),
    )
    .expect("lossy");
    assert_eq!(lossy.stats.late_commits, 1, "the lease still fired first");
    assert_eq!(lossy.stats.handoffs_committed, 1);
    assert!(
        lossy.stats.duplicate_drops >= 1,
        "the twin commit is absorbed by the sublayer: {:?}",
        lossy.stats
    );
    assert_converged(&perfect, &lossy, "dup-late-commit");
}

#[test]
fn reserve_overtaken_by_its_own_abort_is_released_in_order() {
    // The destination partitions across the move (huge grace keeps it
    // unsuspected), so the reserve *and* the abort that follows it at
    // decide time both defer to the heal. Delaying the reserve's
    // physical copy past the abort's transmission makes the abort
    // arrive first on the wire — the in-order release buffer must hold
    // it until the reserve lands, so handlers still see reserve-then-
    // abort and the reservation is provably released, never leaked.
    // The retransmission timer is stretched past the injected delay,
    // otherwise the retransmitted reserve would fill the gap before
    // the abort was even sent and no reorder would occur.
    let mut s = stage();
    s.cfg.retx_policy = RetryPolicy {
        base_backoff_ms: 600_000.0,
        max_backoff_ms: 600_000.0,
        max_attempts: 0,
    };
    s.cfg.shard_grace_h = 5.0;
    s.cfg.shard_partitions = vec![ShardPartition {
        shard: s.dst,
        from_h: s.move_t - 0.001,
        to_h: s.move_t + 0.3,
    }];
    let perfect = run_federation_campaign_with(&s.cfg, &s.schedule).expect("perfect");
    let (lossy, _) = run_federation_campaign_lossy(
        &s.cfg,
        &s.schedule,
        aimed(vec![DirectedFault {
            kind: MsgKind::Reserve,
            nth: 0,
            fate: Fate::DelayH(0.05),
        }]),
    )
    .expect("lossy");
    assert!(
        lossy.stats.reorder_buffered >= 1,
        "the abort physically overtook the reserve: {:?}",
        lossy.stats
    );
    assert!(lossy.stats.reorder_depth_max >= 1);
    assert_converged(&perfect, &lossy, "reorder-reserve-abort");
}

#[test]
fn lost_ack_forces_a_retransmission_of_a_delivered_payload() {
    // Clean commit, but the standalone ack for the commit (the third
    // ack on the wire: reserve's, reserve-ok's piggyback aside, then
    // commit's) is dropped. The sender cannot tell a lost payload from
    // a lost ack, so it retransmits; the receiver already released the
    // commit, absorbs the duplicate, and re-acks. Exactly-once
    // delivery to the handlers, at the cost of one extra copy.
    let s = stage();
    let perfect = run_federation_campaign_with(&s.cfg, &s.schedule).expect("perfect");
    let (lossy, _) = run_federation_campaign_lossy(
        &s.cfg,
        &s.schedule,
        aimed(vec![DirectedFault {
            kind: MsgKind::Ack,
            nth: 2,
            fate: Fate::Drop,
        }]),
    )
    .expect("lossy");
    assert_eq!(lossy.stats.handoffs_committed, 1);
    assert!(
        lossy.stats.retransmissions >= 1,
        "the unacked commit must be retransmitted: {:?}",
        lossy.stats
    );
    assert!(
        lossy.stats.duplicate_drops >= 1,
        "the receiver absorbs the retransmitted copy: {:?}",
        lossy.stats
    );
    assert_converged(&perfect, &lossy, "lost-ack");
}
