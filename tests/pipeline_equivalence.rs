//! Workspace-level equivalence suite for the batched pipeline runtime
//! (`ubiqos_runtime::pipeline`).
//!
//! The batched runtime's whole contract is *byte identity*: at every
//! `(batch size, thread count)` setting, the event log, its digest, and
//! every report counter must match the serial DES reference exactly —
//! speculation and batching may only ever change wall-clock time. This
//! file pins that contract across random fault schedules (detector
//! suspicion, partitions, and lossy heartbeats included) and pins the
//! absolute baseline digests so neither the batched loop nor the
//! hot-path optimizations it motivated (the once-per-instant lease
//! sweep, the event-log formatting fast path) can drift the serial
//! runtime either.

use proptest::prelude::*;
use ubiqos_runtime::{
    run_fault_campaign, run_fault_campaign_batched, FaultCampaignConfig, PipelineConfig,
};

/// The batch-size ladder every equivalence assertion sweeps: serial
/// degenerate (1), small, the default (cache-warm), and overload scale.
const BATCH_SIZES: [usize; 4] = [1, 4, 32, 256];

/// Worker counts for the speculative stage; `8` exceeds this CI class's
/// cores, so the sweep also proves worker count is wall-clock-only.
const THREADS: [usize; 2] = [1, 8];

fn assert_batched_matches_serial(cfg: &FaultCampaignConfig, label: &str) {
    let serial = run_fault_campaign(cfg)
        .unwrap_or_else(|v| panic!("{label}: serial invariant violated: {v}"));
    for threads in THREADS {
        for batch_size in BATCH_SIZES {
            let batched = run_fault_campaign_batched(
                cfg,
                &PipelineConfig {
                    batch_size,
                    threads,
                },
            )
            .unwrap_or_else(|v| {
                panic!("{label} b{batch_size} t{threads}: batched invariant violated: {v}")
            });
            assert_eq!(
                serial.log.render(),
                batched.log.render(),
                "{label} b{batch_size} t{threads}: event logs diverged"
            );
            assert_eq!(
                serial.report, batched.report,
                "{label} b{batch_size} t{threads}: reports diverged"
            );
            let stats = batched.pipeline.expect("batched runs carry stats");
            assert_eq!(
                stats.adopted + stats.inline_speculated,
                u64::from(batched.report.arrivals),
                "{label} b{batch_size} t{threads}: arrival accounting leaked"
            );
        }
    }
}

/// The absolute anchors: baseline digests captured when each campaign
/// mode was introduced. The serial loop, the hoisted lease sweep, the
/// formatting fast path, and every batched cell must all keep
/// reproducing them byte-for-byte.
#[test]
fn baseline_digests_are_pinned_serial_and_batched() {
    // Perfect detection (the digest tests/fault_injection.rs pins).
    let perfect = FaultCampaignConfig::default();
    // Imperfect detection with every detector feature active (the
    // lease-sweep hot path: heartbeats cluster lease checks at shared
    // instants, so the once-per-instant hoist is exercised heavily).
    let imperfect = FaultCampaignConfig {
        detection_grace_h: 1.0,
        heartbeat_period_h: 0.25,
        partitions: 2,
        partition_max: 2,
        heartbeat_loss: 0.3,
        scope_max: 2,
        ..FaultCampaignConfig::default()
    };
    for (cfg, pinned, label) in [
        (&perfect, 0x2385_725a_4716_6d1b_u64, "perfect"),
        (&imperfect, 0x01d0_6fd1_1ed1_9085_u64, "imperfect"),
    ] {
        let serial = run_fault_campaign(cfg).expect("serial holds");
        assert_eq!(
            serial.report.log_digest, pinned,
            "{label}: serial baseline digest drifted"
        );
        for batch_size in BATCH_SIZES {
            let batched = run_fault_campaign_batched(
                cfg,
                &PipelineConfig {
                    batch_size,
                    threads: 8,
                },
            )
            .expect("batched holds");
            assert_eq!(
                batched.report.log_digest, pinned,
                "{label} b{batch_size}: batched digest drifted from the pinned baseline"
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Random perfect-detection schedules: crashes, correlated scopes,
    /// flapping links, fluctuations — batched ≡ serial at every cell.
    #[test]
    fn batched_matches_serial_across_random_fault_schedules(
        seed in 0u64..u64::MAX,
        scope in 1usize..3,
        flapping in 0usize..2,
    ) {
        let cfg = FaultCampaignConfig {
            seed,
            devices: 4,
            requests: 60,
            horizon_h: 24.0,
            faults: 24,
            scope_max: scope,
            flapping_links: flapping,
            ..FaultCampaignConfig::default()
        };
        assert_batched_matches_serial(&cfg, "perfect");
    }

    /// Random imperfect-detection schedules: suspicion, false suspicion,
    /// reinstatement, and stale views landing mid-batch must all commit
    /// in the serial order. Lease checks land between arrivals, so
    /// batches are clipped at suspicion horizons (the batch horizon
    /// rule) and the speculation table is invalidated mid-run.
    #[test]
    fn batched_matches_serial_under_detector_suspicion(
        seed in 0u64..u64::MAX,
        loss in 0.0f64..0.6,
    ) {
        let cfg = FaultCampaignConfig {
            seed,
            devices: 4,
            requests: 60,
            horizon_h: 24.0,
            faults: 24,
            scope_max: 2,
            detection_grace_h: 0.5,
            heartbeat_period_h: 0.25,
            partitions: 2,
            partition_max: 2,
            heartbeat_loss: loss,
            ..FaultCampaignConfig::default()
        };
        assert_batched_matches_serial(&cfg, "imperfect");
    }
}
