//! Runtime reconfiguration integration: device switches, crashes, and
//! the continuity guarantees of the state-handoff machinery.

use ubiqos::prelude::DeviceId;
use ubiqos::ReconfigureTrigger;
use ubiqos_runtime::apps;
use ubiqos_runtime::{DomainServer, LinkKind};

fn audio_domain(preinstall: bool) -> DomainServer {
    let (env, links, props) = apps::audio_environment();
    let mut server = DomainServer::new(env, links, props);
    apps::register_audio_services(server.registry_mut());
    if preinstall {
        for d in 0..4 {
            for inst in ["audio-server@desktop1", "mpeg-player", "wav-player"] {
                server.repository_mut().preinstall(d, inst);
            }
        }
    }
    server
}

#[test]
fn roaming_pc_pda_pc_keeps_media_position() {
    let mut server = audio_domain(true);
    let session = server
        .start_session(
            "audio",
            apps::audio_on_demand_app(),
            apps::audio_user_qos(),
            DeviceId::from_index(1),
        )
        .unwrap();

    server.play(45.0);
    let to_pda = server
        .switch_device(session, DeviceId::from_index(2))
        .unwrap();
    assert_eq!(to_pda.resume_position_s(), 45.0);
    assert_eq!(to_pda.target_link, LinkKind::Wireless);

    server.play(30.0);
    let to_pc = server
        .switch_device(session, DeviceId::from_index(3))
        .unwrap();
    assert_eq!(to_pc.resume_position_s(), 75.0);
    assert!(
        to_pda.handoff_ms > to_pc.handoff_ms,
        "PC->PDA handoff ({}) longer than PDA->PC ({})",
        to_pda.handoff_ms,
        to_pc.handoff_ms
    );

    // QoS is back to 40 fps at every stop.
    let s = server.session(session).unwrap();
    assert_eq!(s.measured_qos()[0].fps, 40.0);
    assert_eq!(s.overhead_log.len(), 3);
}

#[test]
fn pda_leg_uses_transcoder_and_desktop_legs_do_not() {
    let mut server = audio_domain(true);
    let session = server
        .start_session(
            "audio",
            apps::audio_on_demand_app(),
            apps::audio_user_qos(),
            DeviceId::from_index(1),
        )
        .unwrap();
    let count_transcoders = |server: &DomainServer| {
        server
            .session(session)
            .unwrap()
            .configuration
            .app
            .graph
            .components()
            .filter(|(_, c)| c.name().contains("transcoder"))
            .count()
    };
    assert_eq!(count_transcoders(&server), 0, "desktop player speaks MPEG");
    server
        .switch_device(session, DeviceId::from_index(2))
        .unwrap();
    assert_eq!(
        count_transcoders(&server),
        1,
        "PDA needs the MPEG2WAV transcoder"
    );
    server
        .switch_device(session, DeviceId::from_index(3))
        .unwrap();
    assert_eq!(count_transcoders(&server), 0, "back on a desktop");
}

#[test]
fn downloads_happen_once_per_device() {
    let mut server = audio_domain(false); // nothing preinstalled
    let session = server
        .start_session(
            "audio",
            apps::audio_on_demand_app(),
            apps::audio_user_qos(),
            DeviceId::from_index(1),
        )
        .unwrap();
    let first_download = server.session(session).unwrap().overhead_log[0]
        .1
        .downloading_ms;
    assert!(first_download > 0.0);

    // Roam to the PDA and back to the ORIGINAL desktop: the second visit
    // downloads nothing new for the player.
    server
        .switch_device(session, DeviceId::from_index(2))
        .unwrap();
    let pda_download = server.session(session).unwrap().overhead_log[1]
        .1
        .downloading_ms;
    assert!(pda_download > 0.0, "wav player + its code reach the PDA");

    server
        .switch_device(session, DeviceId::from_index(1))
        .unwrap();
    let back_download = server.session(session).unwrap().overhead_log[2]
        .1
        .downloading_ms;
    assert_eq!(
        back_download, 0.0,
        "everything already installed on desktop2"
    );
}

#[test]
fn service_departure_breaks_then_replacement_heals() {
    let mut server = audio_domain(true);
    let session = server
        .start_session(
            "audio",
            apps::audio_on_demand_app(),
            apps::audio_user_qos(),
            DeviceId::from_index(1),
        )
        .unwrap();

    // The WAV player leaves the smart space; the PDA leg now fails.
    server.registry_mut().unregister("wav-player").unwrap();
    assert!(server
        .switch_device(session, DeviceId::from_index(2))
        .is_err());
    // The failed switch left the old configuration live on desktop2.
    let s = server.session(session).unwrap();
    assert_eq!(s.client_device, DeviceId::from_index(1));
    assert_eq!(s.measured_qos()[0].fps, 40.0);

    // A replacement player arrives; roaming works again.
    let mut registry = ubiqos::prelude::ServiceRegistry::new();
    apps::register_audio_services(&mut registry);
    let replacement = registry
        .discover_all(&ubiqos::prelude::DiscoveryQuery::new("audio-player"))
        .into_iter()
        .find(|d| d.descriptor.instance_id == "wav-player")
        .unwrap();
    server.registry_mut().register(replacement.descriptor);
    server.repository_mut().preinstall(2, "wav-player");
    assert!(server
        .switch_device(session, DeviceId::from_index(2))
        .is_ok());
}

#[test]
fn event_bus_reports_every_reconfiguration() {
    let mut server = audio_domain(true);
    let rx = server.events().subscribe();
    let session = server
        .start_session(
            "audio",
            apps::audio_on_demand_app(),
            apps::audio_user_qos(),
            DeviceId::from_index(1),
        )
        .unwrap();
    server
        .switch_device(session, DeviceId::from_index(2))
        .unwrap();
    server
        .switch_device(session, DeviceId::from_index(3))
        .unwrap();
    server.stop_session(session);

    let triggers: Vec<ReconfigureTrigger> = rx.try_iter().map(|e| e.trigger).collect();
    assert_eq!(triggers.len(), 4);
    assert!(matches!(
        triggers[0],
        ReconfigureTrigger::ApplicationStarted
    ));
    assert!(matches!(
        triggers[1],
        ReconfigureTrigger::DeviceSwitched { .. }
    ));
    assert!(matches!(
        triggers[2],
        ReconfigureTrigger::DeviceSwitched { .. }
    ));
    assert!(matches!(
        triggers[3],
        ReconfigureTrigger::ApplicationStopped
    ));
    // The recomposition policy the facade publishes matches the paper's:
    // portal switches recompose, app lifecycle events only redistribute.
    assert!(triggers[1].requires_recomposition());
    assert!(!triggers[0].requires_recomposition());
    assert!(triggers[1].requires_state_handoff());
}

#[test]
fn two_concurrent_sessions_share_the_space() {
    let mut server = audio_domain(true);
    let a = server
        .start_session(
            "audio-a",
            apps::audio_on_demand_app(),
            apps::audio_user_qos(),
            DeviceId::from_index(1),
        )
        .unwrap();
    let b = server
        .start_session(
            "audio-b",
            apps::audio_on_demand_app(),
            apps::audio_user_qos(),
            DeviceId::from_index(3),
        )
        .unwrap();
    assert_ne!(format!("{a}"), format!("{b}"));
    server.play(10.0);
    assert_eq!(server.session(a).unwrap().position_s, 10.0);
    assert_eq!(server.session(b).unwrap().position_s, 10.0);
    assert!(server.stop_session(a).is_some());
    assert!(server.session(b).is_some());
}
