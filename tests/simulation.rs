//! Simulation-experiment integration: scaled-down Table 1 and Figure 5
//! runs asserting the paper's qualitative shapes.

use ubiqos_sim::{run_table1, Fig5Config, GraphGenConfig, Policy, Table1Config, WorkloadConfig};

#[test]
fn table1_shape_heuristic_beats_random() {
    let cfg = Table1Config {
        graphs: 30,
        seed: 99,
        ..Table1Config::default()
    };
    let report = run_table1(&cfg);
    let row = |name: &str| report.rows.iter().find(|r| r.algorithm == name).unwrap();

    let heuristic = row("heuristic");
    let random = row("random");
    let optimal = row("optimal");

    // The paper's ordering: random 25%/0%, heuristic 91%/60%, optimal
    // 100%/100%. Exact numbers depend on the workload; the shape must
    // hold with margin.
    assert!(
        heuristic.avg_ratio > random.avg_ratio + 0.2,
        "heuristic {:.2} should clearly beat random {:.2}",
        heuristic.avg_ratio,
        random.avg_ratio
    );
    assert!(
        heuristic.avg_ratio > 0.6,
        "heuristic near-optimal on average ({:.2})",
        heuristic.avg_ratio
    );
    assert!(heuristic.pct_optimal > random.pct_optimal);
    assert!(
        random.pct_optimal < 0.2,
        "random almost never exactly optimal"
    );
    assert_eq!(optimal.avg_ratio, 1.0);
    assert_eq!(optimal.pct_optimal, 1.0);
}

#[test]
fn fig5_shape_heuristic_over_random_over_fixed() {
    let cfg = Fig5Config {
        seed: 4242,
        workload: WorkloadConfig {
            requests: 400,
            horizon_h: 150.0,
            ..WorkloadConfig::default()
        },
        gen: GraphGenConfig::fig5(),
        window_h: 50.0,
        random_attempts: 16,
    };
    let outcome = ubiqos_sim::scenario::run_fig5(&cfg);
    let h = outcome.curve(Policy::Heuristic).overall;
    let r = outcome.curve(Policy::Random).overall;
    let f = outcome.curve(Policy::Fixed).overall;
    assert!(h > r, "heuristic {h:.3} > random {r:.3}");
    assert!(r > f, "random {r:.3} > fixed {f:.3}");
    assert!(h > 0.5, "heuristic succeeds on most requests ({h:.3})");

    // Per-window dominance holds in the aggregate: the heuristic wins at
    // least three quarters of the windows against fixed.
    let hw = &outcome.curve(Policy::Heuristic).series;
    let fw = &outcome.curve(Policy::Fixed).series;
    let wins = hw
        .iter()
        .zip(fw)
        .filter(|((_, hr), (_, fr))| hr >= fr)
        .count();
    assert!(wins * 4 >= hw.len() * 3, "{wins}/{} windows", hw.len());
}

#[test]
fn fig5_same_trace_for_every_policy() {
    // Total attempts must be identical across policies — they share one
    // workload trace.
    let cfg = Fig5Config {
        seed: 7,
        workload: WorkloadConfig {
            requests: 100,
            horizon_h: 60.0,
            ..WorkloadConfig::default()
        },
        gen: GraphGenConfig {
            nodes: 20..=30,
            ..GraphGenConfig::fig5()
        },
        window_h: 20.0,
        random_attempts: 8,
    };
    let outcome = ubiqos_sim::scenario::run_fig5(&cfg);
    let lens: Vec<usize> = outcome.curves.iter().map(|c| c.series.len()).collect();
    assert_eq!(lens[0], lens[1]);
    assert_eq!(lens[1], lens[2]);
}

#[test]
fn table1_skips_are_rare_with_default_generator() {
    let cfg = Table1Config {
        graphs: 20,
        seed: 5,
        ..Table1Config::default()
    };
    let report = run_table1(&cfg);
    assert!(
        report.skipped_infeasible < 20,
        "most generated graphs fit the PC+PDA pair (skipped {})",
        report.skipped_infeasible
    );
}
