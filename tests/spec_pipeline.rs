//! Integration: ASDL specification text → parse → compose → distribute →
//! runtime session, end to end.

use ubiqos::prelude::*;
use ubiqos_graph::spec;
use ubiqos_runtime::{DomainServer, LinkKind};

const APP: &str = r#"
# a monitored media pipeline
service camera {
    pin device 0
    require format = H261
    require frame-rate in [5, 30]
}
service motion-detector {
    optional
}
service recorder {
    require format = H261
}
service viewer {
    pin client
    require format = H261
    require frame-rate in [5, 25]
}
edge camera -> motion-detector @ 2.0
edge motion-detector -> recorder @ 2.0
edge camera -> viewer @ 2.0
"#;

fn smart_space() -> DomainServer {
    let env = Environment::builder()
        .device(Device::new(
            "hall-cam-host",
            ResourceVector::mem_cpu(128.0, 200.0),
        ))
        .device(Device::new(
            "console",
            ResourceVector::mem_cpu(256.0, 300.0),
        ))
        .device(Device::new(
            "archive",
            ResourceVector::mem_cpu(512.0, 200.0),
        ))
        .default_bandwidth_mbps(20.0)
        .build();
    let props = DeviceProperties {
        screen_pixels: 1_920_000.0,
        compute_factor: 4.0,
    };
    let mut server = DomainServer::new(env, vec![LinkKind::Ethernet; 3], vec![props; 3]);
    server.registry_mut().register(ServiceDescriptor::new(
        "cam-1",
        "camera",
        ServiceComponent::builder("camera")
            .role(ComponentRole::Source)
            .qos_out(
                QosVector::new()
                    .with(QosDimension::Format, QosValue::token("H261"))
                    .with(QosDimension::FrameRate, QosValue::exact(25.0)),
            )
            .capability(QosDimension::FrameRate, QosValue::range(1.0, 30.0))
            .resources(ResourceVector::mem_cpu(32.0, 40.0))
            .build(),
    ));
    server.registry_mut().register(ServiceDescriptor::new(
        "rec-1",
        "recorder",
        ServiceComponent::builder("recorder")
            .qos_in(QosVector::new().with(QosDimension::Format, QosValue::token("H261")))
            .resources(ResourceVector::mem_cpu(64.0, 30.0))
            .build(),
    ));
    server.registry_mut().register(ServiceDescriptor::new(
        "viewer-1",
        "viewer",
        ServiceComponent::builder("viewer")
            .role(ComponentRole::Sink)
            .qos_in(
                QosVector::new()
                    .with(QosDimension::Format, QosValue::token("H261"))
                    .with(QosDimension::FrameRate, QosValue::range(5.0, 25.0)),
            )
            .resources(ResourceVector::mem_cpu(16.0, 20.0))
            .build(),
    ));
    // No motion-detector anywhere: the optional spec is bypassed.
    server
}

#[test]
fn asdl_text_drives_a_full_session() {
    let app = spec::parse(APP).expect("spec parses");
    assert_eq!(app.spec_count(), 4);

    let mut server = smart_space();
    let session = server
        .start_session(
            "surveillance",
            app,
            QosVector::new().with(QosDimension::FrameRate, QosValue::exact(25.0)),
            DeviceId::from_index(1),
        )
        .expect("configures");
    let s = server.session(session).unwrap();
    // camera + recorder + viewer; the optional detector was dropped.
    assert_eq!(s.configuration.app.graph.component_count(), 3);
    assert!(s
        .configuration
        .app
        .report
        .corrections
        .iter()
        .any(|c| c.to_string().contains("motion-detector")));
    // Camera pinned to device 0, viewer pinned to the console.
    let part_of = |name: &str| {
        let (id, _) = s
            .configuration
            .app
            .graph
            .components()
            .find(|(_, c)| c.name() == name)
            .unwrap();
        s.configuration.cut.part_of(id).unwrap()
    };
    assert_eq!(part_of("camera"), 0);
    assert_eq!(part_of("viewer"), 1);
    // Delivered QoS equals the viewer's negotiated 25 fps.
    let qos = s.measured_qos();
    assert!(qos.iter().any(|q| q.sink == "viewer" && q.fps == 25.0));
}

#[test]
fn rendered_spec_reparses_and_reconfigures_identically() {
    let app = spec::parse(APP).unwrap();
    let rendered = spec::render(&app);
    let reparsed = spec::parse(&rendered).unwrap();
    assert_eq!(app, reparsed);

    let mut a = smart_space();
    let mut b = smart_space();
    let sa = a
        .start_session("x", app, QosVector::new(), DeviceId::from_index(1))
        .unwrap();
    let sb = b
        .start_session("x", reparsed, QosVector::new(), DeviceId::from_index(1))
        .unwrap();
    assert_eq!(
        a.session(sa).unwrap().configuration.cut,
        b.session(sb).unwrap().configuration.cut,
        "identical descriptions configure identically"
    );
}

#[test]
fn diagnosis_api_sees_what_oc_fixed() {
    // Parse, compose *manually* with check-only policy to observe the
    // raw inconsistency, then let OC fix it.
    let app = spec::parse(APP).unwrap();
    let server = smart_space();
    let composer =
        ServiceComposer::new(server.registry()).with_policy(CorrectionPolicy::check_only());
    let request = ComposeRequest {
        abstract_graph: &app,
        user_qos: QosVector::new(),
        client_device: DeviceId::from_index(1),
        client_props: DeviceProperties::unconstrained(),
        domain: None,
    };
    // With corrections disabled the pipeline still succeeds here (the
    // camera's configured 25 fps already satisfies the viewer), so
    // diagnose must agree it is consistent.
    let composed = composer.compose(&request).expect("already consistent");
    let report = diagnose(&composed.graph);
    assert!(report.is_consistent(), "{report}");
    assert_eq!(report.examined, composed.graph.edge_count());
}
